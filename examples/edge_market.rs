//! Edge content market: a finite-population simulation comparing MFG-CP
//! against the paper's four baselines (RR, MPC, MFG-without-sharing, UDCS)
//! on a synthetic YouTube-like trace — the workload motivating the paper's
//! introduction (edge video providers competing over trending content).
//!
//! Run with: `cargo run --release --example edge_market`

use mfgcp::prelude::*;

fn config() -> SimConfig {
    SimConfig {
        num_edps: 40,
        num_requesters: 160,
        num_contents: 8,
        epochs: 2,
        slots_per_epoch: 30,
        params: mfgcp::core::Params {
            num_edps: 40,
            time_steps: 20,
            grid_h: 10,
            grid_q: 36,
            ..Default::default()
        },
        seed: 7,
        ..Default::default()
    }
}

fn run(policy: Box<dyn CachingPolicy>) -> SimReport {
    Simulation::new(config(), policy)
        .expect("valid config")
        .run()
}

fn main() {
    let params = config().params;
    println!("Simulating an edge content market: M = 40 EDPs, J = 160 requesters,");
    println!("K = 8 contents, 2 epochs x 30 trading slots, synthetic YouTube trace.\n");

    let reports = vec![
        run(Box::new(
            MfgCpPolicy::new(params.clone()).expect("valid params"),
        )),
        run(Box::new(
            MfgCpPolicy::without_sharing(params).expect("valid params"),
        )),
        run(Box::new(Udcs::default())),
        run(Box::new(MostPopularCaching::default())),
        run(Box::new(RandomReplacement)),
    ];

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>18}",
        "scheme", "utility", "income", "staleness", "share-benefit", "cases (1/2/3)"
    );
    for r in &reports {
        let (c1, c2, c3) = r.case_totals();
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12}",
            r.scheme,
            r.mean_utility(),
            r.mean_trading_income(),
            r.mean_staleness_cost(),
            r.mean_sharing_benefit(),
            format!("{c1}/{c2}/{c3}"),
        );
    }

    let mfgcp = &reports[0];
    let best_baseline = reports[1..]
        .iter()
        .map(SimReport::mean_utility)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nMFG-CP vs best baseline utility: {:.2} vs {:.2} ({:+.1}%)",
        mfgcp.mean_utility(),
        best_baseline,
        (mfgcp.mean_utility() / best_baseline - 1.0) * 100.0
    );
    println!("(The paper's Fig. 14 reports MFG-CP at 2.76x MPC and 1.57x UDCS.)");
}
