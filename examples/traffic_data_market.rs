//! Traffic-data market: the timeliness scenario from the paper's §II-B —
//! "a content contains the traffic flow data of several important roads
//! (or the financial news of some countries), and then the center may
//! update it every hour (or every day)".
//!
//! Two contents with identical demand but opposite urgency profiles show
//! how the timeliness factor `ξ^{L_k(t)}` (Def. 2) steers the equilibrium
//! caching strategy: urgent traffic data is retained (small discard
//! drift), leisurely financial news is let go.
//!
//! Run with: `cargo run --release --example traffic_data_market`

use mfgcp::prelude::*;

fn main() {
    let params = Params {
        time_steps: 24,
        grid_h: 10,
        grid_q: 40,
        ..Params::default()
    };
    let cfg = TimelinessConfig::default(); // ξ = 0.1, L_max = 5

    // Drivers demand traffic data urgently (L ≈ 2.5); financial news can
    // wait (L ≈ 0.5). The urgency factor ξ^L drives Eq. (4).
    let traffic = ContentContext {
        requests: 12.0,
        popularity: 0.4,
        urgency_factor: cfg.urgency_factor(2.5),
    };
    let news = ContentContext {
        requests: 12.0,
        popularity: 0.4,
        urgency_factor: cfg.urgency_factor(0.5),
    };
    println!(
        "Urgency factors: traffic ξ^2.5 = {:.4}, news ξ^0.5 = {:.4}\n",
        traffic.urgency_factor, news.urgency_factor
    );

    let framework =
        Framework::new(params.clone(), FrameworkConfig::default()).expect("valid parameters");
    println!("Running one Alg. 1 epoch over the two contents...");
    let outcomes = framework.run_epoch(&[traffic, news]);

    let traffic_eq = &outcomes[0]
        .as_ref()
        .expect("traffic is demanded")
        .equilibrium;
    let news_eq = &outcomes[1].as_ref().expect("news is demanded").equilibrium;

    println!("\nMean remaining space over the epoch (lower = more cached):");
    println!("{:>6} {:>10} {:>10}", "t", "traffic", "news");
    let n = params.time_steps;
    let tm = traffic_eq.mean_remaining_space();
    let nm = news_eq.mean_remaining_space();
    for step in [0, n / 4, n / 2, 3 * n / 4, n] {
        println!(
            "{:>6.2} {:>10.3} {:>10.3}",
            step as f64 * params.dt(),
            tm[step],
            nm[step]
        );
    }

    let t_util = traffic_eq.accumulated_utility();
    let n_util = news_eq.accumulated_utility();
    let t_stale = traffic_eq.accumulated_staleness_cost();
    let n_stale = news_eq.accumulated_staleness_cost();
    println!("\nAccumulated utility:  traffic {t_util:.2}, news {n_util:.2}");
    println!("Accumulated staleness: traffic {t_stale:.2}, news {n_stale:.2}");
    println!(
        "\nUrgent traffic data is held in cache (it is discarded {}x slower),",
        (news.urgency_factor / traffic.urgency_factor).round()
    );
    println!("so requesters get it with less delay — exactly the paper's motivation");
    println!("for folding timeliness into the caching drift of Eq. (4).");
}
