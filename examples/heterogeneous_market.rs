//! Heterogeneous market: mixed content sizes and mobile requesters.
//!
//! The paper's evaluation varies `Q_k` one size at a time (Figs. 6–7) and
//! motivates the stochastic channel with requester mobility (§II-A). This
//! example exercises both together: a catalog mixing small traffic
//! snapshots with large video files, served to a random-waypoint requester
//! population, under MFG-CP — each content gets its own mean-field
//! equilibrium at its own size.
//!
//! Run with: `cargo run --release --example heterogeneous_market`

use mfgcp::net::RandomWaypoint;
use mfgcp::prelude::*;

fn main() {
    // Catalog: two 100 MB videos, one 50 MB podcast, one 25 MB data feed.
    let sizes = vec![1.0, 1.0, 0.5, 0.25];
    let cfg = SimConfig {
        num_edps: 24,
        num_requesters: 96,
        num_contents: 4,
        epochs: 2,
        slots_per_epoch: 25,
        content_sizes: sizes.clone(),
        mobility: Some(RandomWaypoint::default()),
        params: Params {
            num_edps: 24,
            time_steps: 16,
            grid_h: 8,
            grid_q: 32,
            ..Params::default()
        },
        seed: 99,
        ..Default::default()
    };

    println!("24 EDPs, 96 mobile requesters, catalog sizes {sizes:?} (content units)\n");

    let policy = MfgCpPolicy::new(cfg.params.clone())
        .expect("valid params")
        .with_content_sizes(sizes.clone());
    let mut sim = Simulation::new(cfg.clone(), Box::new(policy)).expect("valid config");
    let report = sim.run();

    println!("MFG-CP with per-size equilibria:");
    println!("  mean utility        : {:>10.3}", report.mean_utility());
    println!(
        "  mean trading income : {:>10.3}",
        report.mean_trading_income()
    );
    println!(
        "  mean staleness cost : {:>10.3}",
        report.mean_staleness_cost()
    );
    println!(
        "  mean sharing benefit: {:>10.3}",
        report.mean_sharing_benefit()
    );
    let (c1, c2, c3) = report.case_totals();
    println!("  cases (own/peer/center): {c1}/{c2}/{c3}");

    // Contrast with a static, uniform-size market under the same scheme.
    let uniform = SimConfig {
        content_sizes: Vec::new(),
        mobility: None,
        ..cfg
    };
    let policy = MfgCpPolicy::new(uniform.params.clone()).expect("valid params");
    let mut sim = Simulation::new(uniform, Box::new(policy)).expect("valid config");
    let base = sim.run();
    println!("\nUniform 100 MB catalog, static requesters (baseline):");
    println!("  mean utility        : {:>10.3}", base.mean_utility());
    println!(
        "  mean trading income : {:>10.3}",
        base.mean_trading_income()
    );

    println!("\nSmaller contents earn proportionally less per trade but are");
    println!("cheaper to keep fresh; mobility stirs the serving sets and");
    println!("rates every slot — both paths run through the same Alg. 1/2");
    println!("machinery as the paper's homogeneous setting.");
}
