//! Channel playground: explore the Ornstein–Uhlenbeck fading model of
//! Eq. (1) and the interference-limited rates of Eq. (2) — the network
//! substrate underneath the game (and the subject of Fig. 3).
//!
//! Run with: `cargo run --release --example channel_playground`

use mfgcp::net::{ChannelState, NetworkConfig, Topology};
use mfgcp::prelude::*;
use mfgcp::sde::Sde;

fn main() {
    let mut rng = seeded_rng(3);

    // --- Part 1: mean reversion of a single fading link (Eq. (1)).
    let cfg = NetworkConfig::default();
    let ou = cfg.fading_process();
    println!(
        "OU fading: ς_h = {}, υ_h = {:.1e}, ϱ_h = {:.1e}",
        ou.varsigma(),
        ou.upsilon(),
        ou.varrho()
    );
    println!(
        "Stationary std dev: {:.2e}\n",
        ou.stationary_variance().sqrt()
    );

    let em = EulerMaruyama::new(1e-3);
    let start_high = em.integrate(&ou, 9.0e-5, 0.0, 2.0, &mut rng);
    let start_low = em.integrate(&ou, 1.5e-5, 0.0, 2.0, &mut rng);
    println!("Mean reversion from both sides of υ_h = 5.0e-5:");
    println!("{:>6} {:>12} {:>12}", "t", "from 9e-5", "from 1.5e-5");
    for &t in &[0.0, 0.25, 0.5, 1.0, 2.0] {
        println!(
            "{:>6.2} {:>12.3e} {:>12.3e}",
            t,
            start_high.interpolate(t),
            start_low.interpolate(t)
        );
    }
    // The drift sign always points home.
    assert!(ou.drift(0.0, 9.0e-5) < 0.0 && ou.drift(0.0, 1.5e-5) > 0.0);

    // --- Part 2: a small cell with interference (Eq. (2)).
    let mut rng = seeded_rng(4);
    let topo = Topology::random(6, 24, &cfg, &mut rng);
    let mut channels = ChannelState::init(&topo, &cfg, &mut rng);
    println!(
        "\n6 EDPs / 24 requesters in a {:.0} m disc; per-EDP mean rates:",
        cfg.area_radius
    );
    println!("{:>4} {:>8} {:>14}", "EDP", "#served", "mean rate Mb/s");
    for i in 0..topo.num_edps() {
        let served = topo.served_by(i).len();
        let rate = channels
            .mean_rate_to_served(&topo, i)
            .map(|r| r / 1e6)
            .unwrap_or(0.0);
        println!("{i:>4} {served:>8} {rate:>14.1}");
    }

    // --- Part 3: rates fluctuate as the fading evolves.
    let j = topo.served_by(0).first().copied();
    if let Some(j) = j {
        println!("\nLink (EDP 0 -> requester {j}) over time:");
        println!("{:>6} {:>12} {:>14}", "t", "fading", "rate Mb/s");
        for step in 0..6 {
            println!(
                "{:>6.2} {:>12.3e} {:>14.2}",
                step as f64 * 0.2,
                channels.fading(0, j),
                channels.rate(0, j) / 1e6
            );
            channels.advance(0.2);
        }
    }
}
