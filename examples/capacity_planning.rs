//! Capacity planning: the knapsack extension of §IV-C's Remark.
//!
//! When an EDP's total caching capacity is a hard budget, the per-content
//! MFG solutions supply each content's *value* (equilibrium utility) and
//! *weight* (storage the equilibrium strategy occupies); the final caching
//! plan is a knapsack selection over those pairs.
//!
//! Run with: `cargo run --release --example capacity_planning`

use mfgcp::core::{solve_01, solve_fractional, KnapsackItem};
use mfgcp::prelude::*;

fn main() {
    let params = Params {
        time_steps: 20,
        grid_h: 10,
        grid_q: 36,
        ..Params::default()
    };

    // A small catalog: four contents with Zipf-skewed demand and mixed
    // urgency (the per-content workload contexts of one Alg. 1 epoch).
    let zipf = Zipf::new(4, 0.9).unwrap();
    let urgency = [0.05, 0.2, 0.05, 0.5];
    let contexts: Vec<ContentContext> = (0..4)
        .map(|k| ContentContext {
            requests: 40.0 * zipf.pmf(k),
            popularity: zipf.pmf(k),
            urgency_factor: urgency[k],
        })
        .collect();

    println!("Solving one MFG equilibrium per content (Alg. 1 epoch)...\n");
    let framework = Framework::new(params, FrameworkConfig::default()).unwrap();
    let outcomes = framework.run_epoch(&contexts);

    let items: Vec<KnapsackItem> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(k, o)| {
            o.as_ref()
                .map(|out| KnapsackItem::from_equilibrium(k, &out.equilibrium))
        })
        .collect();

    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "content", "value", "weight", "density"
    );
    for it in &items {
        println!(
            "{:>8} {:>10.2} {:>10.3} {:>10.1}",
            it.content,
            it.value,
            it.weight,
            if it.weight > 0.0 {
                it.value / it.weight
            } else {
                f64::INFINITY
            }
        );
    }

    // Sweep the capacity budget: how much of the unconstrained plan fits?
    let total_weight: f64 = items.iter().map(|i| i.weight).sum();
    println!("\nUnconstrained storage demand: {total_weight:.3} content units");
    println!(
        "\n{:>10} {:>14} {:>14} {:>24}",
        "capacity", "frac. value", "0/1 value", "0/1 kept contents"
    );
    for &cap in &[0.25, 0.5, 0.75, 1.0] {
        let frac = solve_fractional(&items, cap);
        let zo = solve_01(&items, cap, 10_000);
        println!(
            "{:>10.2} {:>14.2} {:>14.2} {:>24}",
            cap,
            frac.total_value,
            zo.total_value,
            format!("{:?}", zo.kept_contents(&items)),
        );
        assert!(
            frac.total_value >= zo.total_value - 1e-9,
            "LP bound violated"
        );
    }
    println!("\nThe fractional plan upper-bounds the 0/1 plan (LP relaxation),");
    println!("and both prioritize high-utility-per-byte contents — the paper's");
    println!("'weight and value of each content' trade-off made concrete.");
}
