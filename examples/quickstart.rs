//! Quickstart: solve one MFG-CP equilibrium and inspect it.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This is the minimal end-to-end use of the library: configure the game
//! (paper §V-A defaults), run the iterative best-response learning scheme
//! (Alg. 2), and read off the equilibrium caching policy, prices and the
//! population's utility breakdown.

use mfgcp::prelude::*;

fn main() {
    // Paper defaults: M = 300 EDPs, Q_k = 100 MB (1.0 content unit),
    // λ(0) ~ N(0.7, 0.1²), p̂ = 5, η₁/p̂ = 0.2, T = 1.
    let params = Params::default();
    println!(
        "Solving the MFG-CP equilibrium (grid {}x{}, {} time steps)...",
        params.grid_h, params.grid_q, params.time_steps
    );

    let solver = MfgSolver::new(params).expect("valid parameters");
    let eq = solver.solve().expect("the default game converges");

    println!(
        "Converged in {} best-response iterations (final residual {:.2e}).",
        eq.report.iterations,
        eq.report.final_residual()
    );
    if let Some(c) = eq.report.contraction_factor() {
        println!("Empirical contraction factor of the Alg. 2 map: {c:.3}");
    }

    // The equilibrium policy: caching rate as a function of (t, h, q).
    println!("\nEquilibrium caching rate x*(t, h=υ_h, q):");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "t", "q=0.2", "q=0.4", "q=0.6", "q=0.8"
    );
    let h = eq.params.upsilon_h;
    for &t in &[0.0, 0.25, 0.5, 0.75] {
        println!(
            "{:>6.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            t,
            eq.policy_at(t, h, 0.2),
            eq.policy_at(t, h, 0.4),
            eq.policy_at(t, h, 0.6),
            eq.policy_at(t, h, 0.8)
        );
    }

    // Equilibrium prices respond to the aggregate supply (Eq. (17)).
    let prices = eq.price_series();
    println!(
        "\nDynamic price p_k(t): starts at {:.3}, ends at {:.3} (p̂ = {:.1})",
        prices[0],
        prices[prices.len() - 1],
        eq.params.p_hat
    );

    // Population-average economics over the horizon (Eq. (10) terms).
    let series = eq.utility_series();
    let first = &series[0];
    println!("\nPer-epoch average utility breakdown at t = 0:");
    println!("  trading income : {:>8.3}", first.trading_income);
    println!("  sharing benefit: {:>8.3}", first.sharing_benefit);
    println!("  placement cost : {:>8.3}", first.placement_cost);
    println!("  staleness cost : {:>8.3}", first.staleness_cost);
    println!("  sharing cost   : {:>8.3}", first.sharing_cost);
    println!("  net            : {:>8.3}", first.total());
    println!(
        "\nAccumulated utility over the horizon: {:.3}",
        eq.accumulated_utility()
    );

    // The mean-field density: how the population's remaining space evolves.
    let means = eq.mean_remaining_space();
    println!(
        "\nMean remaining space: {:.3} -> {:.3} over the horizon",
        means[0],
        means[means.len() - 1]
    );
}
