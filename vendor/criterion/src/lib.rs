//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the real `criterion` cannot
//! be fetched. This crate implements a small but functional wall-clock
//! benchmark harness with the API subset the workspace's bench targets
//! use: `Criterion::default().warm_up_time(..).measurement_time(..)
//! .sample_size(..)`, `bench_function`, `benchmark_group` +
//! `bench_with_input` + `finish`, `BenchmarkId`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It really measures: a warm-up phase estimates the per-iteration cost,
//! the measurement phase collects `sample_size` timed samples, and the
//! report prints mean / min / max per-iteration times. There is no
//! statistical regression analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in harness times the
/// routine (not the setup) exactly, so batching hints are accepted for API
/// compatibility but do not change the measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Summary statistics of one benchmark run (per-iteration times).
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    pub mean: Duration,
    pub min: Duration,
    pub max: Duration,
    pub iterations: u64,
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark harness configuration and driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement-phase duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let summary = self.run(&mut f);
        println!(
            "{id:<48} time: [{} {} {}]  ({} iters)",
            format_duration(summary.min),
            format_duration(summary.mean),
            format_duration(summary.max),
            summary.iterations,
        );
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run(&mut self, f: &mut dyn FnMut(&mut Bencher)) -> Summary {
        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_elapsed = Duration::ZERO;
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
            warm_elapsed += b.elapsed;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_elapsed.as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: spread the time budget over `sample_size` samples.
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = if per_iter > 0.0 {
            ((sample_budget / per_iter).floor() as u64).clamp(1, 1_000_000_000)
        } else {
            1
        };
        let mut mean_acc = 0.0f64;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed.div_f64(iters_per_sample as f64);
            mean_acc += per.as_secs_f64();
            min = min.min(per);
            max = max.max(per);
            total_iters += iters_per_sample;
        }
        Summary {
            mean: Duration::from_secs_f64(mean_acc / self.sample_size as f64),
            min,
            max,
            iterations: total_iters,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5)
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = tiny();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn sample_size_floor_is_two() {
        let c = Criterion::default().sample_size(0);
        assert_eq!(c.sample_size, 2);
    }
}
