//! Vendored, dependency-light stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so the real `proptest` cannot be
//! fetched. This crate reimplements the subset the workspace's property
//! tests use — [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro, and the
//! `prop_assert!`/`prop_assert_eq!` assertions — as a deterministic
//! random-input harness:
//!
//! * each `proptest!` test runs `PROPTEST_CASES` cases (default 64),
//! * inputs are drawn from a per-test RNG seeded from the test name, so
//!   runs are reproducible without a persistence file,
//! * failures panic immediately (no shrinking — the harness favors
//!   reproducibility over minimization).

use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies while sampling.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func: f,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::RngExt;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES` env
/// override, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Drive one property test: run [`cases`] cases with a deterministic
/// per-test RNG derived from the test name (FNV-1a), so failures are
/// reproducible without a persistence file.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng)) {
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..cases() {
        let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(i) << 32));
        case(&mut rng);
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its inputs [`cases`] times.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                $body
            });
        }
    )*};
}

/// Assert a property holds (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert two values are equal (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Map, SizeRange, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        crate::run_cases("ranges_and_vecs", |rng| {
            let x = (0.5_f64..2.0).sample(rng);
            assert!((0.5..2.0).contains(&x));
            let n = (1_usize..=5).sample(rng);
            assert!((1..=5).contains(&n));
            let v = collection::vec(-1.0_f64..1.0, 2..6).sample(rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        });
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0.0_f64..1.0, 0.0_f64..1.0).prop_map(|(a, b)| a + b);
        crate::run_cases("prop_map", |rng| {
            let s = strat.sample(rng);
            assert!((0.0..2.0).contains(&s));
        });
    }

    #[test]
    fn just_yields_its_value() {
        crate::run_cases("just", |rng| {
            assert_eq!(Just(7_i32).sample(rng), 7);
        });
    }

    proptest! {
        /// The macro itself: patterns, multiple bindings, trailing comma.
        #[test]
        fn macro_generates_cases(
            (a, b) in (0_u64..10, 10_u64..20),
            v in collection::vec(0.0_f64..1.0, 3),
        ) {
            prop_assert!(a < b);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
