//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so the real
//! crates-io `rand` cannot be fetched. This crate implements exactly the
//! subset of the `rand` 0.10 API surface the workspace uses:
//!
//! * [`Rng`] — the object-safe core trait (`next_u64`/`next_u32`);
//! * [`RngExt`] — `random::<T>()`, `random_range(..)`, `random_bool(p)`;
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (SplitMix64-seeded xoshiro256++).
//!
//! Determinism is a workspace-wide contract: every stochastic component
//! takes an explicit RNG, and simulation results must be bit-identical for
//! a fixed seed regardless of thread count. `StdRng` here is a pure-state
//! PRNG with no global or thread-local state, so that contract holds by
//! construction. The stream is **not** compatible with crates-io `rand`'s
//! `StdRng` (which never guaranteed cross-version stability either).

use core::ops::{Range, RangeInclusive};

/// The core random number generator trait (object safe).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high bits of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`RngExt::random`].
pub trait Random: Sized {
    /// Draw a uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Denominator 2^53 − 1 makes both endpoints reachable.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use crate::{Rng, SeedableRng};

    /// The workspace-standard deterministic generator: xoshiro256++ with
    /// SplitMix64 key expansion. Pure value state — `Clone` gives an
    /// independent replay of the same stream, and there is no global state.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64: guarantees a non-zero xoshiro state for any seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(2.0_f64..5.0);
            assert!((2.0..5.0).contains(&x));
            let y = r.random_range(1.0_f64..=2.0);
            assert!((1.0..=2.0).contains(&y));
            let n = r.random_range(3_usize..10);
            assert!((3..10).contains(&n));
            let m = r.random_range(0_u64..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn mean_of_unit_samples_is_near_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(5);
        let via_ref = draw(&mut r);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(via_ref, r2.next_u64());
    }
}
