//! Cross-crate integration: the mean-field solver's equilibrium must be
//! consistent with the finite-population simulator built from the other
//! crates — the whole point of the mean-field approximation (§IV).

use mfgcp::prelude::*;

fn params() -> Params {
    Params {
        num_edps: 60,
        time_steps: 20,
        grid_h: 10,
        grid_q: 40,
        max_iterations: 60,
        ..Params::default()
    }
}

#[test]
fn equilibrium_solves_and_is_internally_consistent() {
    let eq = MfgSolver::new(params()).unwrap().solve().unwrap();
    assert!(eq.report.converged);
    // Policy bounded, density normalized, values finite.
    for p in &eq.policy {
        assert!(p.values().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
    for lam in &eq.density {
        assert!((lam.integral() - 1.0).abs() < 1e-6);
    }
    for v in &eq.values {
        assert!(v.values().iter().all(|x| x.is_finite()));
    }
    // Prices consistent with the final policy/density (Eq. (17)).
    for (n, &p) in eq.price_series().iter().enumerate() {
        let recomputed = mfgcp::core::mean_field_price(
            eq.params.p_hat,
            eq.params.eta1,
            eq.params.q_size,
            &eq.density[n],
            &eq.policy[n],
        );
        assert!((p - recomputed).abs() < 1e-9, "step {n}");
    }
}

#[test]
fn finite_population_tracks_the_mean_field() {
    // Run the simulator under the MFG-CP policy and compare the
    // population's mean remaining space against the solver's prediction.
    let p = params();
    let cfg = SimConfig {
        num_edps: 60,
        num_requesters: 180,
        num_contents: 1,
        epochs: 1,
        slots_per_epoch: 20,
        params: p.clone(),
        seed: 11,
        ..Default::default()
    };
    let policy = MfgCpPolicy::new(p.clone()).unwrap();
    let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
    let report = sim.run();

    // Mean-field prediction with a matching workload context.
    let solver = MfgSolver::new(p.clone()).unwrap();
    // Match the simulator's epoch context: ~3 requesters per EDP at 30%
    // request probability over 20 slots -> ~18 requests per epoch; the
    // smoothed timeliness estimator stays at L = L_max/2, so the urgency
    // factor is ξ^2.5.
    let urgency = TimelinessConfig::default().urgency_factor(2.5);
    let ctx = ContentContext {
        requests: 18.0,
        popularity: 1.0,
        urgency_factor: urgency,
    };
    let eq = solver.solve_with(&vec![ctx; p.time_steps], None);

    let predicted = eq.mean_remaining_space();
    // Both start at the same initial distribution mean.
    let sim_start = report.series.first().unwrap().mean_remaining_space;
    assert!(
        (sim_start - predicted[0]).abs() < 0.1,
        "start: {sim_start} vs {}",
        predicted[0]
    );
    // Directional agreement at the end of the horizon: the finite
    // population should move the same way the mean field predicts.
    let sim_end = report.series.last().unwrap().mean_remaining_space;
    let pred_end = predicted[p.time_steps];
    let sim_delta = sim_end - sim_start;
    let pred_delta = pred_end - predicted[0];
    assert!(
        (sim_delta - pred_delta).abs() < 0.15,
        "trajectory drift: sim Δ = {sim_delta:.3}, mean-field Δ = {pred_delta:.3}"
    );
}

#[test]
fn framework_epoch_over_multiple_contents() {
    let fw = Framework::new(params(), FrameworkConfig::default()).unwrap();
    let zipf = Zipf::new(4, 0.8).unwrap();
    let contexts: Vec<ContentContext> = (0..4)
        .map(|k| ContentContext {
            requests: 40.0 * zipf.pmf(k),
            popularity: zipf.pmf(k),
            urgency_factor: 0.05,
        })
        .collect();
    let outcomes = fw.run_epoch(&contexts);
    assert_eq!(outcomes.len(), 4);
    let utils: Vec<f64> = outcomes
        .iter()
        .map(|o| o.as_ref().map(|e| e.utility()).unwrap_or(0.0))
        .collect();
    // Popular contents earn more at equilibrium.
    assert!(utils[0] > utils[3], "utilities {utils:?}");
}

#[test]
fn reduced_and_full_solvers_agree_on_aggregates() {
    let p = params();
    let full = MfgSolver::new(p.clone()).unwrap().solve().unwrap();
    let reduced = ReducedMfgSolver::new(p.clone()).unwrap().solve();
    assert!(reduced.report.converged);
    let a = full.mean_remaining_space();
    let b = reduced.mean_remaining_space();
    for (n, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!((x - y).abs() < 0.08, "step {n}: full {x} vs reduced {y}");
    }
}
