//! Trace-driven end-to-end paths: a Kaggle-schema CSV flows through the
//! parser into the simulator, and the synthetic trace produces equivalent
//! machinery (the §V-A substitution documented in DESIGN.md).

use mfgcp::prelude::*;

/// A miniature Kaggle-schema trace: 2 trending dates, 3 categories, with
/// quoted titles containing commas (the real dump has those).
const MINI_KAGGLE: &str = "\
video_id,trending_date,title,channel_title,category_id,publish_time,tags,views,likes
v1,17.14.11,\"Hit song, remastered\",Ch1,10,2017-11-13,music,9000,10
v2,17.14.11,News clip,Ch2,25,2017-11-13,news,3000,5
v3,17.14.11,Gaming stream,Ch3,20,2017-11-13,games,1500,2
v4,17.15.11,Another hit,Ch1,10,2017-11-14,music,8000,9
v5,17.15.11,More news,Ch2,25,2017-11-14,news,2500,4
v6,17.15.11,Speedrun,Ch3,20,2017-11-14,games,2000,3
";

#[test]
fn kaggle_csv_drives_a_simulation() {
    let trace = parse_kaggle_csv(MINI_KAGGLE, 3).unwrap();
    assert_eq!(trace.num_epochs(), 2);
    // Music (category 10 -> dense index 0) dominates both epochs.
    let w = trace.normalized_weights(0);
    assert!(w[0] > w[1] && w[0] > w[2]);

    let cfg = SimConfig {
        num_edps: 10,
        num_requesters: 40,
        num_contents: 3,
        epochs: 2,
        slots_per_epoch: 15,
        params: Params {
            num_edps: 10,
            time_steps: 12,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        },
        seed: 5,
        ..Default::default()
    };
    let mut sim = Simulation::with_trace(cfg, Box::new(RandomReplacement), trace).unwrap();
    let report = sim.run();
    assert_eq!(report.epochs, 2);
    assert_eq!(report.series.len(), 30);
    // The music category should attract the most requests.
    let total: u64 = report.per_edp.iter().map(|m| m.requests_served).sum();
    assert!(total > 0);
}

#[test]
fn synthetic_trace_matches_the_kaggle_interface() {
    let mut rng = seeded_rng(9);
    let synth = SyntheticYoutubeTrace {
        categories: 3,
        epochs: 4,
        ..SyntheticYoutubeTrace::default()
    }
    .generate(&mut rng)
    .unwrap();
    // Same code path as the CSV trace.
    let cfg = SimConfig {
        num_edps: 8,
        num_requesters: 24,
        num_contents: 3,
        epochs: 4,
        slots_per_epoch: 10,
        params: Params {
            num_edps: 8,
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        },
        seed: 13,
        ..Default::default()
    };
    let mut sim =
        Simulation::with_trace(cfg, Box::new(MostPopularCaching { top_k: 1 }), synth).unwrap();
    let report = sim.run();
    assert_eq!(report.epochs, 4);
    assert!(report.mean_trading_income() > 0.0);
}

#[test]
fn popularity_update_follows_the_trace_between_epochs() {
    // A trace that flips demand from content 0 to content 1 in epoch 2
    // must flip the EDPs' popularity ranking (Eq. (3)).
    let trace = Trace::new(2, vec![10.0, 0.1, 0.1, 10.0]).unwrap();
    let cfg = SimConfig {
        num_edps: 6,
        num_requesters: 60,
        num_contents: 2,
        epochs: 2,
        slots_per_epoch: 20,
        request_prob: 0.8,
        params: Params {
            num_edps: 6,
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        },
        seed: 17,
        ..Default::default()
    };
    let policy = MostPopularCaching { top_k: 1 };
    let mut sim = Simulation::with_trace(cfg, Box::new(policy), trace).unwrap();
    let report = sim.run();
    // Both contents saw substantial traffic across the run.
    let total: u64 = report.per_edp.iter().map(|m| m.requests_served).sum();
    assert!(total > 100, "requests {total}");
}
