//! The headline comparison (Fig. 14's shape): under identical market
//! conditions, MFG-CP's utility beats every baseline, and the MFG
//! (no-sharing) variant trades income for staleness exactly as §V-B3
//! describes.

use mfgcp::prelude::*;

fn config() -> SimConfig {
    SimConfig {
        num_edps: 30,
        num_requesters: 120,
        num_contents: 6,
        epochs: 2,
        slots_per_epoch: 30,
        params: Params {
            num_edps: 30,
            time_steps: 16,
            grid_h: 8,
            grid_q: 32,
            ..Params::default()
        },
        seed: 23,
        ..Default::default()
    }
}

fn run(policy: Box<dyn CachingPolicy>) -> SimReport {
    Simulation::new(config(), policy).unwrap().run()
}

#[test]
fn mfgcp_beats_every_baseline_on_utility() {
    // The Fig. 14 ordering is structural at the paper's catalog richness
    // (K = 20) once the market is big enough; at toy scale the two
    // strongest schemes sit within one realization's market noise of
    // each other. Run near the paper's setting — affordable now that the
    // channel layer is occupancy-local — and average out the residual
    // noise over a few seeds.
    let headline = |seed: u64| SimConfig {
        num_edps: 120,
        num_requesters: 480,
        num_contents: 20,
        epochs: 2,
        slots_per_epoch: 30,
        params: Params {
            num_edps: 120,
            time_steps: 16,
            grid_h: 8,
            grid_q: 32,
            ..Params::default()
        },
        seed,
        ..Default::default()
    };
    let seeds = [23_u64, 61, 104];
    let mean_over_seeds = |make: &dyn Fn() -> Box<dyn CachingPolicy>| -> f64 {
        seeds
            .iter()
            .map(|&seed| {
                Simulation::new(headline(seed), make())
                    .unwrap()
                    .run()
                    .mean_utility()
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let params = headline(0).params;
    let mfgcp = mean_over_seeds(&|| Box::new(MfgCpPolicy::new(params.clone()).unwrap()));
    let baselines: Vec<(&str, f64)> = vec![
        (
            "MFG",
            mean_over_seeds(&|| Box::new(MfgCpPolicy::without_sharing(params.clone()).unwrap())),
        ),
        ("UDCS", mean_over_seeds(&|| Box::<Udcs>::default())),
        (
            "MPC",
            mean_over_seeds(&|| Box::<MostPopularCaching>::default()),
        ),
        ("RR", mean_over_seeds(&|| Box::new(RandomReplacement))),
    ];
    for (name, utility) in &baselines {
        assert!(
            mfgcp > *utility,
            "MFG-CP ({mfgcp:.2}) should beat {name} ({utility:.2})"
        );
    }
}

#[test]
fn sharing_reduces_staleness_cost() {
    // §V-B3: "the staleness cost of MFG obviously exceeds that of MFG-CP"
    // because peer completion beats center downloads on delay.
    let params = config().params;
    let with = run(Box::new(MfgCpPolicy::new(params.clone()).unwrap()));
    let without = run(Box::new(MfgCpPolicy::without_sharing(params).unwrap()));
    assert!(
        with.mean_staleness_cost() < without.mean_staleness_cost(),
        "sharing: {:.2}, no sharing: {:.2}",
        with.mean_staleness_cost(),
        without.mean_staleness_cost()
    );
    // And only the sharing variant generates sharing benefits / case 2.
    assert!(with.mean_sharing_benefit() >= 0.0);
    assert_eq!(without.mean_sharing_benefit(), 0.0);
    let (_, case2_with, _) = with.case_totals();
    let (_, case2_without, _) = without.case_totals();
    assert_eq!(case2_without, 0);
    assert!(case2_with > 0, "the sharing market never cleared");
}

#[test]
fn all_schemes_produce_valid_reports() {
    let params = config().params;
    let reports = vec![
        run(Box::new(MfgCpPolicy::new(params.clone()).unwrap())),
        run(Box::new(MfgCpPolicy::without_sharing(params).unwrap())),
        run(Box::new(Udcs::default())),
        run(Box::new(MostPopularCaching::default())),
        run(Box::new(RandomReplacement)),
    ];
    let names: Vec<&str> = reports.iter().map(|r| r.scheme.as_str()).collect();
    assert_eq!(names, vec!["MFG-CP", "MFG", "UDCS", "MPC", "RR"]);
    for r in &reports {
        assert_eq!(r.per_edp.len(), 30);
        assert!(r.mean_trading_income() > 0.0, "{} earned nothing", r.scheme);
        assert!(r.mean_utility().is_finite());
        for s in &r.series {
            assert!(s.mean_remaining_space.is_finite());
            assert!((0.0..=1.0).contains(&s.mean_caching_rate), "{}", r.scheme);
        }
    }
}
