//! Property-based tests on the invariants that hold the reproduction
//! together, exercised across crate boundaries with proptest.

use proptest::prelude::*;

use mfgcp::core::{
    finite_population_price, CaseProbabilities, MeanFieldEstimator, Params, Sigmoid, Utility,
};
use mfgcp::pde::{Axis, Field2d, FokkerPlanck2d, Grid2d};
use mfgcp::prelude::*;

fn grid() -> Grid2d {
    Grid2d::new(
        Axis::new(1.0e-5, 10.0e-5, 8).unwrap(),
        Axis::new(0.0, 1.0, 41).unwrap(),
    )
}

proptest! {
    /// FPK mass conservation under arbitrary bounded policies: whatever the
    /// control surface, probability never leaks (the discrete counterpart
    /// of `∬λ = 1` below Eq. (14)).
    #[test]
    fn fpk_conserves_mass_under_any_policy(
        xs in proptest::collection::vec(0.0_f64..=1.0, 8),
        drift_scale in 0.1_f64..2.0,
    ) {
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_h, q| {
            let z = (q - 0.7) / 0.1;
            (-0.5 * z * z).exp()
        });
        lam.normalize();
        let params = Params::default();
        let bx = Field2d::from_fn(g.clone(), |h, _q| params.drift_h(h));
        // A piecewise-constant random policy along q.
        let by = Field2d::from_fn(g, |_h, q| {
            let idx = ((q * 7.9) as usize).min(7);
            drift_scale * params.drift_q(xs[idx], 0.3, 0.05)
        });
        let fpk = FokkerPlanck2d::new(params.diffusion_h(), params.diffusion_q()).unwrap();
        let m0 = lam.integral();
        for _ in 0..10 {
            fpk.step(&mut lam, &bx, &by, 0.025);
        }
        prop_assert!((lam.integral() - m0).abs() < 1e-9);
        prop_assert!(lam.min() >= -1e-12);
    }

    /// The Eq. (5) price is monotone non-increasing in any competitor's
    /// caching rate and always lands in `[0, p̂]`.
    #[test]
    fn price_is_monotone_and_bounded(
        strategies in proptest::collection::vec(0.0_f64..=1.0, 2..20),
        bump in 0.01_f64..0.5,
        eta1 in 0.0_f64..5.0,
    ) {
        let p_hat = 5.0;
        let p0 = finite_population_price(p_hat, eta1, 1.0, &strategies, 0);
        prop_assert!((0.0..=p_hat).contains(&p0));
        // Bump a competitor's supply: the price cannot rise.
        let mut more = strategies.clone();
        if more.len() > 1 {
            more[1] = (more[1] + bump).min(1.0);
            let p1 = finite_population_price(p_hat, eta1, 1.0, &more, 0);
            prop_assert!(p1 <= p0 + 1e-12);
        }
        // Bumping my OWN strategy never changes my price.
        let mut own = strategies.clone();
        own[0] = (own[0] + bump).min(1.0);
        let p2 = finite_population_price(p_hat, eta1, 1.0, &own, 0);
        prop_assert!((p2 - p0).abs() < 1e-12);
    }

    /// Thm. 1's closed form always lands in [0, 1] and is monotone
    /// non-increasing in the value gradient.
    #[test]
    fn optimal_control_clamped_and_monotone(dv1 in -100.0_f64..100.0, dv2 in -100.0_f64..100.0) {
        let u = Utility::new(Params::default());
        let x1 = u.optimal_control(dv1);
        let x2 = u.optimal_control(dv2);
        prop_assert!((0.0..=1.0).contains(&x1));
        if dv1 < dv2 {
            prop_assert!(x1 >= x2, "x*({dv1}) = {x1} < x*({dv2}) = {x2}");
        }
    }

    /// Case probabilities are individually in [0, 1], sum to ≈ 1 away from
    /// the threshold, and respond to states in the right direction.
    #[test]
    fn case_probabilities_are_probabilities(q in 0.0_f64..=1.0, q_peer in 0.0_f64..=1.0) {
        let s = Sigmoid::new(10.0);
        let c = CaseProbabilities::compute(s, q, q_peer, 0.2);
        prop_assert!((0.0..=1.0).contains(&c.p1));
        prop_assert!((0.0..=1.0).contains(&c.p2));
        prop_assert!((0.0..=1.0).contains(&c.p3));
        prop_assert!(c.total() <= 1.0 + 0.3);
        prop_assert!(c.total() >= 0.5);
    }

    /// The Zipf prior + Eq. (3) update always yields a probability vector,
    /// whatever the request counts.
    #[test]
    fn popularity_update_stays_normalized(
        counts in proptest::collection::vec(0usize..200, 1..30),
        iota in 0.1_f64..3.0,
    ) {
        let k = counts.len();
        let mut p = Popularity::zipf(k, iota).unwrap();
        p.update(&counts);
        let total: f64 = p.all().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.all().iter().all(|&x| x >= 0.0));
    }

    /// The mean-field estimator's snapshot fields are always within their
    /// physical ranges, for any (normalized) density shape.
    #[test]
    fn estimator_snapshot_is_physical(
        centers in proptest::collection::vec(0.05_f64..0.95, 1..4),
    ) {
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_h, q| {
            centers.iter().map(|c| {
                let z = (q - c) / 0.05;
                (-0.5 * z * z).exp()
            }).sum::<f64>()
        });
        lam.normalize();
        let est = MeanFieldEstimator::new(Params::default());
        let policy = Field2d::from_fn(g, |_h, q| q); // arbitrary valid policy
        let snap = est.snapshot(&lam, &policy);
        prop_assert!((0.0..=5.0).contains(&snap.price));
        prop_assert!((0.0..=1.0).contains(&snap.q_bar));
        prop_assert!((0.0..=1.0).contains(&snap.delta_q));
        prop_assert!((0.0..=1.0).contains(&snap.sharer_fraction));
        prop_assert!((0.0..=1.0).contains(&snap.case3_fraction));
        prop_assert!(snap.share_benefit >= 0.0);
    }

    /// OU exact transitions from `mfgcp-sde` keep the channel band after
    /// clamping, for any dt (the simulator's channel invariant).
    #[test]
    fn channel_band_is_invariant(dt in 0.001_f64..5.0, h0 in 1.0e-5_f64..1.0e-4) {
        let cfg = NetworkConfig::default();
        let ou = cfg.fading_process();
        let mut rng = seeded_rng(99);
        let mut h = h0;
        for _ in 0..20 {
            h = cfg.clamp_fading(ou.sample_transition(h, dt, &mut rng));
            prop_assert!((cfg.fading_min..=cfg.fading_max).contains(&h));
        }
    }
}
