//! Integration tests for the extensions beyond the paper's evaluation
//! (DESIGN.md §5b): heterogeneous catalogs under MFG-CP, mobility, the
//! salvage terminal condition, the implicit-stepper switch, and the
//! capacity-constrained framework.

use mfgcp::net::RandomWaypoint;
use mfgcp::prelude::*;

fn small_params() -> Params {
    Params {
        num_edps: 16,
        time_steps: 12,
        grid_h: 8,
        grid_q: 24,
        ..Params::default()
    }
}

fn small_config() -> SimConfig {
    SimConfig {
        num_edps: 16,
        num_requesters: 64,
        num_contents: 3,
        epochs: 1,
        slots_per_epoch: 15,
        params: small_params(),
        seed: 71,
        ..Default::default()
    }
}

#[test]
fn heterogeneous_catalog_under_mfgcp_solves_per_size() {
    let sizes = vec![1.0, 0.5, 0.25];
    let cfg = SimConfig {
        content_sizes: sizes.clone(),
        ..small_config()
    };
    let policy = MfgCpPolicy::new(cfg.params.clone())
        .unwrap()
        .with_content_sizes(sizes.clone());
    let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
    let report = sim.run();
    assert!(report.mean_trading_income() > 0.0);
    // Every EDP's per-content state respects its own size bound.
    for (k, &size) in sizes.iter().enumerate() {
        for q in sim.final_states(k) {
            assert!((0.0..=size).contains(&q), "content {k}: q = {q} > {size}");
        }
    }
}

#[test]
fn mobility_with_mfgcp_stays_consistent() {
    let cfg = SimConfig {
        mobility: Some(RandomWaypoint::default()),
        ..small_config()
    };
    let policy = MfgCpPolicy::new(cfg.params.clone()).unwrap();
    let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
    let report = sim.run();
    assert!(report.mean_utility().is_finite());
    // Money conservation holds with moving requesters too.
    let paid: f64 = report.per_edp.iter().map(|m| m.sharing_cost).sum();
    let earned: f64 = report.per_edp.iter().map(|m| m.sharing_benefit).sum();
    assert!((paid - earned).abs() < 1e-9);
    // Fairness in a symmetric market stays reasonable.
    assert!(
        report.gini_utility() < 0.5,
        "gini {}",
        report.gini_utility()
    );
}

#[test]
fn salvage_and_implicit_switches_compose() {
    // All four switch combinations produce valid, comparable equilibria.
    let mut trajectories = Vec::new();
    for &implicit in &[false, true] {
        for &salvage in &[0.0, 2.0] {
            let params = Params {
                implicit_steppers: implicit,
                terminal_value_weight: salvage,
                ..small_params()
            };
            let eq = MfgSolver::new(params).unwrap().solve().unwrap();
            assert!(eq.report.converged, "implicit={implicit} salvage={salvage}");
            for lam in &eq.density {
                assert!((lam.integral() - 1.0).abs() < 1e-6);
            }
            trajectories.push((implicit, salvage, eq.mean_remaining_space()));
        }
    }
    // Same salvage, different stepper → nearly identical trajectories.
    let explicit0 = &trajectories[0].2;
    let implicit0 = &trajectories[2].2;
    for (a, b) in explicit0.iter().zip(implicit0) {
        assert!((a - b).abs() < 0.06, "stepper mismatch: {a} vs {b}");
    }
    // Salvage keeps more content cached at the horizon (less remaining
    // space is NOT guaranteed pointwise, but the late-horizon caching is):
    let plain_end = explicit0.last().unwrap();
    let salvage_end = trajectories[1].2.last().unwrap();
    assert!(
        salvage_end < plain_end,
        "salvage {salvage_end} vs plain {plain_end}"
    );
}

#[test]
fn capacity_framework_scales_rates_sensibly() {
    let fw = Framework::new(small_params(), FrameworkConfig::default()).unwrap();
    let contexts = vec![
        ContentContext {
            requests: 20.0,
            popularity: 0.5,
            urgency_factor: 0.05,
        },
        ContentContext {
            requests: 8.0,
            popularity: 0.2,
            urgency_factor: 0.05,
        },
    ];
    let (outcomes, plan) = fw.run_epoch_with_capacity(&contexts, 0.3);
    assert!(plan.total_weight <= 0.3 + 1e-9);
    // The kept set prefers the high-demand content.
    let items: Vec<KnapsackItem> = outcomes
        .iter()
        .enumerate()
        .map(|(k, o)| match o {
            Some(out) => KnapsackItem::from_equilibrium(k, &out.equilibrium),
            None => KnapsackItem {
                content: k,
                value: 0.0,
                weight: 0.0,
            },
        })
        .collect();
    if items[0].weight > 0.0 && items[1].weight > 0.0 {
        let kept = plan.kept_contents(&items);
        assert!(kept.contains(&0), "high-demand content dropped: {kept:?}");
    }
}

#[test]
fn cli_surface_is_reachable_from_the_facade() {
    use mfgcp::cli::{parse, Command};
    let args: Vec<String> = [
        "solve",
        "--time-steps",
        "8",
        "--grid-q",
        "16",
        "--grid-h",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    match parse(&args).unwrap() {
        Command::Solve { params, .. } => {
            // The parsed params actually drive a solve end-to-end.
            let eq = MfgSolver::new(*params).unwrap().solve().unwrap();
            assert!(eq.report.converged);
        }
        other => panic!("unexpected {other:?}"),
    }
}
