//! End-to-end `--telemetry` checks: the `mfgcp` binary must write
//! schema-valid JSONL whose solver events agree bit-for-bit with an
//! in-process reference solve of the same parameters.

use std::process::Command;

use mfgcp::obs::{json, schema};
use mfgcp::prelude::*;

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mfgcp-telemetry-{}-{name}", std::process::id()))
}

#[test]
fn solve_telemetry_is_schema_valid_and_matches_the_reference_residual() {
    let path = tmp_path("solve.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_mfgcp"))
        .args([
            "solve",
            "--time-steps",
            "12",
            "--grid-h",
            "8",
            "--grid-q",
            "24",
            "--telemetry",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("mfgcp binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let events = schema::validate_str(&text).expect("schema-valid telemetry");
    assert!(events > 0, "telemetry file is empty");

    // Reference: the same parameters solved in-process. The solver is
    // deterministic, so the binary's run must agree exactly.
    let params = Params {
        time_steps: 12,
        grid_h: 8,
        grid_q: 24,
        ..Params::default()
    };
    let solver = MfgSolver::new(params).unwrap();
    let ctx = ContentContext::from_params(solver.params());
    let eq = solver.solve_with(&vec![ctx; 12], None);

    let close = text
        .lines()
        .filter_map(|l| json::parse(l).ok())
        .find(|v| {
            v.get("kind").and_then(|k| k.as_str()) == Some("span_close")
                && v.get("name").and_then(|n| n.as_str()) == Some("solver.solve")
        })
        .expect("a solver.solve span close in the stream");
    let fields = close.get("fields").expect("span-close fields");
    let residual = fields
        .get("final_residual")
        .and_then(|v| v.as_f64())
        .expect("final_residual field");
    assert_eq!(residual, eq.report.final_residual());
    let iterations = fields
        .get("iterations")
        .and_then(|v| v.as_u64())
        .expect("iterations field");
    assert_eq!(iterations as usize, eq.report.iterations);
    // One solver.iteration event per reported iteration.
    let iteration_events = text
        .lines()
        .filter_map(|l| json::parse(l).ok())
        .filter(|v| v.get("name").and_then(|n| n.as_str()) == Some("solver.iteration"))
        .count();
    assert_eq!(iteration_events, eq.report.iterations);
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_telemetry_validates_and_covers_market_and_net_events() {
    let path = tmp_path("simulate.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_mfgcp"))
        .args([
            "simulate",
            "--scheme",
            "rr",
            "--edps",
            "8",
            "--requesters",
            "24",
            "--contents",
            "3",
            "--epochs",
            "2",
            "--slots",
            "6",
            "--mobility",
            "--telemetry",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("mfgcp binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    schema::validate_str(&text).expect("schema-valid telemetry");
    let names: Vec<String> = text
        .lines()
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|v| v.get("name").and_then(|n| n.as_str()).map(String::from))
        .collect();
    // One market.slot event per simulated slot (2 epochs x 6 slots).
    assert_eq!(names.iter().filter(|n| *n == "market.slot").count(), 12);
    assert!(names.iter().any(|n| n == "sim.prepare_epoch"));
    assert!(names.iter().any(|n| n == "net.reassociation"));
    std::fs::remove_file(&path).ok();
}
