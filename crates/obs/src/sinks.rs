//! The built-in [`Recorder`] sinks: no-op, in-memory and JSONL.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::recorder::Recorder;

/// The disabled sink: reports [`Recorder::enabled`] `== false`, so a
/// handle built over it degenerates to the no-op handle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// An in-memory sink for tests: stores every event, in order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far, in `seq` order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }
}

/// A line-delimited JSON sink writing one [`Event::to_json_line`] per line.
///
/// I/O errors are swallowed: telemetry must never take down a numerical
/// run. The writer is buffered; [`Recorder::flush`] (or drop) flushes it.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecorderHandle;
    use std::sync::Arc;

    #[test]
    fn memory_sink_stores_in_order() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        assert!(sink.is_empty());
        rec.event("first", &[]);
        rec.event("second", &[]);
        let events = sink.events();
        assert_eq!(sink.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[1].name, "second");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("mfgcp-obs-test-{}.jsonl", std::process::id()));
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            let rec = RecorderHandle::new(sink);
            let span = rec.span("outer");
            rec.gauge("g", 2.5, &[("k", "v".into())]);
            span.close(&[]);
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            crate::json::parse(line).unwrap();
        }
        let gauge = crate::json::parse(lines[1]).unwrap();
        assert_eq!(gauge.get("value").unwrap().as_f64(), Some(2.5));
        std::fs::remove_file(&path).ok();
    }
}
