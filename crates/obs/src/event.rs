//! The typed event model and its JSONL serialization.

use crate::json;

/// A scalar field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement. Non-finite values serialize as the JSON
    /// strings `"NaN"`, `"inf"`, `"-inf"` (JSON has no non-finite numbers).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (kept rare: labels, enum names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                out.push_str(&v.to_string());
            }
            Value::I64(v) => {
                out.push_str(&v.to_string());
            }
            Value::F64(v) => json::write_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => json::write_str(out, s),
        }
    }
}

/// The five record kinds of the telemetry schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened: `span` carries its id.
    SpanOpen,
    /// A span closed: `span` carries the matching id, `nanos` the
    /// monotonic wall-clock duration.
    SpanClose,
    /// A monotonically meaningful integer sample (`value`: u64).
    Counter,
    /// A point-in-time float sample (`value`: f64).
    Gauge,
    /// A typed point event carrying only `fields`.
    Event,
}

impl Kind {
    /// The schema's wire name for the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::SpanOpen => "span_open",
            Kind::SpanClose => "span_close",
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Event => "event",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "span_open" => Kind::SpanOpen,
            "span_close" => Kind::SpanClose,
            "counter" => Kind::Counter,
            "gauge" => Kind::Gauge,
            "event" => Kind::Event,
            _ => return None,
        })
    }
}

/// One telemetry record. Serialized as exactly one JSONL line; see
/// [`crate::schema`] for the normative field table.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Strictly increasing per-handle sequence number, starting at 0.
    pub seq: u64,
    /// Monotonic nanoseconds since the owning handle was created.
    pub t_nanos: u64,
    /// Record kind.
    pub kind: Kind,
    /// Dotted event name (`layer.subject`, e.g. `solver.iteration`).
    pub name: &'static str,
    /// Span id for [`Kind::SpanOpen`] / [`Kind::SpanClose`].
    pub span: Option<u64>,
    /// Span duration in nanoseconds for [`Kind::SpanClose`].
    pub nanos: Option<u64>,
    /// Payload for [`Kind::Counter`] / [`Kind::Gauge`].
    pub value: Option<Value>,
    /// Additional scalar fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_nanos\":");
        out.push_str(&self.t_nanos.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_str(&mut out, self.name);
        if let Some(id) = self.span {
            out.push_str(",\"span\":");
            out.push_str(&id.to_string());
        }
        if let Some(n) = self.nanos {
            out.push_str(",\"nanos\":");
            out.push_str(&n.to_string());
        }
        if let Some(v) = &self.value {
            out.push_str(",\"value\":");
            v.write_json(&mut out);
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event {
            seq: 7,
            t_nanos: 1234,
            kind: Kind::Gauge,
            name: "pde.fpk.mass_drift",
            span: None,
            nanos: None,
            value: Some(Value::F64(-1.5e-16)),
            fields: vec![("step", Value::U64(3)), ("clipped", Value::F64(0.0))],
        }
    }

    #[test]
    fn serializes_to_one_parseable_line() {
        let line = event().to_json_line();
        assert!(!line.contains('\n'));
        let parsed = json::parse(&line).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("gauge"));
        assert_eq!(parsed.get("value").unwrap().as_f64(), Some(-1.5e-16));
        let fields = parsed.get("fields").unwrap();
        assert_eq!(fields.get("step").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn non_finite_floats_serialize_as_strings() {
        let mut e = event();
        e.value = Some(Value::F64(f64::NAN));
        e.fields = vec![("hi", Value::F64(f64::INFINITY))];
        let line = e.to_json_line();
        let parsed = json::parse(&line).unwrap();
        assert_eq!(parsed.get("value").unwrap().as_str(), Some("NaN"));
        assert_eq!(
            parsed.get("fields").unwrap().get("hi").unwrap().as_str(),
            Some("inf")
        );
    }

    #[test]
    fn field_lookup_and_kind_roundtrip() {
        let e = event();
        assert_eq!(e.field("step"), Some(&Value::U64(3)));
        assert_eq!(e.field("missing"), None);
        for k in [
            Kind::SpanOpen,
            Kind::SpanClose,
            Kind::Counter,
            Kind::Gauge,
            Kind::Event,
        ] {
            assert_eq!(Kind::parse(k.as_str()), Some(k));
        }
        assert_eq!(Kind::parse("nope"), None);
    }

    #[test]
    fn value_conversions_cover_the_scalar_types() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(0.5), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
