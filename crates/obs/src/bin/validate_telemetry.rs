//! Validate telemetry JSONL files against the schema in `mfgcp_obs::schema`.
//!
//! Usage: `validate_telemetry FILE [FILE...]` (or `-` for stdin).
//! Exits non-zero and prints `file:line: message` on the first violation
//! in each input; prints a per-file summary on success. CI's bench-smoke
//! job runs this over the telemetry emitted by `bench_market`.

use std::io::Read;
use std::process::ExitCode;

use mfgcp_obs::schema::validate_str;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: validate_telemetry FILE [FILE...]   ('-' reads stdin)");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut failed = false;
    for path in &args {
        let text = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("-: cannot read stdin: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{path}: cannot read: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        match validate_str(&text) {
            Ok(lines) => println!("{path}: ok ({lines} events)"),
            Err(e) => {
                eprintln!("{path}:{e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
