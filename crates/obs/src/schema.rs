//! The normative telemetry line schema and its validator.
//!
//! Every telemetry line is one JSON object. Top-level keys:
//!
//! | key       | type   | presence                                  |
//! |-----------|--------|-------------------------------------------|
//! | `seq`     | u64    | always; strictly increasing within a file |
//! | `t_nanos` | u64    | always; monotonic epoch nanoseconds       |
//! | `kind`    | string | always; one of the five kinds below       |
//! | `name`    | string | always; non-empty dotted `layer.subject`  |
//! | `span`    | u64    | `span_open` / `span_close` only           |
//! | `nanos`   | u64    | `span_close` only; span duration          |
//! | `value`   | varies | `counter` (u64), `gauge` (f64 or one of   |
//! |           |        | the strings `"NaN"`, `"inf"`, `"-inf"`)   |
//! | `fields`  | object | optional; flat scalars only               |
//!
//! Kinds: `span_open`, `span_close`, `counter`, `gauge`, `event`.
//! Spans nest strictly: `span_close` must name the innermost open span id,
//! and every span must be closed by end of file. No other top-level keys
//! are allowed. `fields` values must be numbers, strings or booleans —
//! never nested objects, arrays or null.
//!
//! The [`Validator`] checks a stream line-by-line; the
//! `validate_telemetry` binary applies it to files (CI runs it over
//! bench-emitted telemetry and fails the build on any violation).
//!
//! # Live streams over the wire
//!
//! The same lines travel live through `mfgcp-ctl` (`mfgcp simulate
//! --observe` + `mfgcp watch`): the [`BroadcastSink`](crate::BroadcastSink)
//! fans each recorded event out to bounded per-subscriber queues, and
//! the control server ships them as `0xC0` frames on the shared
//! `mfgcp_serve::wire` layer (LE `u32` length + opcode + JSONL body,
//! interleaved between request/reply frames on one connection).
//! Two schema consequences, both deliberate:
//!
//! * **Subscription filters are name prefixes** ([`SubscriptionFilter`](crate::SubscriptionFilter);
//!   empty = everything), matched against the dotted `name` — e.g.
//!   `market.slot`, `net.shard`, `solver`. Filtering keeps recorder
//!   `seq` numbers, so a filtered stream is *gapped but strictly
//!   increasing* — exactly what this validator requires within a file.
//! * **Slow subscribers lose frames, never slow the simulation.** A
//!   full queue drops the newest frame for that subscriber and counts
//!   it (`enqueued + dropped == matched`, exact). A lossy stream of
//!   `event` / `counter` / `gauge` kinds still validates; span kinds do
//!   not survive loss (a dropped `span_close` breaks the nesting rule),
//!   so subscribe to non-span series when piping a live stream into
//!   this validator — CI's `observe-smoke` job does exactly that.

use crate::event::Kind;
use crate::json::{self, Json};

/// A schema violation, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    /// 1-based line number within the validated stream.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Streaming validator for one telemetry file.
#[derive(Debug, Default)]
pub struct Validator {
    lines: usize,
    last_seq: Option<u64>,
    last_t_nanos: Option<u64>,
    open_spans: Vec<u64>,
}

impl Validator {
    /// A fresh validator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lines validated so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    fn fail(&self, message: impl Into<String>) -> SchemaError {
        SchemaError {
            line: self.lines,
            message: message.into(),
        }
    }

    /// Validate the next line of the stream.
    pub fn check_line(&mut self, line: &str) -> Result<(), SchemaError> {
        self.lines += 1;
        let doc = json::parse(line).map_err(|e| self.fail(format!("not valid JSON: {e}")))?;
        let members = doc
            .members()
            .ok_or_else(|| self.fail("top level is not an object"))?;

        for (key, _) in members {
            if !matches!(
                key.as_str(),
                "seq" | "t_nanos" | "kind" | "name" | "span" | "nanos" | "value" | "fields"
            ) {
                return Err(self.fail(format!("unknown top-level key {key:?}")));
            }
        }

        let seq = require_u64(&doc, "seq").map_err(|m| self.fail(m))?;
        if let Some(last) = self.last_seq {
            if seq <= last {
                return Err(self.fail(format!(
                    "seq {seq} is not strictly greater than previous seq {last}"
                )));
            }
        }
        self.last_seq = Some(seq);

        let t_nanos = require_u64(&doc, "t_nanos").map_err(|m| self.fail(m))?;
        if let Some(last) = self.last_t_nanos {
            if t_nanos < last {
                return Err(self.fail(format!(
                    "t_nanos {t_nanos} went backwards (previous {last})"
                )));
            }
        }
        self.last_t_nanos = Some(t_nanos);

        let kind_str = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| self.fail("missing or non-string \"kind\""))?;
        let kind =
            Kind::parse(kind_str).ok_or_else(|| self.fail(format!("unknown kind {kind_str:?}")))?;

        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| self.fail("missing or non-string \"name\""))?;
        if name.is_empty() {
            return Err(self.fail("\"name\" is empty"));
        }

        let span = doc.get("span");
        let nanos = doc.get("nanos");
        let value = doc.get("value");

        match kind {
            Kind::SpanOpen => {
                let id = require_u64(&doc, "span").map_err(|m| self.fail(m))?;
                if nanos.is_some() || value.is_some() {
                    return Err(self.fail("span_open must not carry \"nanos\" or \"value\""));
                }
                if self.open_spans.contains(&id) {
                    return Err(self.fail(format!("span id {id} opened twice")));
                }
                self.open_spans.push(id);
            }
            Kind::SpanClose => {
                let id = require_u64(&doc, "span").map_err(|m| self.fail(m))?;
                require_u64(&doc, "nanos").map_err(|m| self.fail(m))?;
                if value.is_some() {
                    return Err(self.fail("span_close must not carry \"value\""));
                }
                match self.open_spans.last() {
                    Some(&top) if top == id => {
                        self.open_spans.pop();
                    }
                    Some(&top) => {
                        return Err(self.fail(format!(
                            "span_close for id {id} but innermost open span is {top}"
                        )));
                    }
                    None => {
                        return Err(self.fail(format!("span_close for id {id} with no span open")));
                    }
                }
            }
            Kind::Counter => {
                if span.is_some() || nanos.is_some() {
                    return Err(self.fail("counter must not carry \"span\" or \"nanos\""));
                }
                let v = value.ok_or_else(|| self.fail("counter missing \"value\""))?;
                if v.as_u64().is_none() {
                    return Err(self.fail("counter \"value\" must be a non-negative integer"));
                }
            }
            Kind::Gauge => {
                if span.is_some() || nanos.is_some() {
                    return Err(self.fail("gauge must not carry \"span\" or \"nanos\""));
                }
                let v = value.ok_or_else(|| self.fail("gauge missing \"value\""))?;
                let ok = v.as_f64().is_some() || matches!(v.as_str(), Some("NaN" | "inf" | "-inf"));
                if !ok {
                    return Err(
                        self.fail("gauge \"value\" must be a number or \"NaN\"/\"inf\"/\"-inf\"")
                    );
                }
            }
            Kind::Event => {
                if span.is_some() || nanos.is_some() || value.is_some() {
                    return Err(self.fail("event must not carry \"span\", \"nanos\" or \"value\""));
                }
            }
        }

        if let Some(fields) = doc.get("fields") {
            let members = fields
                .members()
                .ok_or_else(|| self.fail("\"fields\" is not an object"))?;
            for (key, v) in members {
                let scalar = matches!(v, Json::Num(_) | Json::Str(_) | Json::Bool(_));
                if !scalar {
                    return Err(self.fail(format!(
                        "field {key:?} is not a scalar (numbers, strings, booleans only)"
                    )));
                }
            }
        }

        Ok(())
    }

    /// End-of-stream checks: every span must have been closed.
    pub fn finish(&self) -> Result<(), SchemaError> {
        if let Some(&id) = self.open_spans.last() {
            return Err(SchemaError {
                line: self.lines,
                message: format!(
                    "end of stream with {} span(s) still open (innermost id {id})",
                    self.open_spans.len()
                ),
            });
        }
        Ok(())
    }
}

/// Validate a whole telemetry document (newline-separated lines; empty
/// trailing lines ignored). Returns the number of validated lines.
pub fn validate_str(text: &str) -> Result<usize, SchemaError> {
    let mut v = Validator::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        v.check_line(line)?;
    }
    v.finish()?;
    Ok(v.lines())
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-u64 {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, RecorderHandle};
    use std::sync::Arc;

    fn emitted_stream() -> String {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        let solve = rec.span_with("solver.solve", &[("method", "picard".into())]);
        for psi in 0..3u64 {
            let hjb = rec.span("solver.hjb");
            hjb.close(&[]);
            rec.event(
                "solver.iteration",
                &[
                    ("psi", psi.into()),
                    ("residual", (0.5f64 / (psi + 1) as f64).into()),
                ],
            );
            rec.gauge("pde.fpk.mass_drift", -1e-16, &[("step", psi.into())]);
            rec.counter("market.trades", 10 * psi, &[]);
        }
        solve.close(&[("converged", true.into())]);
        sink.events()
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn real_emitted_stream_validates() {
        let text = emitted_stream();
        let n = validate_str(&text).unwrap();
        assert_eq!(n, text.lines().count());
    }

    #[test]
    fn non_finite_gauges_validate() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        rec.gauge("pde.hjb.poison", f64::NAN, &[("i", 3u64.into())]);
        rec.gauge("pde.hjb.poison", f64::INFINITY, &[]);
        let text = sink
            .events()
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n");
        validate_str(&text).unwrap();
    }

    #[test]
    fn rejects_seq_regression() {
        let a = r#"{"seq":1,"t_nanos":5,"kind":"event","name":"a"}"#;
        let b = r#"{"seq":1,"t_nanos":6,"kind":"event","name":"b"}"#;
        let err = validate_str(&format!("{a}\n{b}")).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("strictly greater"), "{err}");
    }

    #[test]
    fn rejects_time_regression() {
        let a = r#"{"seq":0,"t_nanos":10,"kind":"event","name":"a"}"#;
        let b = r#"{"seq":1,"t_nanos":9,"kind":"event","name":"b"}"#;
        let err = validate_str(&format!("{a}\n{b}")).unwrap_err();
        assert!(err.message.contains("went backwards"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_and_misnested_spans() {
        let open = r#"{"seq":0,"t_nanos":1,"kind":"span_open","name":"a","span":0}"#;
        let err = validate_str(open).unwrap_err();
        assert!(err.message.contains("still open"), "{err}");

        let open2 = r#"{"seq":1,"t_nanos":2,"kind":"span_open","name":"b","span":1}"#;
        let close_wrong =
            r#"{"seq":2,"t_nanos":3,"kind":"span_close","name":"a","span":0,"nanos":1}"#;
        let err = validate_str(&format!("{open}\n{open2}\n{close_wrong}")).unwrap_err();
        assert!(err.message.contains("innermost"), "{err}");

        let close_orphan =
            r#"{"seq":0,"t_nanos":1,"kind":"span_close","name":"a","span":7,"nanos":1}"#;
        let err = validate_str(close_orphan).unwrap_err();
        assert!(err.message.contains("no span open"), "{err}");
    }

    #[test]
    fn rejects_kind_payload_mismatches() {
        for (line, needle) in [
            (
                r#"{"seq":0,"t_nanos":1,"kind":"counter","name":"c","value":-1}"#,
                "non-negative integer",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"counter","name":"c"}"#,
                "missing \"value\"",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"gauge","name":"g","value":"huge"}"#,
                "must be a number",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"event","name":"e","value":1}"#,
                "must not carry",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"gauge","name":"g","value":1.0,"nanos":3}"#,
                "must not carry",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"mystery","name":"m"}"#,
                "unknown kind",
            ),
            (r#"{"seq":0,"t_nanos":1,"kind":"event","name":""}"#, "empty"),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"event","name":"e","extra":1}"#,
                "unknown top-level key",
            ),
            (
                r#"{"seq":0,"t_nanos":1,"kind":"event","name":"e","fields":{"k":[1]}}"#,
                "not a scalar",
            ),
            (r#"not json"#, "not valid JSON"),
            (r#"[1,2]"#, "not an object"),
        ] {
            let err = validate_str(line).unwrap_err();
            assert!(err.message.contains(needle), "{line} -> {err}");
        }
    }
}
