//! The [`Recorder`] sink trait and the [`RecorderHandle`] instrumented code
//! carries.
//!
//! The handle is the hot-path API: it owns the sequence counter and the
//! monotonic epoch, and emits fully-formed [`Event`]s into an
//! `Arc<dyn Recorder>`. A disabled handle holds no inner state at all, so
//! every emit helper is a null check followed by an early return —
//! instrumentation can stay in release builds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, Kind, Value};

/// A sink for telemetry events.
///
/// Implementations must be cheap enough to sit on solver hot paths when
/// enabled, and must never panic: telemetry failure must not take down a
/// numerical run (the built-in [`crate::JsonlSink`] swallows I/O errors).
pub trait Recorder: Send + Sync {
    /// Whether this sink wants events at all. A handle built over a sink
    /// returning `false` degenerates to a no-op handle, so instrumented
    /// code pays one null check per site. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event. Calls are serialized by the owning handle, in
    /// strictly increasing `seq` order.
    fn record(&self, event: Event);

    /// Flush buffered output, if any. Defaults to a no-op.
    fn flush(&self) {}
}

struct Inner {
    sink: Arc<dyn Recorder>,
    epoch: Instant,
    /// Next sequence number. A mutex (not an atomic) so that `seq`
    /// assignment and `sink.record` happen atomically together: concurrent
    /// emitters then hit the sink in `seq` order, which the schema
    /// validator checks.
    next_seq: Mutex<u64>,
    next_span: AtomicU64,
}

/// A cheap, cloneable handle through which instrumented code emits events.
///
/// Clones share the sequence counter, the span-id counter and the epoch,
/// so events from every clone interleave into one strictly-ordered stream.
/// The disabled handle ([`RecorderHandle::noop`], also [`Default`]) holds
/// nothing and every method on it returns immediately.
#[derive(Clone, Default)]
pub struct RecorderHandle {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl RecorderHandle {
    /// Build a handle over a sink. If the sink reports
    /// [`Recorder::enabled`] `== false`, the returned handle is the no-op
    /// handle and the sink is dropped.
    pub fn new<R: Recorder + 'static>(sink: Arc<R>) -> Self {
        Self::from_dyn(sink)
    }

    /// [`RecorderHandle::new`] for an already-erased sink.
    pub fn from_dyn(sink: Arc<dyn Recorder>) -> Self {
        if !sink.enabled() {
            return Self::noop();
        }
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                epoch: Instant::now(),
                next_seq: Mutex::new(0),
                next_span: AtomicU64::new(0),
            })),
        }
    }

    /// The disabled handle: records nothing, costs one null check per call.
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether events are being recorded. Call sites computing *derived*
    /// quantities purely for telemetry (mass integrals, non-finite scans)
    /// must guard that work behind this check so the disabled path stays
    /// free of it.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(
        &self,
        kind: Kind,
        name: &'static str,
        span: Option<u64>,
        nanos: Option<u64>,
        value: Option<Value>,
        fields: &[(&'static str, Value)],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut next_seq = inner.next_seq.lock().unwrap_or_else(|e| e.into_inner());
        // Stamped under the lock: with concurrent emitters, reading the
        // clock outside it lets a thread that sampled time first take the
        // lock second, making t_nanos run backwards relative to seq.
        let t_nanos = inner.epoch.elapsed().as_nanos() as u64;
        let event = Event {
            seq: *next_seq,
            t_nanos,
            kind,
            name,
            span,
            nanos,
            value,
            fields: fields.to_vec(),
        };
        *next_seq += 1;
        // Recording under the lock keeps sink order == seq order.
        inner.sink.record(event);
    }

    /// Emit a point event carrying only `fields`.
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(Kind::Event, name, None, None, None, fields);
    }

    /// Emit an integer sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64, fields: &[(&'static str, Value)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(
            Kind::Counter,
            name,
            None,
            None,
            Some(Value::U64(value)),
            fields,
        );
    }

    /// Emit a float sample.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64, fields: &[(&'static str, Value)]) {
        if self.inner.is_none() {
            return;
        }
        self.emit(
            Kind::Gauge,
            name,
            None,
            None,
            Some(Value::F64(value)),
            fields,
        );
    }

    /// Open a span. The returned guard emits `span_close` with the
    /// monotonic duration when [`Span::close`]d (or dropped).
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, &[])
    }

    /// [`RecorderHandle::span`] with fields attached to the `span_open`
    /// record.
    pub fn span_with(&self, name: &'static str, fields: &[(&'static str, Value)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                handle: Self::noop(),
                name,
                id: 0,
                start: None,
                closed: true,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        self.emit(Kind::SpanOpen, name, Some(id), None, None, fields);
        Span {
            handle: self.clone(),
            name,
            id,
            start: Some(Instant::now()),
            closed: false,
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// An open span; closing it (explicitly or by drop) emits `span_close`
/// with the span's wall-clock duration in nanoseconds.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    handle: RecorderHandle,
    name: &'static str,
    id: u64,
    start: Option<Instant>,
    closed: bool,
}

impl Span {
    /// Close the span, attaching `fields` to the `span_close` record.
    pub fn close(mut self, fields: &[(&'static str, Value)]) {
        self.finish(fields);
    }

    /// The span id carried by the matching `span_open`/`span_close`
    /// records (0 for spans from a disabled handle).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn finish(&mut self, fields: &[(&'static str, Value)]) {
        if self.closed {
            return;
        }
        self.closed = true;
        let nanos = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        self.handle.emit(
            Kind::SpanClose,
            self.name,
            Some(self.id),
            Some(nanos),
            None,
            fields,
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}

/// A fire-once latch for sentinel events (e.g. "first non-finite value in
/// this field"), so a poisoned grid emits one diagnostic instead of one
/// per cell per step.
///
/// `Clone` yields a *fresh, unfired* flag: cloning a solver re-arms its
/// sentinels, which is what a new solve wants.
#[derive(Debug, Default)]
pub struct OnceFlag(AtomicBool);

impl OnceFlag {
    /// A new, unfired flag.
    pub const fn new() -> Self {
        Self(AtomicBool::new(false))
    }

    /// Returns `true` exactly once across all callers; `false` after.
    #[inline]
    pub fn fire(&self) -> bool {
        !self.0.swap(true, Ordering::Relaxed)
    }

    /// Whether the flag has fired.
    pub fn fired(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Re-arm the flag (e.g. when a solver is reused for a fresh solve).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

impl Clone for OnceFlag {
    fn clone(&self) -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::{MemorySink, Noop};

    #[test]
    fn disabled_handle_emits_nothing_and_spans_are_inert() {
        let rec = RecorderHandle::noop();
        assert!(!rec.enabled());
        rec.event("x", &[]);
        rec.counter("y", 1, &[]);
        rec.gauge("z", 1.0, &[]);
        let span = rec.span("s");
        span.close(&[("k", 1u64.into())]);
        rec.flush();
        // A sink reporting enabled() == false degrades to the same thing.
        let rec = RecorderHandle::new(Arc::new(Noop));
        assert!(!rec.enabled());
    }

    #[test]
    fn sequence_numbers_are_contiguous_from_zero() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        rec.event("a", &[]);
        rec.counter("b", 2, &[]);
        rec.gauge("c", 0.5, &[]);
        let events = sink.events();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
    }

    #[test]
    fn clones_share_one_ordered_stream() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        let clone = rec.clone();
        rec.event("from_original", &[]);
        clone.event("from_clone", &[]);
        rec.event("from_original", &[]);
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    /// Regression: `t_nanos` must be stamped under the seq lock. Sampling
    /// the clock before acquiring it lets a thread that read the clock
    /// first take the lock second, so `t_nanos` ran backwards relative to
    /// `seq` under concurrent emitters (caught by `validate_telemetry` on
    /// a multi-worker `mfgcp serve` stream).
    #[test]
    fn concurrent_emitters_keep_t_nanos_monotone_in_seq_order() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        rec.counter("hammer", 1, &[]);
                    }
                });
            }
        });
        let events = sink.events();
        assert_eq!(events.len(), 2000);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq order broken");
            assert!(
                w[0].t_nanos <= w[1].t_nanos,
                "t_nanos went backwards: {} after {} (seq {} -> {})",
                w[1].t_nanos,
                w[0].t_nanos,
                w[0].seq,
                w[1].seq
            );
        }
    }

    #[test]
    fn span_close_carries_duration_and_matching_id() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        let outer = rec.span("outer");
        let inner = rec.span_with("inner", &[("depth", 1u64.into())]);
        inner.close(&[]);
        outer.close(&[("ok", true.into())]);
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, Kind::SpanOpen);
        assert_eq!(events[1].field("depth"), Some(&Value::U64(1)));
        // inner closes before outer; ids pair up open/close.
        assert_eq!(events[2].span, events[1].span);
        assert_eq!(events[3].span, events[0].span);
        assert!(events[2].nanos.is_some());
        assert_eq!(events[3].field("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn dropping_an_unclosed_span_still_closes_it() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        {
            let _span = rec.span("scope");
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, Kind::SpanClose);
        assert_eq!(events[1].span, events[0].span);
    }

    #[test]
    fn once_flag_fires_exactly_once_and_clones_rearm() {
        let flag = OnceFlag::new();
        assert!(flag.fire());
        assert!(!flag.fire());
        assert!(flag.fired());
        let fresh = flag.clone();
        assert!(!fresh.fired());
        assert!(fresh.fire());
        flag.reset();
        assert!(flag.fire());
    }
}
