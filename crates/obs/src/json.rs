//! Hand-rolled minimal JSON: an escaping emitter and a recursive-descent
//! parser for the subset the telemetry schema uses.
//!
//! The dependency allowlist has no `serde`, and the schema only needs flat
//! objects of scalars (plus nested `fields` objects), so ~200 lines of
//! std-only code replace the crate ecosystem. The parser accepts any valid
//! JSON document built from objects, arrays, strings, numbers, booleans
//! and null — strictly a superset of what [`crate::Event`] emits — so the
//! schema validator can also reject well-formed-but-off-schema lines with
//! a precise message instead of a parse error. Nesting is bounded by
//! [`MAX_DEPTH`] — the parser now sits near externally supplied input
//! (telemetry files, serving tooling), so a hostile deeply-nested document
//! fails with a typed [`ParseError`] instead of a stack overflow.
//!
//! [`Json::write`] is the emitting counterpart: the benches build their
//! `BENCH_*.json` reports as [`Json`] trees and serialize them through it,
//! so every JSON document this workspace writes shares one escaping and
//! float-formatting path.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth the parser accepts. Deeper documents
/// fail with a typed [`ParseError`] instead of overflowing the stack —
/// the parser is recursive-descent, and it now sits behind externally
/// supplied input (the `mfgcp-serve` tooling and `validate_telemetry`).
/// No document this workspace emits nests deeper than 3.
pub const MAX_DEPTH: usize = 128;

impl Json {
    /// Serialize this value as compact JSON into `out`. Strings go through
    /// the shared [`write_str`] escaper. Numbers that are exact integers in
    /// `±2⁵³` print without a fractional part (`100`, not `100.0`); other
    /// finite numbers use the shortest-roundtrip formatting of
    /// [`write_f64`]; non-finite numbers become the quoted strings
    /// `"NaN"` / `"inf"` / `"-inf"`, as everywhere else in this schema.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                let negative_zero = *v == 0.0 && v.is_sign_negative();
                if v.is_finite() && v.fract() == 0.0 && v.abs() <= 2f64.powi(53) && !negative_zero {
                    // Integral: print as an integer so counts stay counts.
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    write_f64(out, *v);
                }
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Json::write`] into a fresh `String`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Escape and quote `s` into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a float as a JSON number, falling back to the quoted strings
/// `"NaN"` / `"inf"` / `"-inf"` for non-finite values (JSON has no
/// non-finite numbers). Finite values use Rust's shortest-roundtrip
/// formatting, so parsing the emitted text recovers the exact `f64`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if v == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let s = format!("{v:?}");
        // `{:?}` on f64 always includes a '.' or an 'e', except for
        // integral values rendered like "1.0" — all valid JSON already.
        out.push_str(&s);
    }
}

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        self.depth += 1;
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not needed by our emitter;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is a surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            at: start,
            message: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e-3}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap(),
            &Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\ny".into())])
        );
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-0.0025)
        );
    }

    #[test]
    fn float_emit_roundtrips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            1e-300,
            -2.5e17,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_become_strings() {
        for (v, expect) in [
            (f64::NAN, "NaN"),
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            assert_eq!(parse(&s).unwrap().as_str(), Some(expect));
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{2603}";
        let mut s = String::new();
        write_str(&mut s, nasty);
        assert_eq!(parse(&s).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "\"unterminated",
            "01e",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_fails_with_a_typed_error_not_a_stack_overflow() {
        // Well beyond MAX_DEPTH: without the limit this overflows the
        // stack long before 100k frames.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}0{}", open.repeat(100_000), close.repeat(100_000));
            let err = parse(&deep).unwrap_err();
            assert!(err.message.contains("MAX_DEPTH"), "{err}");
        }
        // Exactly at the limit still parses.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&too_deep).is_err());
        // The depth counter resets on the way out: siblings at the same
        // depth don't accumulate.
        let arm = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH - 2),
            "]".repeat(MAX_DEPTH - 2)
        );
        let wide = format!("[{arm},{arm}]");
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn writer_roundtrips_documents_and_formats_integral_numbers() {
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str("serve".into())),
            ("count".into(), Json::Num(12_000.0)),
            ("p99".into(), Json::Num(1.5e-3)),
            ("neg_zero".into(), Json::Num(-0.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "samples".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("x\n\"y".into())]),
            ),
        ]);
        let text = doc.to_json_string();
        // Integral floats print as integers; everything round-trips.
        assert!(text.contains("\"count\":12000"), "{text}");
        assert!(text.contains("\"p99\":0.0015"), "{text}");
        assert!(text.contains("\"neg_zero\":-0.0"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // Non-finite numbers degrade to the schema's quoted strings.
        let nan = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(nan.to_json_string(), r#"["NaN","inf"]"#);
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
    }
}
