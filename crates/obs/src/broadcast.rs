//! Bounded, drop-counting fan-out of live telemetry to subscribers.
//!
//! The control plane (`mfgcp-ctl`) needs the event stream *while the run
//! is alive*, not after it lands on disk. [`BroadcastSink`] is a
//! [`Recorder`] that forwards every event to an optional inner sink (so
//! `--telemetry FILE` keeps working unchanged) and offers each event to
//! every live [`Subscription`] whose [`SubscriptionFilter`] matches the
//! event name.
//!
//! # Backpressure and drop semantics
//!
//! Subscriber queues are bounded and the producer **never blocks**: the
//! recorder runs inside the simulation engine, and a slow observer must
//! not change *when* slots execute any more than a fast one does. When a
//! subscriber's queue is full the incoming event is dropped for that
//! subscriber and its `dropped` counter is bumped; the invariant
//! `enqueued + dropped == matched` holds exactly per subscriber, which is
//! what the parity test audits. Because events keep their recorder-level
//! `seq`, a consumer sees a strictly increasing (possibly gapped)
//! sequence — gaps are the drops, and the JSONL schema validator accepts
//! them.
//!
//! The sink always reports [`Recorder::enabled`] even with zero
//! subscribers: subscribers attach at any time, and the whole point of
//! `--observe` is that the stream is warm when they do. With no
//! subscribers a `record` call is one mutex lock on an empty list.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::event::Event;
use crate::recorder::Recorder;

/// Name-prefix filter selecting which series a subscriber receives.
///
/// An empty prefix list matches everything. A prefix matches a name when
/// the name starts with it, so `"net.shard."` selects the three shard
/// gauges and `"market.slot"` selects exactly that series (no other
/// series shares the prefix).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubscriptionFilter {
    prefixes: Vec<String>,
}

impl SubscriptionFilter {
    /// Matches every event.
    pub fn all() -> Self {
        Self::default()
    }

    /// Matches events whose name starts with any of `prefixes`; an empty
    /// list matches everything.
    pub fn new(prefixes: Vec<String>) -> Self {
        SubscriptionFilter { prefixes }
    }

    /// Whether an event name passes the filter.
    pub fn matches(&self, name: &str) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| name.starts_with(p.as_str()))
    }

    /// The configured prefixes (empty = match all).
    pub fn prefixes(&self) -> &[String] {
        &self.prefixes
    }
}

#[derive(Debug)]
struct SubscriberInner {
    queue: Mutex<VecDeque<Event>>,
    available: Condvar,
    capacity: usize,
    filter: SubscriptionFilter,
    enqueued: AtomicU64,
    dropped: AtomicU64,
    closed: AtomicBool,
}

impl SubscriberInner {
    /// Offers one matching event; drops it (counting) when full or closed.
    fn offer(&self, event: &Event) {
        if self.closed.load(Ordering::Acquire) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Ok(mut queue) = self.queue.lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if queue.len() >= self.capacity {
            drop(queue);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        queue.push_back(event.clone());
        drop(queue);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
    }
}

/// Consumer handle for one subscription created by
/// [`BroadcastSink::subscribe`].
///
/// Dropping (or [`close`](Subscription::close)-ing) the handle detaches
/// the subscription; the sink prunes it on its next `record`.
#[derive(Debug)]
pub struct Subscription {
    inner: Arc<SubscriberInner>,
}

impl Subscription {
    /// Pops the oldest queued event without waiting.
    pub fn try_recv(&self) -> Option<Event> {
        self.inner.queue.lock().ok()?.pop_front()
    }

    /// Pops the oldest queued event, waiting up to `timeout` for one to
    /// arrive. Returns `None` on timeout or when the subscription closed
    /// with an empty queue.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Event> {
        let mut queue = self.inner.queue.lock().ok()?;
        if let Some(event) = queue.pop_front() {
            return Some(event);
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return None;
        }
        let (mut queue, _timed_out) = self
            .inner
            .available
            .wait_timeout(queue, timeout)
            .map(|(q, t)| (q, t.timed_out()))
            .ok()?;
        queue.pop_front()
    }

    /// Events successfully enqueued for this subscriber so far.
    pub fn enqueued(&self) -> u64 {
        self.inner.enqueued.load(Ordering::Relaxed)
    }

    /// Matching events dropped because the queue was full (or the
    /// subscription already closed). `enqueued() + dropped()` equals the
    /// number of events that matched the filter since subscribing.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The filter this subscription was created with.
    pub fn filter(&self) -> &SubscriptionFilter {
        &self.inner.filter
    }

    /// Whether the subscription has been closed (producer side keeps
    /// counting drops until the sink prunes it).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Detaches the subscription and wakes any blocked `recv_timeout`.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.available.notify_all();
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.close();
    }
}

/// A [`Recorder`] that fans events out to bounded live subscribers and
/// optionally tees to an inner sink; see the module docs for semantics.
#[derive(Default)]
pub struct BroadcastSink {
    subscribers: Mutex<Vec<Arc<SubscriberInner>>>,
    inner: Option<Arc<dyn Recorder>>,
    /// Total drops across all subscribers, for cheap status queries.
    dropped_total: AtomicU64,
    /// Total enqueues across all subscribers.
    enqueued_total: AtomicU64,
}

impl BroadcastSink {
    /// A broadcast sink with no inner sink: events reach subscribers only.
    pub fn new() -> Self {
        Self::default()
    }

    /// A broadcast sink that also forwards every event to `inner`
    /// (typically a [`crate::JsonlSink`], so `--telemetry` and
    /// `--observe` compose).
    pub fn tee(inner: Arc<dyn Recorder>) -> Self {
        BroadcastSink {
            inner: Some(inner),
            ..Self::default()
        }
    }

    /// Attaches a subscriber with a bounded queue of `capacity` events
    /// (clamped to at least 1) receiving the series selected by `filter`.
    pub fn subscribe(&self, capacity: usize, filter: SubscriptionFilter) -> Subscription {
        let inner = Arc::new(SubscriberInner {
            queue: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            available: Condvar::new(),
            capacity: capacity.max(1),
            filter,
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        if let Ok(mut subs) = self.subscribers.lock() {
            subs.push(Arc::clone(&inner));
        }
        Subscription { inner }
    }

    /// Number of currently attached (not yet pruned) subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().map(|s| s.len()).unwrap_or(0)
    }

    /// Total events enqueued across all subscribers so far.
    pub fn frames_enqueued(&self) -> u64 {
        self.enqueued_total.load(Ordering::Relaxed)
    }

    /// Total matching events dropped across all subscribers so far.
    pub fn frames_dropped(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Closes every subscription (wakes blocked receivers) and prunes
    /// them; used at end of run so stream readers see EOF promptly.
    pub fn close_all(&self) {
        if let Ok(mut subs) = self.subscribers.lock() {
            for sub in subs.drain(..) {
                sub.closed.store(true, Ordering::Release);
                sub.available.notify_all();
            }
        }
    }
}

impl Recorder for BroadcastSink {
    fn enabled(&self) -> bool {
        // Always on: subscribers attach mid-run, and the inner tee (if
        // any) must see the full stream regardless.
        true
    }

    fn record(&self, event: Event) {
        if let Ok(mut subs) = self.subscribers.lock() {
            subs.retain(|s| !s.closed.load(Ordering::Acquire));
            for sub in subs.iter() {
                if sub.filter.matches(event.name) {
                    let before_enq = sub.enqueued.load(Ordering::Relaxed);
                    let before_drop = sub.dropped.load(Ordering::Relaxed);
                    sub.offer(&event);
                    self.enqueued_total.fetch_add(
                        sub.enqueued.load(Ordering::Relaxed) - before_enq,
                        Ordering::Relaxed,
                    );
                    self.dropped_total.fetch_add(
                        sub.dropped.load(Ordering::Relaxed) - before_drop,
                        Ordering::Relaxed,
                    );
                }
            }
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderHandle;
    use crate::sinks::MemorySink;

    #[test]
    fn filters_match_by_prefix_and_empty_matches_all() {
        let all = SubscriptionFilter::all();
        assert!(all.matches("market.slot"));
        assert!(all.matches("anything"));
        let shard = SubscriptionFilter::new(vec!["net.shard.".into(), "market.slot".into()]);
        assert!(shard.matches("net.shard.occupancy"));
        assert!(shard.matches("market.slot"));
        assert!(!shard.matches("net.topology"));
        assert!(!shard.matches("solver.iteration"));
    }

    #[test]
    fn events_fan_out_to_matching_subscribers_only() {
        let sink = Arc::new(BroadcastSink::new());
        let rec = RecorderHandle::new(Arc::clone(&sink));
        let market = sink.subscribe(16, SubscriptionFilter::new(vec!["market.".into()]));
        let everything = sink.subscribe(16, SubscriptionFilter::all());

        rec.gauge("market.slot", 1.0, &[]);
        rec.counter("solver.iteration", 1, &[]);

        assert_eq!(market.enqueued(), 1);
        assert_eq!(market.try_recv().unwrap().name, "market.slot");
        assert!(market.try_recv().is_none());
        assert_eq!(everything.enqueued(), 2);
        assert_eq!(sink.frames_enqueued(), 3);
        assert_eq!(sink.frames_dropped(), 0);
    }

    #[test]
    fn full_queue_drops_and_accounting_is_exact() {
        let sink = Arc::new(BroadcastSink::new());
        let rec = RecorderHandle::new(Arc::clone(&sink));
        let slow = sink.subscribe(2, SubscriptionFilter::all());

        for i in 0..10u64 {
            rec.counter("market.slot", i, &[]);
        }
        assert_eq!(slow.enqueued(), 2);
        assert_eq!(slow.dropped(), 8);
        assert_eq!(slow.enqueued() + slow.dropped(), 10);
        assert_eq!(sink.frames_dropped(), 8);

        // Draining frees capacity again; seq numbers expose the gap.
        let first = slow.try_recv().unwrap();
        let second = slow.try_recv().unwrap();
        assert!(first.seq < second.seq);
        rec.counter("market.slot", 99, &[]);
        assert_eq!(slow.enqueued(), 3);
        let third = slow.try_recv().unwrap();
        assert!(second.seq < third.seq, "gapped but strictly increasing");
    }

    #[test]
    fn tee_forwards_every_event_to_the_inner_sink() {
        let memory = Arc::new(MemorySink::new());
        let sink = Arc::new(BroadcastSink::tee(Arc::clone(&memory) as Arc<dyn Recorder>));
        let rec = RecorderHandle::new(Arc::clone(&sink));
        let slow = sink.subscribe(1, SubscriptionFilter::all());
        rec.counter("a", 1, &[]);
        rec.counter("b", 2, &[]);
        // The subscriber dropped one, the tee saw both.
        assert_eq!(slow.enqueued() + slow.dropped(), 2);
        assert_eq!(memory.len(), 2);
    }

    #[test]
    fn closed_subscriptions_are_pruned_and_receivers_wake() {
        let sink = Arc::new(BroadcastSink::new());
        let rec = RecorderHandle::new(Arc::clone(&sink));
        let sub = sink.subscribe(4, SubscriptionFilter::all());
        assert_eq!(sink.subscriber_count(), 1);
        sub.close();
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_none());
        rec.counter("x", 1, &[]);
        assert_eq!(sink.subscriber_count(), 0, "pruned on next record");

        let waker = sink.subscribe(4, SubscriptionFilter::all());
        let sink2 = Arc::clone(&sink);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            sink2.close_all();
        });
        // Blocks until close_all wakes it (well under the 5 s bound).
        assert!(waker.recv_timeout(Duration::from_secs(5)).is_none());
        assert!(waker.is_closed());
        t.join().unwrap();
    }

    #[test]
    fn always_enabled_even_with_no_subscribers() {
        let sink = BroadcastSink::new();
        assert!(sink.enabled());
        // RecorderHandle::from_dyn drops disabled sinks; this one must
        // survive so late subscribers see the stream.
        let rec = RecorderHandle::from_dyn(Arc::new(BroadcastSink::new()) as Arc<dyn Recorder>);
        assert!(rec.enabled());
    }
}
