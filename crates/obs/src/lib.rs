//! Structured observability layer for the MFG-CP reproduction.
//!
//! The solver and market simulator are numerical black boxes without
//! telemetry: [`ConvergenceReport`-style] post-hoc summaries say *whether* a
//! run converged, not where its time went, whether the PDE kernels stayed
//! inside their CFL bounds, or what the market did slot by slot. This crate
//! provides the missing layer:
//!
//! * a typed event model ([`Event`], [`Value`], [`Kind`]) covering spans
//!   (with monotonic wall-clock timing), counters, gauges and point events;
//! * a [`Recorder`] sink trait with a no-op default ([`Noop`]) so
//!   instrumented hot paths cost one branch when telemetry is off;
//! * a cheap, cloneable [`RecorderHandle`] that owns the sequence counter
//!   and the monotonic epoch and is what instrumented code carries around;
//! * an in-memory sink for tests ([`MemorySink`]) and a line-delimited JSON
//!   sink ([`JsonlSink`]) for production runs;
//! * a bounded, drop-counting live fan-out ([`BroadcastSink`] with
//!   per-subscriber [`SubscriptionFilter`]s) feeding the `mfgcp-ctl`
//!   observer endpoint without ever blocking the producer;
//! * a hand-rolled minimal JSON emitter/parser ([`json`]) — the dependency
//!   allowlist has neither `serde` nor `tracing`, and the subset needed
//!   here (flat objects of scalars) is small;
//! * the documented event schema and its validator ([`schema`]), also
//!   exposed as the `validate_telemetry` binary the CI bench-smoke job runs
//!   over emitted telemetry.
//!
//! [`ConvergenceReport`-style]: https://github.com/mfgcp/mfgcp
//!
//! # Design rules
//!
//! 1. **Telemetry reads state, never perturbs it.** Recorders receive
//!    copies of already-computed numbers; no instrumentation site may
//!    branch on recorder state in a way that changes the numerics.
//!    Determinism tests upstream run with recording enabled and assert
//!    bit-identical equilibria.
//! 2. **Near-zero overhead when disabled.** [`RecorderHandle::enabled`] is
//!    a null check; every emit helper returns before building its payload
//!    when disabled, and expensive derived quantities (mass integrals,
//!    non-finite scans) must be guarded by `enabled()` at the call site.
//! 3. **One line per event, schema-checked.** Every sink ultimately speaks
//!    the JSONL schema of [`schema`]; CI validates emitted telemetry
//!    line-by-line and fails on violations.
//!
//! # Example
//!
//! ```
//! use mfgcp_obs::{MemorySink, RecorderHandle, Kind};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = RecorderHandle::new(sink.clone());
//! let span = rec.span("solve");
//! rec.gauge("residual", 0.125, &[("iteration", 3u64.into())]);
//! span.close(&[("converged", true.into())]);
//! let events = sink.events();
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[1].kind, Kind::Gauge);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod broadcast;
mod event;
pub mod json;
mod recorder;
pub mod schema;
mod sinks;

pub use broadcast::{BroadcastSink, Subscription, SubscriptionFilter};
pub use event::{Event, Kind, Value};
pub use recorder::{OnceFlag, Recorder, RecorderHandle, Span};
pub use sinks::{JsonlSink, MemorySink, Noop};
