//! Implicit (backward-Euler) Fokker–Planck steppers built on the Thomas
//! solver — unconditionally stable alternatives to the explicit
//! CFL-sub-stepped kernels in [`crate::FokkerPlanck1d`] /
//! [`crate::FokkerPlanck2d`].
//!
//! The 1-D step solves the finite-volume system
//!
//! `λ^{n+1}_i + (Δt/Δx)(F_{i+1/2}(λ^{n+1}) − F_{i−1/2}(λ^{n+1})) = λ^n_i`
//!
//! with the same upwind face flux as the explicit kernel
//! (`F = b⁺λ_L + b⁻λ_R − D(λ_R − λ_L)/Δx`) and zero-flux walls. Because
//! the flux sum telescopes for *any* `λ^{n+1}`, total mass is conserved
//! exactly at every step size — no CFL restriction. The 2-D stepper applies
//! Lie (sequential) directional splitting: an implicit x-sweep per column,
//! then an implicit y-sweep per row; first-order in time like the rest of
//! the discretization.

use crate::axis::Grid2d;
use crate::batch::{batched_lie_sweeps, BandBlock};
use crate::field::{Field1d, Field2d};
use crate::linalg::solve_tridiagonal_into;
use crate::scratch::TriScratch;
use crate::PdeError;

fn check_diffusion(name: &'static str, d: f64) -> Result<f64, PdeError> {
    if !d.is_finite() || d < 0.0 {
        return Err(PdeError::BadCoefficient { name, value: d });
    }
    Ok(d)
}

/// Assemble and solve one implicit 1-D finite-volume step in place.
///
/// `values` holds `λ^n` on entry and `λ^{n+1}` on exit; `drift` is nodal.
/// This is the scalar oracle the batched block sweeps are checked against.
fn implicit_sweep(
    values: &mut [f64],
    drift: &[f64],
    diffusion: f64,
    dt: f64,
    dx: f64,
    tri: &mut TriScratch,
) {
    let n = values.len();
    debug_assert!(n >= 2);
    let r = dt / dx;
    let d_over = diffusion / dx;
    let (lower, diag, upper, c_star) = tri.bands(n);
    lower.fill(0.0);
    diag.fill(1.0);
    upper.fill(0.0);
    // Face i+1/2 couples cells i and i+1. Accumulate each face's
    // contribution into the two balance equations it appears in.
    for i in 0..n - 1 {
        let b_face = 0.5 * (drift[i] + drift[i + 1]);
        let b_plus = b_face.max(0.0);
        let b_minus = b_face.min(0.0);
        // F_{i+1/2} = b⁺λ_i + b⁻λ_{i+1} − D(λ_{i+1} − λ_i)/Δx
        //           = (b⁺ + D/Δx) λ_i + (b⁻ − D/Δx) λ_{i+1}.
        let c_left = b_plus + d_over;
        let c_right = b_minus - d_over;
        // Row i: + (Δt/Δx)·F_{i+1/2}.
        diag[i] += r * c_left;
        upper[i] += r * c_right;
        // Row i+1: − (Δt/Δx)·F_{i+1/2}.
        lower[i + 1] -= r * c_left;
        diag[i + 1] -= r * c_right;
    }
    solve_tridiagonal_into(lower, diag, upper, values, c_star);
}

/// Lane-major FPK band assembly for one column block: the face loop of
/// [`implicit_sweep`] replicated across `width` lanes with the per-lane
/// accumulation order preserved, so every lane's bands are bit-identical
/// to a scalar assembly of that column.
#[allow(clippy::too_many_arguments)] // shape fixed by `batch::AssembleBands`
fn assemble_fpk_block(
    drift: &[f64],
    stride: usize,
    n: usize,
    width: usize,
    diffusion: f64,
    dt: f64,
    dx: f64,
    bands: BandBlock<'_>,
) {
    let r = dt / dx;
    let d_over = diffusion / dx;
    bands.lower.fill(0.0);
    bands.diag.fill(1.0);
    bands.upper.fill(0.0);
    for i in 0..n - 1 {
        let row = i * width;
        let next = row + width;
        // Pre-slice the two band rows each face touches so the lane loop
        // is a bounds-check-free elementwise map.
        let (diag_cur, diag_next) = bands.diag.split_at_mut(next);
        let diag_cur = &mut diag_cur[row..];
        let diag_next = &mut diag_next[..width];
        let upper_cur = &mut bands.upper[row..next];
        let lower_next = &mut bands.lower[next..next + width];
        let drift_cur = &drift[i * stride..i * stride + width];
        let drift_next = &drift[(i + 1) * stride..(i + 1) * stride + width];
        for l in 0..width {
            let b_face = 0.5 * (drift_cur[l] + drift_next[l]);
            let b_plus = b_face.max(0.0);
            let b_minus = b_face.min(0.0);
            let c_left = b_plus + d_over;
            let c_right = b_minus - d_over;
            diag_cur[l] += r * c_left;
            upper_cur[l] += r * c_right;
            lower_next[l] -= r * c_left;
            diag_next[l] -= r * c_right;
        }
    }
}

/// Unconditionally stable implicit 1-D Fokker–Planck stepper.
#[derive(Debug, Clone)]
pub struct ImplicitFokkerPlanck1d {
    diffusion: f64,
}

impl ImplicitFokkerPlanck1d {
    /// Create a stepper with diffusion coefficient `D = ½ϱ²`.
    ///
    /// # Errors
    ///
    /// Returns an error if `diffusion` is negative or non-finite.
    pub fn new(diffusion: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion: check_diffusion("diffusion", diffusion)?,
        })
    }

    /// Advance `density` by `dt` in a single implicit solve (no CFL bound).
    ///
    /// # Panics
    ///
    /// Panics if `drift.len()` mismatches the density.
    pub fn step(&self, density: &mut Field1d, drift: &[f64], dt: f64) {
        let n = density.values().len();
        assert_eq!(drift.len(), n, "drift length mismatch");
        let dx = density.axis().dx();
        let mut tri = TriScratch::default();
        implicit_sweep(
            density.values_mut(),
            drift,
            self.diffusion,
            dt,
            dx,
            &mut tri,
        );
    }
}

/// Unconditionally stable implicit 2-D Fokker–Planck stepper with Lie
/// directional splitting.
#[derive(Debug, Clone)]
pub struct ImplicitFokkerPlanck2d {
    diffusion_x: f64,
    diffusion_y: f64,
    batched: bool,
    recorder: mfgcp_obs::RecorderHandle,
    nonfinite: mfgcp_obs::OnceFlag,
}

impl ImplicitFokkerPlanck2d {
    /// Create a stepper with per-axis diffusion coefficients. Batched
    /// column-block sweeps are on by default; see
    /// [`ImplicitFokkerPlanck2d::set_batched`].
    ///
    /// # Errors
    ///
    /// Returns an error if either coefficient is negative or non-finite.
    pub fn new(diffusion_x: f64, diffusion_y: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion_x: check_diffusion("diffusion_x", diffusion_x)?,
            diffusion_y: check_diffusion("diffusion_y", diffusion_y)?,
            batched: true,
            recorder: mfgcp_obs::RecorderHandle::noop(),
            nonfinite: mfgcp_obs::OnceFlag::new(),
        })
    }

    /// Choose between the batched column-block sweeps (default) and the
    /// scalar one-column-at-a-time oracle. Both produce bit-identical
    /// results — the scalar path exists as the differential oracle and as
    /// a `--scalar-kernels` escape hatch, not as a different scheme.
    pub fn set_batched(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Attach a telemetry recorder: the first non-finite density value
    /// fires the `pde.fpk.nonfinite` sentinel (once per instance). The
    /// implicit solve has no CFL bound, so no margin gauge is emitted.
    pub fn set_recorder(&mut self, recorder: mfgcp_obs::RecorderHandle) {
        self.recorder = recorder;
    }

    /// Advance `density` by `dt`: one implicit x-sweep per column, then one
    /// implicit y-sweep per row.
    ///
    /// # Panics
    ///
    /// Panics if drift fields are not on the density's grid.
    pub fn step(&self, density: &mut Field2d, bx: &Field2d, by: &Field2d, dt: f64) {
        self.step_scratch(density, bx, by, dt, &mut crate::StepperScratch::new());
    }

    /// [`ImplicitFokkerPlanck2d::step`] with a caller-owned
    /// [`crate::StepperScratch`] so repeated steps allocate nothing
    /// beyond the Thomas solves.
    ///
    /// # Panics
    ///
    /// Panics if drift fields are not on the density's grid.
    pub fn step_scratch(
        &self,
        density: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        dt: f64,
        scratch: &mut crate::StepperScratch,
    ) {
        assert_eq!(density.grid(), bx.grid(), "bx grid mismatch");
        assert_eq!(density.grid(), by.grid(), "by grid mismatch");
        let grid: Grid2d = density.grid().clone();
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let (dx, dy) = (grid.x().dx(), grid.y().dx());

        if self.batched {
            batched_lie_sweeps(
                density.values_mut(),
                nx,
                ny,
                bx.values(),
                by.values(),
                self.diffusion_x,
                self.diffusion_y,
                dt,
                dx,
                dy,
                assemble_fpk_block,
                scratch.batch(),
            );
        } else {
            let (col, col_drift, row_drift, tri) = scratch.lie_buffers(nx, ny);

            // X-direction sweeps (one tridiagonal solve per j-column).
            for j in 0..ny {
                for i in 0..nx {
                    col[i] = density.at(i, j);
                    col_drift[i] = bx.at(i, j);
                }
                implicit_sweep(col, col_drift, self.diffusion_x, dt, dx, tri);
                for (i, &v) in col.iter().enumerate() {
                    density.set(i, j, v);
                }
            }
            // Y-direction sweeps (rows are contiguous in memory).
            for i in 0..nx {
                for (j, rd) in row_drift.iter_mut().enumerate() {
                    *rd = by.at(i, j);
                }
                let start = grid.index(i, 0);
                implicit_sweep(
                    &mut density.values_mut()[start..start + ny],
                    row_drift,
                    self.diffusion_y,
                    dt,
                    dy,
                    tri,
                );
            }
        }
        crate::telemetry::report_nonfinite(
            &self.recorder,
            &self.nonfinite,
            "pde.fpk.nonfinite",
            density,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use crate::fokker_planck::{FokkerPlanck1d, FokkerPlanck2d};

    fn axis(lo: f64, hi: f64, n: usize) -> Axis {
        Axis::new(lo, hi, n).unwrap()
    }

    fn gaussian(ax: Axis, mean: f64, sd: f64) -> Field1d {
        let mut f = Field1d::from_fn(ax, |x| {
            let z = (x - mean) / sd;
            (-0.5 * z * z).exp()
        });
        f.normalize();
        f
    }

    #[test]
    fn implicit_1d_conserves_mass_at_any_dt() {
        let stepper = ImplicitFokkerPlanck1d::new(0.02).unwrap();
        let drift: Vec<f64> = (0..81).map(|i| 0.5 - 0.01 * i as f64).collect();
        for &dt in &[0.001, 0.1, 10.0] {
            let mut lam = gaussian(axis(0.0, 1.0, 81), 0.7, 0.1);
            let m0 = lam.integral();
            for _ in 0..10 {
                stepper.step(&mut lam, &drift, dt);
            }
            assert!(
                (lam.integral() - m0).abs() < 1e-10,
                "dt = {dt}: {}",
                lam.integral()
            );
        }
    }

    #[test]
    fn implicit_1d_is_nonnegative_even_at_huge_dt() {
        // Backward Euler with an M-matrix system preserves positivity;
        // the explicit scheme would blow up at this dt.
        let stepper = ImplicitFokkerPlanck1d::new(0.01).unwrap();
        let drift = vec![-0.4; 61];
        let mut lam = gaussian(axis(0.0, 1.0, 61), 0.5, 0.05);
        for _ in 0..5 {
            stepper.step(&mut lam, &drift, 5.0);
        }
        assert!(lam.values().iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn implicit_matches_explicit_at_small_dt() {
        let diffusion = 0.004;
        let implicit = ImplicitFokkerPlanck1d::new(diffusion).unwrap();
        let mut explicit = FokkerPlanck1d::new(diffusion).unwrap();
        let drift = vec![-0.3; 101];
        let mut a = gaussian(axis(0.0, 1.0, 101), 0.7, 0.1);
        let mut b = a.clone();
        let dt = 5e-4;
        for _ in 0..400 {
            implicit.step(&mut a, &drift, dt);
            explicit.step(&mut b, &drift, dt);
        }
        assert!(a.sup_distance(&b) < 5e-3, "dist {}", a.sup_distance(&b));
    }

    #[test]
    fn implicit_1d_reaches_ou_stationary_density() {
        // Large steps straight to the stationary law — the whole point of
        // the implicit scheme.
        let theta = 4.0;
        let mu = 0.5;
        let varrho = 0.2;
        let stepper = ImplicitFokkerPlanck1d::new(0.5 * varrho * varrho).unwrap();
        let ax = axis(-0.5, 1.5, 201);
        let drift: Vec<f64> = ax.coords().iter().map(|&x| theta * (mu - x)).collect();
        let mut lam = gaussian(ax.clone(), 1.0, 0.05);
        for _ in 0..60 {
            stepper.step(&mut lam, &drift, 0.5);
        }
        let mean = lam.first_moment() / lam.integral();
        assert!((mean - mu).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn implicit_2d_conserves_mass_and_matches_explicit() {
        let gx = axis(0.0, 1.0, 17);
        let gy = axis(0.0, 1.0, 25);
        let grid = Grid2d::new(gx, gy);
        let mut lam = Field2d::from_fn(grid.clone(), |x, y| {
            (-40.0 * ((x - 0.5).powi(2) + (y - 0.6).powi(2))).exp()
        });
        lam.normalize();
        let bx = Field2d::from_fn(grid.clone(), |x, _| 0.2 * (0.5 - x));
        let by = Field2d::from_fn(grid, |_, y| -0.3 * y);
        let implicit = ImplicitFokkerPlanck2d::new(0.003, 0.005).unwrap();
        let explicit = FokkerPlanck2d::new(0.003, 0.005).unwrap();

        let mut a = lam.clone();
        let mut b = lam.clone();
        let m0 = lam.integral();
        for _ in 0..50 {
            implicit.step(&mut a, &bx, &by, 0.01);
            explicit.step(&mut b, &bx, &by, 0.01);
        }
        assert!(
            (a.integral() - m0).abs() < 1e-10,
            "implicit mass {}",
            a.integral()
        );
        // Splitting + backward-Euler smearing vs the explicit reference:
        // compare relative to the density peak (~8 on this grid).
        let rel = a.sup_distance(&b) / b.max();
        assert!(rel < 0.03, "relative dist {rel}");
        // And it stays sane at a dt the explicit scheme would reject via
        // hundreds of sub-steps.
        implicit.step(&mut a, &bx, &by, 50.0);
        assert!((a.integral() - m0).abs() < 1e-10);
        assert!(a.min() >= -1e-12);
    }

    #[test]
    fn invalid_diffusion_rejected() {
        assert!(ImplicitFokkerPlanck1d::new(-0.1).is_err());
        assert!(ImplicitFokkerPlanck2d::new(0.1, f64::NAN).is_err());
    }
}
