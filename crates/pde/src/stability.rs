//! CFL stability bookkeeping shared by the explicit steppers.

/// Computes the largest stable explicit time step for an advection–diffusion
/// problem and splits macro steps into stable sub-steps.
///
/// For the scheme `u' = −∂(b u) + D ∂² u` (or its backward counterpart) the
/// explicit step is stable when
/// `dt · ( |b_x|/dx + |b_y|/dy + 2 D_x/dx² + 2 D_y/dy² ) <= 1`.
/// A safety factor (default 0.9) keeps the step strictly inside the bound.
#[derive(Debug, Clone, Copy)]
pub struct StabilityLimit {
    safety: f64,
}

impl Default for StabilityLimit {
    fn default() -> Self {
        Self { safety: 0.9 }
    }
}

impl StabilityLimit {
    /// Create a limit with a custom safety factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `safety` is outside `(0, 1]`.
    pub fn with_safety(safety: f64) -> Self {
        assert!(
            safety > 0.0 && safety <= 1.0,
            "safety must be in (0, 1], got {safety}"
        );
        Self { safety }
    }

    /// Largest stable `dt` for one axis with max speed `b_max`, diffusion
    /// `d`, spacing `dx`. Returns `f64::INFINITY` when both vanish.
    pub fn max_dt_1d(&self, b_max: f64, d: f64, dx: f64) -> f64 {
        self.max_dt(&[(b_max, d, dx)])
    }

    /// Largest stable `dt` for a multi-axis problem; each entry is
    /// `(b_max, d, dx)` for one axis.
    pub fn max_dt(&self, axes: &[(f64, f64, f64)]) -> f64 {
        let mut rate = 0.0;
        for &(b_max, d, dx) in axes {
            debug_assert!(dx > 0.0, "dx must be positive");
            rate += b_max.abs() / dx + 2.0 * d / (dx * dx);
        }
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            self.safety / rate
        }
    }

    /// The *marginal* time step: the largest stable `dt` with the safety
    /// factor stripped back out, i.e. exactly on the CFL boundary
    /// `dt · Σ(|b|/dx + 2D/dx²) = 1`. Useful for stress tests that want
    /// the worst admissible step (the implicit kernels' band diagonal
    /// dominance is thinnest there); for actual stepping use
    /// [`StabilityLimit::max_dt`].
    pub fn marginal_dt(&self, axes: &[(f64, f64, f64)]) -> f64 {
        self.max_dt(axes) / self.safety
    }

    /// Split a macro step `dt` into the smallest number of equal sub-steps
    /// that satisfy `sub_dt <= max_dt`. Returns `(n_sub, sub_dt)`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn substeps(&self, dt: f64, max_dt: f64) -> (usize, f64) {
        assert!(dt > 0.0, "dt must be positive, got {dt}");
        if max_dt.is_infinite() || dt <= max_dt {
            return (1, dt);
        }
        let n = (dt / max_dt).ceil() as usize;
        (n, dt / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_diffusion_bound() {
        let s = StabilityLimit::with_safety(1.0);
        // dt <= dx²/(2D): D=1, dx=0.1 → 0.005.
        assert!((s.max_dt_1d(0.0, 1.0, 0.1) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn pure_advection_bound() {
        let s = StabilityLimit::with_safety(1.0);
        // dt <= dx/|b|: b=2, dx=0.1 → 0.05.
        assert!((s.max_dt_1d(2.0, 0.0, 0.1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn combined_axes_sum_rates() {
        let s = StabilityLimit::with_safety(1.0);
        let dt = s.max_dt(&[(1.0, 0.0, 0.1), (1.0, 0.0, 0.1)]);
        assert!((dt - 0.05).abs() < 1e-12);
    }

    #[test]
    fn no_dynamics_means_unbounded() {
        let s = StabilityLimit::default();
        assert!(s.max_dt_1d(0.0, 0.0, 0.1).is_infinite());
        assert_eq!(s.substeps(1.0, f64::INFINITY), (1, 1.0));
    }

    #[test]
    fn substeps_cover_the_interval_exactly() {
        let s = StabilityLimit::default();
        let (n, sub) = s.substeps(1.0, 0.3);
        assert_eq!(n, 4);
        assert!((sub * n as f64 - 1.0).abs() < 1e-12);
        assert!(sub <= 0.3);
    }

    #[test]
    fn marginal_dt_strips_the_safety_factor() {
        let s = StabilityLimit::with_safety(0.5);
        let axes = [(2.0, 0.3, 0.1)];
        assert!((s.marginal_dt(&axes) - 2.0 * s.max_dt(&axes)).abs() < 1e-15);
        // On the boundary itself: dt · rate = 1.
        let rate = 2.0 / 0.1 + 2.0 * 0.3 / 0.01;
        assert!((s.marginal_dt(&axes) * rate - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn bad_safety_rejected() {
        StabilityLimit::with_safety(0.0);
    }
}
