//! Reusable workspace for the 2-D steppers.
//!
//! Every 2-D stepper needs per-step temporaries (the explicit kernels a
//! grid-sized update buffer, the implicit Lie-split kernels strided column
//! copies). The plain `step`/`step_back` entry points allocate them on each
//! call, which is fine for one-shot use but wasteful inside the Picard loop
//! of Alg. 2 where the same stepper runs `time_steps × iterations` times.
//! [`StepperScratch`] lets such callers own the temporaries once and thread
//! them through the `*_scratch` variants.

/// Scratch for one allocation-free scalar Thomas sweep: the three bands,
/// plus the solver's `c_star` elimination row. Owned by [`StepperScratch`]
/// for the 2-D steppers; the 1-D steppers build a short-lived one per step
/// (they allocated per step before, too).
#[derive(Debug, Clone, Default)]
pub(crate) struct TriScratch {
    lower: Vec<f64>,
    diag: Vec<f64>,
    upper: Vec<f64>,
    c_star: Vec<f64>,
}

impl TriScratch {
    /// Bands and `c_star` sized for an `n`-row system, in
    /// `(lower, diag, upper, c_star)` order. Contents are stale; the
    /// assembly code fills them.
    pub(crate) fn bands(&mut self, n: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        self.lower.resize(n, 0.0);
        self.diag.resize(n, 0.0);
        self.upper.resize(n, 0.0);
        self.c_star.resize(n, 0.0);
        (
            &mut self.lower,
            &mut self.diag,
            &mut self.upper,
            &mut self.c_star,
        )
    }
}

/// Structure-of-arrays scratch for the batched column-block sweeps: the
/// three lane-major band planes (`n × width`), the batched solver's
/// `c_star` plane and `beta` pivot row, and the transpose staging buffers
/// the y-direction sweeps gather strided columns into. Fields are crate-
/// visible so the block driver can borrow them disjointly.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    pub(crate) lower: Vec<f64>,
    pub(crate) diag: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) c_star: Vec<f64>,
    pub(crate) beta: Vec<f64>,
    pub(crate) soa: Vec<f64>,
    pub(crate) soa_drift: Vec<f64>,
}

impl BatchScratch {
    /// Size every plane for an `n`-row block of `width` lanes. Band and
    /// staging contents are stale; assembly and the gather loops fill them.
    pub(crate) fn resize(&mut self, n: usize, width: usize) {
        let nw = n * width;
        self.lower.resize(nw, 0.0);
        self.diag.resize(nw, 0.0);
        self.upper.resize(nw, 0.0);
        self.c_star.resize(nw, 0.0);
        self.beta.resize(width, 0.0);
        self.soa.resize(nw, 0.0);
        self.soa_drift.resize(nw, 0.0);
    }
}

/// Caller-owned scratch buffers for the 2-D steppers' `*_scratch` entry
/// points. One instance can be shared across *all* four 2-D steppers (the
/// buffers are resized on demand and carry no state between calls).
#[derive(Debug, Clone, Default)]
pub struct StepperScratch {
    /// Grid-sized update buffer (explicit kernels).
    buf: Vec<f64>,
    /// Column copy for the implicit x-sweeps (length `nx`).
    col: Vec<f64>,
    /// Column drift copy for the implicit x-sweeps (length `nx`).
    col_drift: Vec<f64>,
    /// Row drift copy for the implicit y-sweeps (length `ny`).
    row_drift: Vec<f64>,
    /// Bands + `c_star` for the scalar-oracle implicit sweeps.
    tri: TriScratch,
    /// SoA planes for the batched column-block sweeps.
    batch: BatchScratch,
}

impl StepperScratch {
    /// A fresh, empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn buf_for(&mut self, len: usize) -> &mut [f64] {
        self.buf.resize(len, 0.0);
        &mut self.buf
    }

    pub(crate) fn lie_buffers(
        &mut self,
        nx: usize,
        ny: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut TriScratch) {
        self.col.resize(nx, 0.0);
        self.col_drift.resize(nx, 0.0);
        self.row_drift.resize(ny, 0.0);
        (
            &mut self.col,
            &mut self.col_drift,
            &mut self.row_drift,
            &mut self.tri,
        )
    }

    pub(crate) fn batch(&mut self) -> &mut BatchScratch {
        &mut self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Axis, BackwardParabolic2d, Field2d, FokkerPlanck2d, Grid2d, ImplicitBackward2d,
        ImplicitFokkerPlanck2d,
    };

    fn grid() -> Grid2d {
        Grid2d::new(
            Axis::new(0.0, 1.0, 13).unwrap(),
            Axis::new(0.0, 1.0, 19).unwrap(),
        )
    }

    #[test]
    fn scratch_variants_are_bit_identical_to_allocating_ones() {
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |x, y| {
            (-30.0 * ((x - 0.4).powi(2) + (y - 0.6).powi(2))).exp()
        });
        lam.normalize();
        let bx = Field2d::from_fn(g.clone(), |x, _| 0.3 * (0.5 - x));
        let by = Field2d::from_fn(g.clone(), |_, y| -0.2 * y);
        let src = Field2d::from_fn(g, |x, y| x + 0.5 * y);
        // One shared workspace across all four steppers, reused over steps.
        let mut scratch = StepperScratch::new();

        let fpk = FokkerPlanck2d::new(0.003, 0.005).unwrap();
        let (mut a, mut b) = (lam.clone(), lam.clone());
        for _ in 0..5 {
            fpk.step(&mut a, &bx, &by, 0.01);
            fpk.step_scratch(&mut b, &bx, &by, 0.01, &mut scratch);
        }
        assert_eq!(a.values(), b.values());

        let back = BackwardParabolic2d::new(0.003, 0.005).unwrap();
        let (mut a, mut b) = (lam.clone(), lam.clone());
        for _ in 0..5 {
            back.step_back(&mut a, &bx, &by, &src, 0.01);
            back.step_back_scratch(&mut b, &bx, &by, &src, 0.01, &mut scratch);
        }
        assert_eq!(a.values(), b.values());

        let ifpk = ImplicitFokkerPlanck2d::new(0.003, 0.005).unwrap();
        let (mut a, mut b) = (lam.clone(), lam.clone());
        for _ in 0..5 {
            ifpk.step(&mut a, &bx, &by, 0.05);
            ifpk.step_scratch(&mut b, &bx, &by, 0.05, &mut scratch);
        }
        assert_eq!(a.values(), b.values());

        let iback = ImplicitBackward2d::new(0.003, 0.005).unwrap();
        let (mut a, mut b) = (lam.clone(), lam);
        for _ in 0..5 {
            iback.step_back(&mut a, &bx, &by, &src, 0.05);
            iback.step_back_scratch(&mut b, &bx, &by, &src, 0.05, &mut scratch);
        }
        assert_eq!(a.values(), b.values());
    }
}
