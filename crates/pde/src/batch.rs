//! Shared column-block driver for the batched Lie-split implicit sweeps.
//!
//! Both 2-D implicit steppers ([`crate::ImplicitFokkerPlanck2d`] and
//! [`crate::ImplicitBackward2d`]) have the same sweep structure — an
//! implicit x-solve per j-column, then an implicit y-solve per i-row —
//! and differ only in how the tridiagonal bands are assembled. This module
//! holds the block loop they share: it walks the grid in
//! [`BLOCK_WIDTH`]-wide lane groups, calls a stepper-supplied band
//! assembler for each group, and hands the group to
//! [`solve_tridiagonal_batch`].
//!
//! Layout is the whole trick. A [`crate::Field2d`] is row-major with the
//! x-index major (`values[i * ny + j]`), so a group of adjacent
//! j-columns is *already* lane-major for an x-direction sweep: row `i` of
//! the group is the contiguous segment `values[i * ny + j0 ..][..width]`,
//! and the batched solver runs in place with row stride `ny` — no
//! gather/scatter at all. Only the y-direction sweeps (lanes = adjacent
//! i-rows) need a transpose: columns are gathered into a lane-major
//! staging buffer, solved there, and scattered back.
//!
//! Every lane reproduces the scalar sweep's operation kinds and order
//! exactly (assemblers preserve the face/row accumulation order, the
//! solver the Thomas recurrence), so the batched path is bit-identical to
//! the scalar oracle; within a direction the columns are independent, so
//! block order cannot change results either.

use crate::linalg::{solve_tridiagonal_batch, BLOCK_WIDTH};
use crate::scratch::BatchScratch;

/// Mutable views of one block's lane-major band planes, `n × width` each.
/// Assemblers must overwrite them fully (contents are stale on entry).
pub(crate) struct BandBlock<'a> {
    pub(crate) lower: &'a mut [f64],
    pub(crate) diag: &'a mut [f64],
    pub(crate) upper: &'a mut [f64],
}

/// Band assembler for one lane block: drift for row `i`, lane `l` is at
/// `drift[i * stride + l]`; bands are written lane-major at
/// `[i * width + l]`. The trailing floats are `(diffusion, dt, dx)`.
pub(crate) type AssembleBands = fn(&[f64], usize, usize, usize, f64, f64, f64, BandBlock<'_>);

/// Run one full Lie-split step over `values` (row-major `nx × ny`):
/// batched x-direction sweeps in place, then batched y-direction sweeps
/// through the transpose staging buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn batched_lie_sweeps(
    values: &mut [f64],
    nx: usize,
    ny: usize,
    bx: &[f64],
    by: &[f64],
    diffusion_x: f64,
    diffusion_y: f64,
    dt: f64,
    dx: f64,
    dy: f64,
    assemble: AssembleBands,
    s: &mut BatchScratch,
) {
    debug_assert_eq!(values.len(), nx * ny);
    debug_assert_eq!(bx.len(), nx * ny);
    debug_assert_eq!(by.len(), nx * ny);

    // X-direction: lanes are adjacent j-columns, already lane-major in the
    // field's own storage — assemble from a strided drift view and solve
    // in place with row stride ny.
    let mut j0 = 0;
    while j0 < ny {
        let w = BLOCK_WIDTH.min(ny - j0);
        s.resize(nx, w);
        assemble(
            &bx[j0..],
            ny,
            nx,
            w,
            diffusion_x,
            dt,
            dx,
            BandBlock {
                lower: &mut s.lower,
                diag: &mut s.diag,
                upper: &mut s.upper,
            },
        );
        solve_tridiagonal_batch(
            nx,
            w,
            &s.lower,
            &s.diag,
            &s.upper,
            &mut values[j0..],
            ny,
            &mut s.c_star,
            &mut s.beta,
        );
        j0 += w;
    }

    // Y-direction: lanes are adjacent i-rows, strided in memory — gather
    // the block into the lane-major staging buffers, solve there with row
    // stride = width, scatter back.
    let mut i0 = 0;
    while i0 < nx {
        let w = BLOCK_WIDTH.min(nx - i0);
        s.resize(ny, w);
        for j in 0..ny {
            let row = j * w;
            for l in 0..w {
                let src = (i0 + l) * ny + j;
                s.soa[row + l] = values[src];
                s.soa_drift[row + l] = by[src];
            }
        }
        assemble(
            &s.soa_drift,
            w,
            ny,
            w,
            diffusion_y,
            dt,
            dy,
            BandBlock {
                lower: &mut s.lower,
                diag: &mut s.diag,
                upper: &mut s.upper,
            },
        );
        solve_tridiagonal_batch(
            ny,
            w,
            &s.lower,
            &s.diag,
            &s.upper,
            &mut s.soa,
            w,
            &mut s.c_star,
            &mut s.beta,
        );
        for j in 0..ny {
            let row = j * w;
            for l in 0..w {
                values[(i0 + l) * ny + j] = s.soa[row + l];
            }
        }
        i0 += w;
    }
}

#[cfg(test)]
mod tests {
    use crate::{Axis, Field2d, Grid2d, ImplicitBackward2d, ImplicitFokkerPlanck2d};

    // Grid sizes that straddle the block width: a full 32-lane block plus
    // a remainder in each direction, and tiny grids down to one lane.
    const SHAPES: [(usize, usize); 4] = [(37, 45), (32, 64), (5, 2), (2, 3)];

    fn fields(nx: usize, ny: usize) -> (Field2d, Field2d, Field2d, Field2d) {
        let g = Grid2d::new(
            Axis::new(0.0, 1.0, nx).unwrap(),
            Axis::new(0.0, 1.0, ny).unwrap(),
        );
        let mut lam = Field2d::from_fn(g.clone(), |x, y| {
            (-25.0 * ((x - 0.45).powi(2) + (y - 0.55).powi(2))).exp() + 0.01
        });
        lam.normalize();
        let bx = Field2d::from_fn(g.clone(), |x, y| 0.4 * (0.5 - x) + 0.1 * (7.0 * y).sin());
        let by = Field2d::from_fn(g.clone(), |x, y| -0.3 * y + 0.2 * (5.0 * x).cos());
        let src = Field2d::from_fn(g, |x, y| x * x + 0.5 * y);
        (lam, bx, by, src)
    }

    #[test]
    fn batched_fpk_is_bit_identical_to_scalar_oracle() {
        for &(nx, ny) in &SHAPES {
            let (lam, bx, by, _) = fields(nx, ny);
            let batched = ImplicitFokkerPlanck2d::new(0.003, 0.005).unwrap();
            let mut scalar = ImplicitFokkerPlanck2d::new(0.003, 0.005).unwrap();
            scalar.set_batched(false);
            let (mut a, mut b) = (lam.clone(), lam);
            for _ in 0..4 {
                batched.step(&mut a, &bx, &by, 0.07);
                scalar.step(&mut b, &bx, &by, 0.07);
            }
            assert_eq!(a.values(), b.values(), "grid {nx}x{ny}");
        }
    }

    #[test]
    fn batched_hjb_is_bit_identical_to_scalar_oracle() {
        for &(nx, ny) in &SHAPES {
            let (lam, bx, by, src) = fields(nx, ny);
            let batched = ImplicitBackward2d::new(0.004, 0.002).unwrap();
            let mut scalar = ImplicitBackward2d::new(0.004, 0.002).unwrap();
            scalar.set_batched(false);
            let (mut a, mut b) = (lam.clone(), lam);
            for _ in 0..4 {
                batched.step_back(&mut a, &bx, &by, &src, 0.07);
                scalar.step_back(&mut b, &bx, &by, &src, 0.07);
            }
            assert_eq!(a.values(), b.values(), "grid {nx}x{ny}");
        }
    }
}
