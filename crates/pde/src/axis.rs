//! Uniform 1-D axes and the tensor-product 2-D grid.

use crate::PdeError;

/// A uniform 1-D axis with `n >= 2` points spanning `[lo, hi]` inclusive.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    lo: f64,
    hi: f64,
    n: usize,
    dx: f64,
}

impl Axis {
    /// Create an axis over `[lo, hi]` with `n` points.
    ///
    /// # Errors
    ///
    /// Returns an error if `n < 2` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self, PdeError> {
        if n < 2 {
            return Err(PdeError::TooFewPoints { n });
        }
        if hi.partial_cmp(&lo) != Some(core::cmp::Ordering::Greater)
            || !lo.is_finite()
            || !hi.is_finite()
        {
            return Err(PdeError::EmptyInterval { lo, hi });
        }
        Ok(Self {
            lo,
            hi,
            n,
            dx: (hi - lo) / (n - 1) as f64,
        })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the axis is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grid spacing.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Coordinate of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn at(&self, i: usize) -> f64 {
        assert!(i < self.n, "axis index {i} out of range {}", self.n);
        if i == self.n - 1 {
            self.hi
        } else {
            self.lo + i as f64 * self.dx
        }
    }

    /// All coordinates as a vector.
    pub fn coords(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.at(i)).collect()
    }

    /// Index of the grid point nearest to `x` (clamped to the axis range).
    pub fn nearest(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return self.n - 1;
        }
        (((x - self.lo) / self.dx).round() as usize).min(self.n - 1)
    }

    /// Fractional position of `x` for linear interpolation: returns
    /// `(i, w)` such that `x ≈ (1-w)·at(i) + w·at(i+1)` with
    /// `i <= n-2`, `w ∈ [0, 1]`, clamping outside the range.
    pub fn locate(&self, x: f64) -> (usize, f64) {
        if x <= self.lo {
            return (0, 0.0);
        }
        if x >= self.hi {
            return (self.n - 2, 1.0);
        }
        let s = (x - self.lo) / self.dx;
        let i = (s.floor() as usize).min(self.n - 2);
        (i, s - i as f64)
    }
}

/// The tensor product of two axes; in MFG-CP, `x` is the channel fading
/// coefficient `h` and `y` is the remaining caching space `q`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2d {
    x: Axis,
    y: Axis,
}

impl Grid2d {
    /// Create a grid from two axes.
    pub fn new(x: Axis, y: Axis) -> Self {
        Self { x, y }
    }

    /// The first (row) axis.
    pub fn x(&self) -> &Axis {
        &self.x
    }

    /// The second (column) axis.
    pub fn y(&self) -> &Axis {
        &self.y
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.x.len() * self.y.len()
    }

    /// Whether the grid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cell area `dx · dy` used in integrals.
    pub fn cell_area(&self) -> f64 {
        self.x.dx() * self.y.dx()
    }

    /// Flattened row-major index of point `(i, j)`.
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.x.len() && j < self.y.len());
        i * self.y.len() + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_endpoints_are_exact() {
        let a = Axis::new(0.0, 1.0, 11).unwrap();
        assert_eq!(a.at(0), 0.0);
        assert_eq!(a.at(10), 1.0);
        assert!((a.dx() - 0.1).abs() < 1e-15);
        assert_eq!(a.coords().len(), 11);
    }

    #[test]
    fn axis_rejects_degenerate_input() {
        assert!(Axis::new(0.0, 1.0, 1).is_err());
        assert!(Axis::new(1.0, 1.0, 5).is_err());
        assert!(Axis::new(2.0, 1.0, 5).is_err());
        assert!(Axis::new(f64::NAN, 1.0, 5).is_err());
    }

    #[test]
    fn nearest_clamps_and_rounds() {
        let a = Axis::new(0.0, 1.0, 5).unwrap(); // dx = 0.25
        assert_eq!(a.nearest(-1.0), 0);
        assert_eq!(a.nearest(2.0), 4);
        assert_eq!(a.nearest(0.26), 1);
        assert_eq!(a.nearest(0.40), 2);
    }

    #[test]
    fn locate_gives_interpolation_weights() {
        let a = Axis::new(0.0, 1.0, 5).unwrap();
        let (i, w) = a.locate(0.3);
        assert_eq!(i, 1);
        assert!((w - 0.2).abs() < 1e-12);
        assert_eq!(a.locate(-5.0), (0, 0.0));
        let (i, w) = a.locate(5.0);
        assert_eq!(i, 3);
        assert_eq!(w, 1.0);
    }

    #[test]
    fn grid_index_is_row_major() {
        let g = Grid2d::new(
            Axis::new(0.0, 1.0, 3).unwrap(),
            Axis::new(0.0, 1.0, 4).unwrap(),
        );
        assert_eq!(g.len(), 12);
        assert_eq!(g.index(0, 0), 0);
        assert_eq!(g.index(0, 3), 3);
        assert_eq!(g.index(1, 0), 4);
        assert_eq!(g.index(2, 3), 11);
    }

    #[test]
    fn cell_area_matches_spacings() {
        let g = Grid2d::new(
            Axis::new(0.0, 1.0, 11).unwrap(),
            Axis::new(0.0, 2.0, 21).unwrap(),
        );
        assert!((g.cell_area() - 0.01).abs() < 1e-14);
    }
}
