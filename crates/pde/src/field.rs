//! Dense scalar fields over the grids.

use crate::axis::{Axis, Grid2d};
use crate::PdeError;

/// A scalar field sampled on a 1-D [`Axis`].
#[derive(Debug, Clone, PartialEq)]
pub struct Field1d {
    axis: Axis,
    values: Vec<f64>,
}

impl Field1d {
    /// A zero field on `axis`.
    pub fn zeros(axis: Axis) -> Self {
        let n = axis.len();
        Self {
            axis,
            values: vec![0.0; n],
        }
    }

    /// A field filled from a function of the coordinate.
    pub fn from_fn(axis: Axis, f: impl Fn(f64) -> f64) -> Self {
        let values = (0..axis.len()).map(|i| f(axis.at(i))).collect();
        Self { axis, values }
    }

    /// A field from explicit values.
    ///
    /// # Errors
    ///
    /// Returns [`PdeError::ShapeMismatch`] if `values.len() != axis.len()`.
    pub fn from_values(axis: Axis, values: Vec<f64>) -> Result<Self, PdeError> {
        if values.len() != axis.len() {
            return Err(PdeError::ShapeMismatch {
                expected: axis.len(),
                actual: values.len(),
            });
        }
        Ok(Self { axis, values })
    }

    /// The underlying axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    /// Field values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable field values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at index `i`.
    pub fn at(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Linear interpolation at coordinate `x` (clamped to the axis range).
    pub fn interpolate(&self, x: f64) -> f64 {
        let (i, w) = self.axis.locate(x);
        (1.0 - w) * self.values[i] + w * self.values[i + 1]
    }

    /// Cell-sum integral `Σ f_i · dx`.
    ///
    /// The Fokker–Planck stepper treats grid values as cell masses of a
    /// finite-volume discretization (each node owns a cell of width `dx`),
    /// so the plain Riemann sum — not the trapezoid — is the exactly
    /// conserved quantity; `Field2d::integral` follows the same convention.
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.axis.dx()
    }

    /// First moment `∫ x f(x) dx` (same cell-sum convention as
    /// [`Field1d::integral`]).
    pub fn first_moment(&self) -> f64 {
        let dx = self.axis.dx();
        let moment: f64 = (0..self.values.len())
            .map(|i| self.axis.at(i) * self.values[i])
            .sum();
        dx * moment
    }

    /// Normalize so that [`Field1d::integral`] is 1; no-op when the integral
    /// is zero or non-finite.
    pub fn normalize(&mut self) {
        let total = self.integral();
        if total.is_finite() && total > 0.0 {
            let inv = 1.0 / total;
            for v in &mut self.values {
                *v *= inv;
            }
        }
    }

    /// Supremum-norm distance to another field on the same axis.
    ///
    /// # Panics
    ///
    /// Panics if the axes differ.
    pub fn sup_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.axis, other.axis, "fields live on different axes");
        self.values
            .iter()
            .zip(&other.values)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

/// A scalar field sampled on a [`Grid2d`], stored row-major
/// (`x`-index major, `y`-index minor).
#[derive(Debug, Clone, PartialEq)]
pub struct Field2d {
    grid: Grid2d,
    values: Vec<f64>,
}

impl Field2d {
    /// A zero field on `grid`.
    pub fn zeros(grid: Grid2d) -> Self {
        let n = grid.len();
        Self {
            grid,
            values: vec![0.0; n],
        }
    }

    /// A field filled from a function of the coordinates `(x, y)`.
    pub fn from_fn(grid: Grid2d, f: impl Fn(f64, f64) -> f64) -> Self {
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let mut values = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            let x = grid.x().at(i);
            for j in 0..ny {
                values.push(f(x, grid.y().at(j)));
            }
        }
        Self { grid, values }
    }

    /// A field from explicit row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`PdeError::ShapeMismatch`] on a length mismatch.
    pub fn from_values(grid: Grid2d, values: Vec<f64>) -> Result<Self, PdeError> {
        if values.len() != grid.len() {
            return Err(PdeError::ShapeMismatch {
                expected: grid.len(),
                actual: values.len(),
            });
        }
        Ok(Self { grid, values })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// Raw row-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[self.grid.index(i, j)]
    }

    /// Set value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.grid.index(i, j);
        self.values[idx] = v;
    }

    /// Bilinear interpolation at `(x, y)` (clamped to the grid).
    pub fn interpolate(&self, x: f64, y: f64) -> f64 {
        let (i, wx) = self.grid.x().locate(x);
        let (j, wy) = self.grid.y().locate(y);
        let f00 = self.at(i, j);
        let f01 = self.at(i, j + 1);
        let f10 = self.at(i + 1, j);
        let f11 = self.at(i + 1, j + 1);
        (1.0 - wx) * ((1.0 - wy) * f00 + wy * f01) + wx * ((1.0 - wy) * f10 + wy * f11)
    }

    /// Cell-sum integral `ΣΣ f · dx·dy`.
    ///
    /// The FPK stepper treats grid values as cell masses of a finite-volume
    /// discretization, so a plain Riemann sum (not trapezoid) is the
    /// conserved quantity.
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.grid.cell_area()
    }

    /// Weighted integral `ΣΣ w(x,y) f · dx·dy`.
    pub fn weighted_integral(&self, w: impl Fn(f64, f64) -> f64) -> f64 {
        let (nx, ny) = (self.grid.x().len(), self.grid.y().len());
        let mut acc = 0.0;
        for i in 0..nx {
            let x = self.grid.x().at(i);
            for j in 0..ny {
                acc += w(x, self.grid.y().at(j)) * self.at(i, j);
            }
        }
        acc * self.grid.cell_area()
    }

    /// Marginal over the first axis: `g(y_j) = Σ_i f(x_i, y_j) dx`.
    pub fn marginal_y(&self) -> Field1d {
        let (nx, ny) = (self.grid.x().len(), self.grid.y().len());
        let dx = self.grid.x().dx();
        let mut out = vec![0.0; ny];
        for i in 0..nx {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.at(i, j);
            }
        }
        for o in &mut out {
            *o *= dx;
        }
        Field1d::from_values(self.grid.y().clone(), out).expect("lengths match")
    }

    /// Normalize so that [`Field2d::integral`] is 1; no-op when the integral
    /// is zero or non-finite.
    pub fn normalize(&mut self) {
        let total = self.integral();
        if total.is_finite() && total > 0.0 {
            let inv = 1.0 / total;
            for v in &mut self.values {
                *v *= inv;
            }
        }
    }

    /// Supremum-norm distance to another field on the same grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn sup_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.grid, other.grid, "fields live on different grids");
        self.values
            .iter()
            .zip(&other.values)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Minimum value of the field.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value of the field.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(n: usize) -> Axis {
        Axis::new(0.0, 1.0, n).unwrap()
    }

    fn grid() -> Grid2d {
        Grid2d::new(axis(5), axis(9))
    }

    #[test]
    fn field1d_integral_of_constant() {
        // Cell-sum convention: 101 cells of width 0.01 each holding 2.0.
        let f = Field1d::from_fn(axis(101), |_| 2.0);
        assert!((f.integral() - 2.02).abs() < 1e-12);
    }

    #[test]
    fn field1d_first_moment_of_linear() {
        // ∫₀¹ x·x dx = 1/3 with f(x) = x.
        let f = Field1d::from_fn(axis(1001), |x| x);
        assert!((f.first_moment() - 1.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn field1d_interpolation() {
        let f = Field1d::from_fn(axis(5), |x| x * x);
        // Linear interp between 0.25²=0.0625 and 0.5²=0.25 at midpoint.
        assert!((f.interpolate(0.375) - 0.15625).abs() < 1e-12);
        assert_eq!(f.interpolate(-1.0), 0.0);
        assert_eq!(f.interpolate(2.0), 1.0);
    }

    #[test]
    fn field1d_normalize_makes_unit_mass() {
        let mut f = Field1d::from_fn(axis(51), |x| 1.0 + x);
        f.normalize();
        assert!((f.integral() - 1.0).abs() < 1e-12);
        // Normalizing a zero field is a no-op, not a NaN factory.
        let mut z = Field1d::zeros(axis(5));
        z.normalize();
        assert!(z.values().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn field2d_from_fn_layout() {
        let f = Field2d::from_fn(grid(), |x, y| 10.0 * x + y);
        assert_eq!(f.at(0, 0), 0.0);
        assert!((f.at(1, 2) - (10.0 * 0.25 + 0.25)).abs() < 1e-12);
        assert!((f.at(4, 8) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn field2d_integral_of_constant() {
        let f = Field2d::from_fn(grid(), |_, _| 3.0);
        // Riemann cell-sum: nx*ny*dx*dy*3 = 5*9*0.25*0.125*3.
        let expected = 5.0 * 9.0 * 0.25 * 0.125 * 3.0;
        assert!((f.integral() - expected).abs() < 1e-12);
    }

    #[test]
    fn field2d_bilinear_interpolation_is_exact_for_bilinear() {
        let f = Field2d::from_fn(grid(), |x, y| 2.0 * x + 3.0 * y + x * y);
        for &(x, y) in &[(0.1, 0.2), (0.6, 0.9), (0.0, 1.0)] {
            let exact = 2.0 * x + 3.0 * y + x * y;
            assert!((f.interpolate(x, y) - exact).abs() < 1e-10, "at ({x},{y})");
        }
    }

    #[test]
    fn field2d_marginal_sums_rows() {
        let f = Field2d::from_fn(grid(), |_, y| y);
        let m = f.marginal_y();
        // Marginal at y_j is y_j * (nx * dx) = y_j * 1.25.
        for (j, &v) in m.values().iter().enumerate() {
            assert!((v - m.axis().at(j) * 1.25).abs() < 1e-12);
        }
    }

    #[test]
    fn field2d_shape_mismatch_rejected() {
        assert!(Field2d::from_values(grid(), vec![0.0; 3]).is_err());
        assert!(Field1d::from_values(axis(5), vec![0.0; 4]).is_err());
    }

    #[test]
    fn field2d_min_max_and_sup_distance() {
        let f = Field2d::from_fn(grid(), |x, y| x - y);
        assert_eq!(f.min(), -1.0);
        assert_eq!(f.max(), 1.0);
        let g = Field2d::from_fn(grid(), |x, y| x - y + 0.5);
        assert!((f.sup_distance(&g) - 0.5).abs() < 1e-12);
    }
}
