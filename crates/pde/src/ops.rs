//! Finite-difference derivative operators on 1-D slices.
//!
//! These are the building blocks the backward (HJB) stepper uses to evaluate
//! `∂_h V`, `∂_q V`, `∂_hh V`, `∂_qq V` in Eq. (20). All operators are
//! second-order in the interior and first-order one-sided at the boundary.

/// Which one-sided stencil to use at a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Derivative1d {
    /// Backward difference `(f[i] − f[i−1]) / dx`.
    Backward,
    /// Central difference `(f[i+1] − f[i−1]) / 2dx`.
    Central,
    /// Forward difference `(f[i+1] − f[i]) / dx`.
    Forward,
}

/// Central first derivative of `f` (one-sided at the boundary), writing into
/// `out`.
///
/// # Panics
///
/// Panics if `f.len() < 2` or `out.len() != f.len()`.
pub fn central_gradient(f: &[f64], dx: f64, out: &mut [f64]) {
    let n = f.len();
    assert!(n >= 2, "need at least 2 points");
    assert_eq!(out.len(), n, "output length mismatch");
    out[0] = (f[1] - f[0]) / dx;
    for i in 1..n - 1 {
        out[i] = (f[i + 1] - f[i - 1]) / (2.0 * dx);
    }
    out[n - 1] = (f[n - 1] - f[n - 2]) / dx;
}

/// Upwind first derivative for the transport form `∂_t u + c ∂_x u = 0`:
/// where the local velocity `c > 0`, information flows rightward and the
/// stencil looks left (backward difference); where `c < 0` it looks right.
///
/// The boundary falls back to the only available one-sided stencil.
///
/// # Panics
///
/// Panics if lengths are inconsistent or `f.len() < 2`.
pub fn upwind_gradient(f: &[f64], velocity: &[f64], dx: f64, out: &mut [f64]) {
    let n = f.len();
    assert!(n >= 2, "need at least 2 points");
    assert_eq!(velocity.len(), n, "velocity length mismatch");
    assert_eq!(out.len(), n, "output length mismatch");
    for i in 0..n {
        let dir = if velocity[i] > 0.0 {
            Derivative1d::Backward
        } else {
            Derivative1d::Forward
        };
        out[i] = one_sided(f, i, dx, dir);
    }
}

/// A single one-sided/central first-derivative evaluation at index `i`,
/// clamping to the available stencil at the boundary.
pub(crate) fn one_sided(f: &[f64], i: usize, dx: f64, dir: Derivative1d) -> f64 {
    let n = f.len();
    match dir {
        Derivative1d::Backward => {
            if i == 0 {
                (f[1] - f[0]) / dx
            } else {
                (f[i] - f[i - 1]) / dx
            }
        }
        Derivative1d::Forward => {
            if i == n - 1 {
                (f[n - 1] - f[n - 2]) / dx
            } else {
                (f[i + 1] - f[i]) / dx
            }
        }
        Derivative1d::Central => {
            if i == 0 {
                (f[1] - f[0]) / dx
            } else if i == n - 1 {
                (f[n - 1] - f[n - 2]) / dx
            } else {
                (f[i + 1] - f[i - 1]) / (2.0 * dx)
            }
        }
    }
}

/// Second difference `(f[i−1] − 2f[i] + f[i+1]) / dx²` with reflecting
/// (zero-Neumann) boundary treatment: the ghost value mirrors the interior
/// neighbour, so the boundary second difference is `(f[i±1] − f[i]) / dx²`.
///
/// # Panics
///
/// Panics if `f.len() < 2` or `out.len() != f.len()`.
pub fn second_difference(f: &[f64], dx: f64, out: &mut [f64]) {
    let n = f.len();
    assert!(n >= 2, "need at least 2 points");
    assert_eq!(out.len(), n, "output length mismatch");
    let inv = 1.0 / (dx * dx);
    out[0] = (f[1] - f[0]) * inv;
    for i in 1..n - 1 {
        out[i] = (f[i - 1] - 2.0 * f[i] + f[i + 1]) * inv;
    }
    out[n - 1] = (f[n - 2] - f[n - 1]) * inv;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linspace(lo: f64, hi: f64, n: usize) -> (Vec<f64>, f64) {
        let dx = (hi - lo) / (n - 1) as f64;
        ((0..n).map(|i| lo + i as f64 * dx).collect(), dx)
    }

    #[test]
    fn central_gradient_is_second_order_on_quadratic() {
        let (xs, dx) = linspace(0.0, 1.0, 101);
        let f: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let mut g = vec![0.0; f.len()];
        central_gradient(&f, dx, &mut g);
        // Interior: exact for quadratics.
        for i in 1..f.len() - 1 {
            assert!((g[i] - 2.0 * xs[i]).abs() < 1e-10, "at {i}");
        }
    }

    #[test]
    fn upwind_picks_the_correct_side() {
        let f = vec![0.0, 1.0, 3.0];
        let dx = 1.0;
        let mut g = vec![0.0; 3];
        // Positive velocity at index 1 → backward difference = 1.
        upwind_gradient(&f, &[1.0, 1.0, 1.0], dx, &mut g);
        assert_eq!(g[1], 1.0);
        // Negative velocity at index 1 → forward difference = 2.
        upwind_gradient(&f, &[-1.0, -1.0, -1.0], dx, &mut g);
        assert_eq!(g[1], 2.0);
    }

    #[test]
    fn second_difference_exact_on_quadratic_interior() {
        let (xs, dx) = linspace(0.0, 2.0, 81);
        let f: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let mut d2 = vec![0.0; f.len()];
        second_difference(&f, dx, &mut d2);
        for (i, &v) in d2.iter().enumerate().take(f.len() - 1).skip(1) {
            assert!((v - 6.0).abs() < 1e-8, "at {i}: {v}");
        }
    }

    #[test]
    fn second_difference_vanishes_on_constants_everywhere() {
        let f = vec![4.0; 10];
        let mut d2 = vec![0.0; 10];
        second_difference(&f, 0.1, &mut d2);
        assert!(d2.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let f = vec![2.5; 7];
        let mut g = vec![1.0; 7];
        central_gradient(&f, 0.3, &mut g);
        assert!(g.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn mismatched_output_rejected() {
        let f = vec![0.0; 5];
        let mut g = vec![0.0; 4];
        central_gradient(&f, 0.1, &mut g);
    }
}
