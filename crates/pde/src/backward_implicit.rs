//! Implicit (backward-Euler in reversed time) steppers for value
//! functions — the HJB counterparts of [`crate::ImplicitFokkerPlanck1d`] /
//! [`crate::ImplicitFokkerPlanck2d`].
//!
//! Stepping `V` backwards from `t + Δt` to `t` solves
//!
//! `(I − Δt·(b·∇ + D·Δ)) V(t) = V(t + Δt) + Δt·U`
//!
//! with the same upwind gradient orientation as the explicit
//! [`crate::BackwardParabolic1d`] (`b > 0` looks forward — the reversed
//! characteristic) and reflecting walls (zero ghost gradients). The system
//! matrix is an M-matrix (diagonal `1 + Δt(|b|/Δx + 2D/Δx²)` dominating
//! the off-diagonals), so the discrete maximum principle holds with *no*
//! CFL restriction. 2-D uses Lie directional splitting with the running
//! reward applied in the first sweep.

use crate::axis::Grid2d;
use crate::batch::{batched_lie_sweeps, BandBlock};
use crate::field::{Field1d, Field2d};
use crate::linalg::solve_tridiagonal_into;
use crate::scratch::TriScratch;
use crate::PdeError;

fn check_diffusion(name: &'static str, d: f64) -> Result<f64, PdeError> {
    if !d.is_finite() || d < 0.0 {
        return Err(PdeError::BadCoefficient { name, value: d });
    }
    Ok(d)
}

/// One implicit backward sweep along a line: `values` holds
/// `V(t+Δt) + Δt·(source contribution)` on entry and `V(t)` on exit.
/// This is the scalar oracle the batched block sweeps are checked against.
fn implicit_back_sweep(
    values: &mut [f64],
    drift: &[f64],
    diffusion: f64,
    dt: f64,
    dx: f64,
    tri: &mut TriScratch,
) {
    let n = values.len();
    debug_assert!(n >= 2);
    let r = dt / dx;
    let d2 = dt * diffusion / (dx * dx);
    let (lower, diag, upper, c_star) = tri.bands(n);
    lower.fill(0.0);
    diag.fill(1.0);
    upper.fill(0.0);
    for i in 0..n {
        let b = drift[i];
        let b_plus = b.max(0.0);
        let b_minus = b.min(0.0);
        // Advection: b⁺ uses the forward stencil, b⁻ the backward one;
        // at a wall the missing neighbour has zero ghost gradient.
        if i + 1 < n {
            diag[i] += r * b_plus;
            upper[i] -= r * b_plus;
        }
        if i > 0 {
            diag[i] -= r * b_minus;
            lower[i] += r * b_minus;
        }
        // Diffusion with reflecting walls.
        if i > 0 && i + 1 < n {
            diag[i] += 2.0 * d2;
            lower[i] -= d2;
            upper[i] -= d2;
        } else if i == 0 {
            diag[i] += d2;
            upper[i] -= d2;
        } else {
            diag[i] += d2;
            lower[i] -= d2;
        }
    }
    solve_tridiagonal_into(lower, diag, upper, values, c_star);
}

/// Lane-major HJB band assembly for one column block: the row loop of
/// [`implicit_back_sweep`] replicated across `width` lanes with the
/// per-lane accumulation order preserved (the wall branches depend only
/// on the row index, so they hoist out of the lane loop unchanged).
#[allow(clippy::too_many_arguments)] // shape fixed by `batch::AssembleBands`
fn assemble_back_block(
    drift: &[f64],
    stride: usize,
    n: usize,
    width: usize,
    diffusion: f64,
    dt: f64,
    dx: f64,
    bands: BandBlock<'_>,
) {
    let r = dt / dx;
    let d2 = dt * diffusion / (dx * dx);
    bands.lower.fill(0.0);
    bands.diag.fill(1.0);
    bands.upper.fill(0.0);
    // The scalar sweep's wall branches depend only on the row index, so
    // each row resolves to one of three branch-free lane loops (interior,
    // low wall, high wall); within a lane the band updates run in exactly
    // the scalar order.
    for i in 0..n {
        let row = i * width;
        let has_next = i + 1 < n;
        let has_prev = i > 0;
        // Pre-slice this row of each band so the lane loops are
        // bounds-check-free elementwise maps.
        let lower = &mut bands.lower[row..row + width];
        let diag = &mut bands.diag[row..row + width];
        let upper = &mut bands.upper[row..row + width];
        let drift = &drift[i * stride..i * stride + width];
        if has_prev && has_next {
            for l in 0..width {
                let b = drift[l];
                let b_plus = b.max(0.0);
                let b_minus = b.min(0.0);
                diag[l] += r * b_plus;
                upper[l] -= r * b_plus;
                diag[l] -= r * b_minus;
                lower[l] += r * b_minus;
                diag[l] += 2.0 * d2;
                lower[l] -= d2;
                upper[l] -= d2;
            }
        } else if has_next {
            // i == 0 with a neighbour above.
            for l in 0..width {
                let b_plus = drift[l].max(0.0);
                diag[l] += r * b_plus;
                upper[l] -= r * b_plus;
                diag[l] += d2;
                upper[l] -= d2;
            }
        } else if has_prev {
            // i == n-1.
            for l in 0..width {
                let b_minus = drift[l].min(0.0);
                diag[l] -= r * b_minus;
                lower[l] += r * b_minus;
                diag[l] += d2;
                lower[l] -= d2;
            }
        } else {
            // Single-row system: diffusion's i == 0 wall case only.
            for l in 0..width {
                diag[l] += d2;
                upper[l] -= d2;
            }
        }
    }
}

/// Unconditionally stable implicit 1-D backward stepper.
#[derive(Debug, Clone)]
pub struct ImplicitBackward1d {
    diffusion: f64,
}

impl ImplicitBackward1d {
    /// Create a stepper with diffusion coefficient `D = ½ϱ²`.
    ///
    /// # Errors
    ///
    /// Returns an error if `diffusion` is negative or non-finite.
    pub fn new(diffusion: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion: check_diffusion("diffusion", diffusion)?,
        })
    }

    /// Step `value` backwards by `dt` in one implicit solve.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn step_back(&self, value: &mut Field1d, drift: &[f64], source: &[f64], dt: f64) {
        let n = value.values().len();
        assert_eq!(drift.len(), n, "drift length mismatch");
        assert_eq!(source.len(), n, "source length mismatch");
        let dx = value.axis().dx();
        for (v, s) in value.values_mut().iter_mut().zip(source) {
            *v += dt * s;
        }
        let mut tri = TriScratch::default();
        implicit_back_sweep(value.values_mut(), drift, self.diffusion, dt, dx, &mut tri);
    }
}

/// Unconditionally stable implicit 2-D backward stepper (Lie splitting).
#[derive(Debug, Clone)]
pub struct ImplicitBackward2d {
    diffusion_x: f64,
    diffusion_y: f64,
    batched: bool,
    recorder: mfgcp_obs::RecorderHandle,
    nonfinite: mfgcp_obs::OnceFlag,
}

impl ImplicitBackward2d {
    /// Create a stepper with per-axis diffusion coefficients. Batched
    /// column-block sweeps are on by default; see
    /// [`ImplicitBackward2d::set_batched`].
    ///
    /// # Errors
    ///
    /// Returns an error if either coefficient is negative or non-finite.
    pub fn new(diffusion_x: f64, diffusion_y: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion_x: check_diffusion("diffusion_x", diffusion_x)?,
            diffusion_y: check_diffusion("diffusion_y", diffusion_y)?,
            batched: true,
            recorder: mfgcp_obs::RecorderHandle::noop(),
            nonfinite: mfgcp_obs::OnceFlag::new(),
        })
    }

    /// Choose between the batched column-block sweeps (default) and the
    /// scalar one-column-at-a-time oracle. Both produce bit-identical
    /// results — the scalar path exists as the differential oracle and as
    /// a `--scalar-kernels` escape hatch, not as a different scheme.
    pub fn set_batched(&mut self, batched: bool) {
        self.batched = batched;
    }

    /// Attach a telemetry recorder: the first non-finite value surface
    /// entry fires the `pde.hjb.nonfinite` sentinel (once per instance).
    /// The implicit solve has no CFL bound, so no margin gauge is emitted.
    pub fn set_recorder(&mut self, recorder: mfgcp_obs::RecorderHandle) {
        self.recorder = recorder;
    }

    /// Step `value` backwards by `dt`: add the reward, then one implicit
    /// x-sweep per column and one implicit y-sweep per row.
    ///
    /// # Panics
    ///
    /// Panics on grid mismatches.
    pub fn step_back(
        &self,
        value: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        source: &Field2d,
        dt: f64,
    ) {
        self.step_back_scratch(value, bx, by, source, dt, &mut crate::StepperScratch::new());
    }

    /// [`ImplicitBackward2d::step_back`] with a caller-owned
    /// [`crate::StepperScratch`] so repeated sweeps allocate nothing
    /// beyond the Thomas solves.
    ///
    /// # Panics
    ///
    /// Panics on grid mismatches.
    pub fn step_back_scratch(
        &self,
        value: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        source: &Field2d,
        dt: f64,
        scratch: &mut crate::StepperScratch,
    ) {
        assert_eq!(value.grid(), bx.grid(), "bx grid mismatch");
        assert_eq!(value.grid(), by.grid(), "by grid mismatch");
        assert_eq!(value.grid(), source.grid(), "source grid mismatch");
        let grid: Grid2d = value.grid().clone();
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let (dx, dy) = (grid.x().dx(), grid.y().dx());

        for (v, s) in value.values_mut().iter_mut().zip(source.values()) {
            *v += dt * s;
        }
        if self.batched {
            batched_lie_sweeps(
                value.values_mut(),
                nx,
                ny,
                bx.values(),
                by.values(),
                self.diffusion_x,
                self.diffusion_y,
                dt,
                dx,
                dy,
                assemble_back_block,
                scratch.batch(),
            );
        } else {
            let (col, col_drift, row_drift, tri) = scratch.lie_buffers(nx, ny);
            for j in 0..ny {
                for i in 0..nx {
                    col[i] = value.at(i, j);
                    col_drift[i] = bx.at(i, j);
                }
                implicit_back_sweep(col, col_drift, self.diffusion_x, dt, dx, tri);
                for (i, &v) in col.iter().enumerate() {
                    value.set(i, j, v);
                }
            }
            for i in 0..nx {
                for (j, rd) in row_drift.iter_mut().enumerate() {
                    *rd = by.at(i, j);
                }
                let start = grid.index(i, 0);
                implicit_back_sweep(
                    &mut value.values_mut()[start..start + ny],
                    row_drift,
                    self.diffusion_y,
                    dt,
                    dy,
                    tri,
                );
            }
        }
        crate::telemetry::report_nonfinite(
            &self.recorder,
            &self.nonfinite,
            "pde.hjb.nonfinite",
            value,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use crate::backward::{BackwardParabolic1d, BackwardParabolic2d};

    fn axis(n: usize) -> Axis {
        Axis::new(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn constant_terminal_zero_source_is_invariant() {
        let stepper = ImplicitBackward1d::new(0.05).unwrap();
        let mut v = Field1d::from_fn(axis(41), |_| 3.0);
        let drift = vec![0.8; 41];
        let src = vec![0.0; 41];
        for _ in 0..10 {
            stepper.step_back(&mut v, &drift, &src, 0.5);
        }
        for &x in v.values() {
            assert!((x - 3.0).abs() < 1e-9, "drifted to {x}");
        }
    }

    #[test]
    fn source_accumulates_linearly() {
        let stepper = ImplicitBackward1d::new(0.0).unwrap();
        let mut v = Field1d::zeros(axis(21));
        let drift = vec![0.0; 21];
        let src = vec![2.0; 21];
        for _ in 0..4 {
            stepper.step_back(&mut v, &drift, &src, 0.25);
        }
        for &x in v.values() {
            assert!((x - 2.0).abs() < 1e-9, "got {x}");
        }
    }

    #[test]
    fn maximum_principle_at_huge_dt() {
        // The explicit scheme needs hundreds of sub-steps here; the
        // implicit solve stays within the terminal range in one go.
        let stepper = ImplicitBackward1d::new(0.02).unwrap();
        let mut v = Field1d::from_fn(axis(51), |x| (6.0 * x).sin());
        let (lo, hi) = v
            .values()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
                (l.min(x), h.max(x))
            });
        let drift = vec![1.5; 51];
        let src = vec![0.0; 51];
        stepper.step_back(&mut v, &drift, &src, 20.0);
        for &x in v.values() {
            assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "{x} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn matches_explicit_at_small_dt_1d() {
        let diffusion = 0.01;
        let implicit = ImplicitBackward1d::new(diffusion).unwrap();
        let mut explicit = BackwardParabolic1d::new(diffusion).unwrap();
        let mut a = Field1d::from_fn(axis(81), |x| (-20.0 * (x - 0.6f64).powi(2)).exp());
        let mut b = a.clone();
        let drift = vec![-0.4; 81];
        let src: Vec<f64> = (0..81).map(|i| 0.5 + 0.01 * i as f64).collect();
        for _ in 0..200 {
            implicit.step_back(&mut a, &drift, &src, 1e-3);
            explicit.step_back(&mut b, &drift, &src, 1e-3);
        }
        assert!(a.sup_distance(&b) < 5e-3, "dist {}", a.sup_distance(&b));
    }

    #[test]
    fn matches_explicit_at_small_dt_2d() {
        let grid = Grid2d::new(axis(15), axis(21));
        let implicit = ImplicitBackward2d::new(0.004, 0.006).unwrap();
        let explicit = BackwardParabolic2d::new(0.004, 0.006).unwrap();
        let terminal = Field2d::from_fn(grid.clone(), |x, y| {
            (-30.0 * ((x - 0.5).powi(2) + (y - 0.4).powi(2))).exp()
        });
        let bx = Field2d::from_fn(grid.clone(), |x, _| 0.3 * (0.5 - x));
        let by = Field2d::from_fn(grid.clone(), |_, y| -0.2 * y);
        let src = Field2d::from_fn(grid, |x, y| x + y);
        let mut a = terminal.clone();
        let mut b = terminal;
        for _ in 0..100 {
            implicit.step_back(&mut a, &bx, &by, &src, 2e-3);
            explicit.step_back(&mut b, &bx, &by, &src, 2e-3);
        }
        let rel = a.sup_distance(&b) / b.max().abs().max(1.0);
        assert!(rel < 0.02, "relative dist {rel}");
    }

    #[test]
    fn invalid_diffusion_rejected() {
        assert!(ImplicitBackward1d::new(-1.0).is_err());
        assert!(ImplicitBackward2d::new(0.1, f64::NEG_INFINITY).is_err());
    }
}
