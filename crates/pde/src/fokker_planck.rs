//! Forward Fokker–Planck–Kolmogorov steppers in conservative flux form.
//!
//! Eq. (15) of the paper is the FPK equation for the mean-field density
//! `λ(S_k(t))` under the channel drift `½ς_h(υ_h − h)` and the controlled
//! caching drift `Q_k[−w₁x − w₂Π + w₃ξ^L]`. We discretize the equivalent
//! conservative form
//!
//! `∂_t λ + ∂_h(b_h λ) + ∂_q(b_q λ) = ½ϱ_h² ∂_hh λ + ½ϱ_q² ∂_qq λ`
//!
//! with a finite-volume upwind flux: the face flux between cells `i` and
//! `i+1` is `F = b⁺λ_i + b⁻λ_{i+1} − D (λ_{i+1} − λ_i)/Δ` with
//! `b = ½(b_i + b_{i+1})`, and domain boundary faces carry zero flux
//! (reflecting walls — `q` can neither leave `[0, Q_k]` nor can `h` leave
//! its band). Total mass `Σ λ · cell` is then conserved *exactly*, the
//! discrete counterpart of `∬ λ dh dq = 1`.

use mfgcp_obs::{OnceFlag, RecorderHandle};

use crate::axis::Grid2d;
use crate::field::{Field1d, Field2d};
use crate::stability::StabilityLimit;
use crate::telemetry::{report_cfl, report_nonfinite};
use crate::PdeError;

fn check_diffusion(name: &'static str, d: f64) -> Result<f64, PdeError> {
    if !d.is_finite() || d < 0.0 {
        return Err(PdeError::BadCoefficient { name, value: d });
    }
    Ok(d)
}

/// Upwind face flux between two adjacent cells.
#[inline]
fn face_flux(b_face: f64, left: f64, right: f64, d: f64, dx: f64) -> f64 {
    let advective = if b_face > 0.0 {
        b_face * left
    } else {
        b_face * right
    };
    advective - d * (right - left) / dx
}

/// 1-D forward Fokker–Planck stepper (used by the reduced q-only solver and
/// as the validation target for the 2-D kernel).
#[derive(Debug, Clone)]
pub struct FokkerPlanck1d {
    diffusion: f64,
    limit: StabilityLimit,
    /// Scratch: face fluxes (len = n − 1).
    flux: Vec<f64>,
}

impl FokkerPlanck1d {
    /// Create a stepper with diffusion coefficient `D = ½ϱ²`.
    ///
    /// # Errors
    ///
    /// Returns an error if `diffusion` is negative or non-finite.
    pub fn new(diffusion: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion: check_diffusion("diffusion", diffusion)?,
            limit: StabilityLimit::default(),
            flux: Vec::new(),
        })
    }

    /// The diffusion coefficient.
    pub fn diffusion(&self) -> f64 {
        self.diffusion
    }

    /// Advance `density` by `dt` under nodal `drift` values, automatically
    /// sub-stepping to stay within the CFL bound.
    ///
    /// # Panics
    ///
    /// Panics if `drift.len()` does not match the density length.
    pub fn step(&mut self, density: &mut Field1d, drift: &[f64], dt: f64) {
        let n = density.values().len();
        assert_eq!(drift.len(), n, "drift length mismatch");
        let dx = density.axis().dx();
        let b_max = drift.iter().fold(0.0_f64, |m, b| m.max(b.abs()));
        let max_dt = self.limit.max_dt_1d(b_max, self.diffusion, dx);
        let (n_sub, sub_dt) = self.limit.substeps(dt, max_dt);
        for _ in 0..n_sub {
            self.substep(density, drift, sub_dt);
        }
    }

    fn substep(&mut self, density: &mut Field1d, drift: &[f64], dt: f64) {
        let dx = density.axis().dx();
        let lam = density.values();
        let n = lam.len();
        self.flux.clear();
        self.flux.reserve(n - 1);
        for i in 0..n - 1 {
            let b_face = 0.5 * (drift[i] + drift[i + 1]);
            self.flux
                .push(face_flux(b_face, lam[i], lam[i + 1], self.diffusion, dx));
        }
        let scale = dt / dx;
        let values = density.values_mut();
        for (i, v) in values.iter_mut().enumerate() {
            let f_right = if i + 1 < n { self.flux[i] } else { 0.0 };
            let f_left = if i > 0 { self.flux[i - 1] } else { 0.0 };
            *v -= scale * (f_right - f_left);
        }
    }
}

/// 2-D forward Fokker–Planck stepper over the `(h, q)` grid; the kernel of
/// the mean-field evolution in Alg. 2 line 8.
#[derive(Debug, Clone)]
pub struct FokkerPlanck2d {
    diffusion_x: f64,
    diffusion_y: f64,
    limit: StabilityLimit,
    recorder: RecorderHandle,
    nonfinite: OnceFlag,
}

impl FokkerPlanck2d {
    /// Create a stepper with per-axis diffusion coefficients
    /// `D_h = ½ϱ_h²`, `D_q = ½ϱ_q²`.
    ///
    /// # Errors
    ///
    /// Returns an error if either coefficient is negative or non-finite.
    pub fn new(diffusion_x: f64, diffusion_y: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion_x: check_diffusion("diffusion_x", diffusion_x)?,
            diffusion_y: check_diffusion("diffusion_y", diffusion_y)?,
            limit: StabilityLimit::default(),
            recorder: RecorderHandle::noop(),
            nonfinite: OnceFlag::new(),
        })
    }

    /// Attach a telemetry recorder: every macro step then emits the
    /// `pde.fpk.cfl_margin` gauge, and the first non-finite density value
    /// fires the `pde.fpk.nonfinite` sentinel (once per stepper instance).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Advance `density` by `dt` under drift fields `(bx, by)`, sub-stepping
    /// inside the CFL bound.
    ///
    /// # Panics
    ///
    /// Panics if the drift fields are not on the density's grid.
    pub fn step(&self, density: &mut Field2d, bx: &Field2d, by: &Field2d, dt: f64) {
        self.step_scratch(density, bx, by, dt, &mut crate::StepperScratch::new());
    }

    /// [`FokkerPlanck2d::step`] with a caller-owned [`crate::StepperScratch`]
    /// so repeated steps (e.g. the Picard loop of Alg. 2) allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if the drift fields are not on the density's grid.
    pub fn step_scratch(
        &self,
        density: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        dt: f64,
        scratch: &mut crate::StepperScratch,
    ) {
        assert_eq!(density.grid(), bx.grid(), "bx grid mismatch");
        assert_eq!(density.grid(), by.grid(), "by grid mismatch");
        let grid = density.grid().clone();
        let bx_max = bx.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let by_max = by.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let max_dt = self.limit.max_dt(&[
            (bx_max, self.diffusion_x, grid.x().dx()),
            (by_max, self.diffusion_y, grid.y().dx()),
        ]);
        let (n_sub, sub_dt) = self.limit.substeps(dt, max_dt);
        report_cfl(
            &self.recorder,
            "pde.fpk.cfl_margin",
            max_dt,
            dt,
            n_sub,
            sub_dt,
        );
        let delta = scratch.buf_for(grid.len());
        for _ in 0..n_sub {
            self.substep(density, bx, by, sub_dt, &grid, delta);
        }
        report_nonfinite(
            &self.recorder,
            &self.nonfinite,
            "pde.fpk.nonfinite",
            density,
        );
    }

    fn substep(
        &self,
        density: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        dt: f64,
        grid: &Grid2d,
        delta: &mut [f64],
    ) {
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let (dx, dy) = (grid.x().dx(), grid.y().dx());
        delta.fill(0.0);

        // X-direction face fluxes between (i, j) and (i+1, j).
        let scale_x = dt / dx;
        for i in 0..nx - 1 {
            for j in 0..ny {
                let b_face = 0.5 * (bx.at(i, j) + bx.at(i + 1, j));
                let f = face_flux(
                    b_face,
                    density.at(i, j),
                    density.at(i + 1, j),
                    self.diffusion_x,
                    dx,
                );
                delta[grid.index(i, j)] -= scale_x * f;
                delta[grid.index(i + 1, j)] += scale_x * f;
            }
        }
        // Y-direction face fluxes between (i, j) and (i, j+1).
        let scale_y = dt / dy;
        for i in 0..nx {
            for j in 0..ny - 1 {
                let b_face = 0.5 * (by.at(i, j) + by.at(i, j + 1));
                let f = face_flux(
                    b_face,
                    density.at(i, j),
                    density.at(i, j + 1),
                    self.diffusion_y,
                    dy,
                );
                delta[grid.index(i, j)] -= scale_y * f;
                delta[grid.index(i, j + 1)] += scale_y * f;
            }
        }
        for (v, d) in density.values_mut().iter_mut().zip(delta.iter()) {
            *v += d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn axis(lo: f64, hi: f64, n: usize) -> Axis {
        Axis::new(lo, hi, n).unwrap()
    }

    fn gaussian_field(ax: Axis, mean: f64, sd: f64) -> Field1d {
        let mut f = Field1d::from_fn(ax, |x| {
            let z = (x - mean) / sd;
            (-0.5 * z * z).exp()
        });
        f.normalize();
        f
    }

    #[test]
    fn mass_is_conserved_1d() {
        let mut fpk = FokkerPlanck1d::new(0.02).unwrap();
        let mut lam = gaussian_field(axis(0.0, 1.0, 81), 0.7, 0.1);
        let drift: Vec<f64> = vec![-0.3; 81];
        let m0 = lam.integral();
        for _ in 0..50 {
            fpk.step(&mut lam, &drift, 0.02);
        }
        assert!(
            (lam.integral() - m0).abs() < 1e-12,
            "mass drifted: {}",
            lam.integral()
        );
    }

    #[test]
    fn density_stays_nonnegative_1d() {
        let mut fpk = FokkerPlanck1d::new(0.01).unwrap();
        let mut lam = gaussian_field(axis(0.0, 1.0, 61), 0.5, 0.05);
        let drift: Vec<f64> = (0..61)
            .map(|i| if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        for _ in 0..100 {
            fpk.step(&mut lam, &drift, 0.01);
        }
        assert!(
            lam.values().iter().all(|&v| v >= -1e-12),
            "negative density"
        );
    }

    #[test]
    fn advection_transports_the_mean_1d() {
        // With pure advection b = 0.2, the mean moves by b·t.
        let mut fpk = FokkerPlanck1d::new(0.0).unwrap();
        let mut lam = gaussian_field(axis(0.0, 2.0, 401), 0.5, 0.08);
        let drift = vec![0.2; 401];
        let mean0 = lam.first_moment();
        let t = 1.0;
        for _ in 0..100 {
            fpk.step(&mut lam, &drift, t / 100.0);
        }
        let mean1 = lam.first_moment();
        assert!(
            (mean1 - mean0 - 0.2).abs() < 0.01,
            "mean moved {}",
            mean1 - mean0
        );
    }

    #[test]
    fn ou_relaxes_to_analytic_stationary_density_1d() {
        // dX = θ(μ − X)dt + ϱ dW has stationary N(μ, ϱ²/(2θ)).
        let theta = 4.0;
        let mu = 0.5;
        let varrho = 0.2;
        let d = 0.5 * varrho * varrho;
        let mut fpk = FokkerPlanck1d::new(d).unwrap();
        let ax = axis(-0.5, 1.5, 201);
        let mut lam = gaussian_field(ax.clone(), 1.0, 0.05);
        let drift: Vec<f64> = ax.coords().iter().map(|&x| theta * (mu - x)).collect();
        for _ in 0..400 {
            fpk.step(&mut lam, &drift, 0.01);
        }
        let sd = (varrho * varrho / (2.0 * theta)).sqrt();
        let reference = gaussian_field(ax, mu, sd);
        assert!(
            lam.sup_distance(&reference) < 0.25,
            "sup dist {}",
            lam.sup_distance(&reference)
        );
        // Moments are a sharper check than pointwise density values.
        assert!((lam.first_moment() - mu).abs() < 0.01);
    }

    #[test]
    fn mass_is_conserved_2d() {
        let gx = axis(0.0, 1.0, 21);
        let gy = axis(0.0, 1.0, 31);
        let grid = Grid2d::new(gx, gy);
        let mut lam = Field2d::from_fn(grid.clone(), |x, y| {
            (-30.0 * ((x - 0.5).powi(2) + (y - 0.6).powi(2))).exp()
        });
        lam.normalize();
        let bx = Field2d::from_fn(grid.clone(), |_x, _y| 0.1);
        let by = Field2d::from_fn(grid, |_x, y| -0.2 * y);
        let fpk = FokkerPlanck2d::new(0.005, 0.01).unwrap();
        let m0 = lam.integral();
        for _ in 0..40 {
            fpk.step(&mut lam, &bx, &by, 0.025);
        }
        assert!(
            (lam.integral() - m0).abs() < 1e-10,
            "mass drifted: {}",
            lam.integral()
        );
        assert!(
            lam.values().iter().all(|&v| v >= -1e-12),
            "negative density"
        );
    }

    #[test]
    fn marginal_of_2d_matches_1d_dynamics() {
        // With x-independent drift/diffusion in y and zero dynamics in x,
        // the y-marginal must follow the 1-D equation.
        let gx = axis(0.0, 1.0, 5);
        let gy = axis(0.0, 1.0, 101);
        let grid = Grid2d::new(gx, gy.clone());
        let mut lam2 = Field2d::from_fn(grid.clone(), |_x, y| {
            let z = (y - 0.7) / 0.1;
            (-0.5 * z * z).exp()
        });
        lam2.normalize();
        let bx = Field2d::zeros(grid.clone());
        let drift_y = -0.3;
        let by = Field2d::from_fn(grid, |_x, _y| drift_y);
        let fpk2 = FokkerPlanck2d::new(0.0, 0.004).unwrap();

        let mut lam1 = gaussian_field(gy, 0.7, 0.1);
        let mut fpk1 = FokkerPlanck1d::new(0.004).unwrap();
        let drift1 = vec![drift_y; 101];

        for _ in 0..30 {
            fpk2.step(&mut lam2, &bx, &by, 0.01);
            fpk1.step(&mut lam1, &drift1, 0.01);
        }
        let marg = lam2.marginal_y();
        // Same initial data, same scheme → the agreement should be tight.
        assert!(
            marg.sup_distance(&lam1) < 1e-8,
            "dist {}",
            marg.sup_distance(&lam1)
        );
    }

    #[test]
    fn negative_diffusion_rejected() {
        assert!(FokkerPlanck1d::new(-0.1).is_err());
        assert!(FokkerPlanck2d::new(0.1, f64::NAN).is_err());
    }
}
