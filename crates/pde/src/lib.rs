//! Finite-difference PDE substrate for the MFG-CP reproduction.
//!
//! The paper's evaluation (§V-A) solves the coupled HJB (Eq. (20)) and FPK
//! (Eq. (15)) equations "with the finite difference method". This crate
//! implements that machinery from scratch:
//!
//! * [`Axis`] / [`Grid2d`] — uniform 1-D axes and their tensor-product grid
//!   over the game state `S = (h, q)`;
//! * [`Field1d`] / [`Field2d`] — dense scalar fields on those grids;
//! * [`linalg`] — Thomas (tridiagonal) solver and a dense Gaussian
//!   elimination reference used to validate it;
//! * [`FokkerPlanck1d`] / [`FokkerPlanck2d`] — forward, mass-conservative
//!   (flux-form, upwinded) advection–diffusion steppers for the mean-field
//!   density `λ`;
//! * [`ImplicitFokkerPlanck1d`] / [`ImplicitFokkerPlanck2d`] — their
//!   unconditionally stable backward-Euler counterparts (Thomas solves,
//!   Lie directional splitting in 2-D);
//! * [`BackwardParabolic1d`] / [`BackwardParabolic2d`] — backward, upwinded
//!   steppers for value functions `V`, and their unconditionally stable
//!   implicit counterparts [`ImplicitBackward1d`] / [`ImplicitBackward2d`];
//! * [`StabilityLimit`] — CFL bookkeeping; both steppers sub-step
//!   automatically so callers can think in macro time steps.
//!
//! The FPK kernels are written in conservative (flux) form, so total
//! probability mass is preserved to machine precision under reflecting
//! boundaries — this is the discrete counterpart of
//! `∬ λ dh dq = 1` below Eq. (14) and is enforced by property tests.
//!
//! # Example
//!
//! ```
//! use mfgcp_pde::{Axis, Field1d, FokkerPlanck1d};
//!
//! // A Gaussian density advected towards q = 0 with a little diffusion.
//! let axis = Axis::new(0.0, 1.0, 101).unwrap();
//! let mut lam = Field1d::from_fn(axis, |q| (-50.0 * (q - 0.7f64).powi(2)).exp());
//! lam.normalize();
//! let drift = vec![-0.4; 101];
//! let mut fpk = FokkerPlanck1d::new(0.005).unwrap();
//! for _ in 0..20 {
//!     fpk.step(&mut lam, &drift, 0.02);
//! }
//! assert!((lam.integral() - 1.0).abs() < 1e-10); // mass conserved
//! assert!(lam.first_moment() < 0.7);             // mean moved left
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod axis;
mod backward;
mod backward_implicit;
mod batch;
mod field;
mod fokker_planck;
mod implicit;
pub mod linalg;
mod ops;
mod scratch;
mod stability;
mod telemetry;

pub use axis::{Axis, Grid2d};
pub use backward::{BackwardParabolic1d, BackwardParabolic2d};
pub use backward_implicit::{ImplicitBackward1d, ImplicitBackward2d};
pub use field::{Field1d, Field2d};
pub use fokker_planck::{FokkerPlanck1d, FokkerPlanck2d};
pub use implicit::{ImplicitFokkerPlanck1d, ImplicitFokkerPlanck2d};
pub use ops::{central_gradient, second_difference, upwind_gradient, Derivative1d};
pub use scratch::StepperScratch;
pub use stability::StabilityLimit;

/// Errors from grid/solver construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PdeError {
    /// An axis needs at least two points.
    TooFewPoints {
        /// Points requested.
        n: usize,
    },
    /// An axis upper bound must exceed the lower bound.
    EmptyInterval {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A coefficient that must be non-negative was negative or non-finite.
    BadCoefficient {
        /// Name of the offending coefficient.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
    /// Field dimensions do not match the grid.
    ShapeMismatch {
        /// Expected number of values.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
}

impl core::fmt::Display for PdeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PdeError::TooFewPoints { n } => write!(f, "axis needs >= 2 points, got {n}"),
            PdeError::EmptyInterval { lo, hi } => {
                write!(f, "axis interval [{lo}, {hi}] is empty")
            }
            PdeError::BadCoefficient { name, value } => {
                write!(
                    f,
                    "coefficient `{name}` must be finite and >= 0, got {value}"
                )
            }
            PdeError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "field shape mismatch: expected {expected} values, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for PdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(PdeError::TooFewPoints { n: 1 }.to_string().contains('1'));
        assert!(PdeError::EmptyInterval { lo: 1.0, hi: 0.0 }
            .to_string()
            .contains("empty"));
        assert!(PdeError::BadCoefficient {
            name: "d",
            value: -1.0
        }
        .to_string()
        .contains('d'));
        assert!(PdeError::ShapeMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("mismatch"));
    }
}
