//! Small linear-algebra kernels: the Thomas tridiagonal solver used by the
//! implicit PDE steps, plus a dense Gaussian-elimination reference used to
//! validate it in tests.

/// Solve the tridiagonal system
/// `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]` with the Thomas algorithm.
///
/// `a[0]` and `c[n-1]` are ignored. O(n) time, no allocation beyond the two
/// scratch vectors.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths, are empty, or a pivot
/// vanishes (the matrix must be non-singular; diagonally dominant systems —
/// the only kind the PDE steppers produce — always satisfy this).
pub fn solve_tridiagonal(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(n > 0, "empty system");
    assert!(
        a.len() == n && c.len() == n && d.len() == n,
        "tridiagonal bands must have equal length"
    );
    let mut c_star = vec![0.0; n];
    let mut d_star = vec![0.0; n];
    let mut beta = b[0];
    assert!(beta.abs() > f64::MIN_POSITIVE, "zero pivot at row 0");
    c_star[0] = c[0] / beta;
    d_star[0] = d[0] / beta;
    for i in 1..n {
        beta = b[i] - a[i] * c_star[i - 1];
        assert!(beta.abs() > f64::MIN_POSITIVE, "zero pivot at row {i}");
        c_star[i] = c[i] / beta;
        d_star[i] = (d[i] - a[i] * d_star[i - 1]) / beta;
    }
    let mut x = d_star;
    for i in (0..n - 1).rev() {
        x[i] -= c_star[i] * x[i + 1];
    }
    x
}

/// Solve a dense system `A x = rhs` with partial-pivoting Gaussian
/// elimination. `a` is row-major `n × n`. Intended as a test oracle for
/// [`solve_tridiagonal`]; O(n³).
///
/// # Panics
///
/// Panics on dimension mismatch or a singular matrix.
pub fn solve_dense(a: &[f64], rhs: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(rhs.len(), n, "rhs must have length n");
    let mut m = a.to_vec();
    let mut x = rhs.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[r1 * n + col]
                    .abs()
                    .partial_cmp(&m[r2 * n + col].abs())
                    .expect("no NaN in matrix")
            })
            .expect("non-empty range");
        assert!(
            m[pivot_row * n + col].abs() > 1e-300,
            "singular matrix at column {col}"
        );
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            x.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            x[row] -= factor * x[col];
        }
    }
    for row in (0..n).rev() {
        let mut acc = x[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    x
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_solves_identity() {
        let n = 5;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let d = vec![3.0, -1.0, 0.0, 2.0, 5.0];
        assert_eq!(solve_tridiagonal(&a, &b, &c, &d), d);
    }

    #[test]
    fn thomas_matches_dense_on_laplacian() {
        // Discrete 1-D Laplacian with Dirichlet boundaries: -1, 2, -1.
        let n = 12;
        let a = vec![-1.0; n];
        let b = vec![2.0; n];
        let c = vec![-1.0; n];
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let x_tri = solve_tridiagonal(&a, &b, &c, &d);

        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = 2.0;
            if i > 0 {
                dense[i * n + i - 1] = -1.0;
            }
            if i + 1 < n {
                dense[i * n + i + 1] = -1.0;
            }
        }
        let x_dense = solve_dense(&dense, &d, n);
        assert!(max_abs_diff(&x_tri, &x_dense) < 1e-10);
    }

    #[test]
    fn dense_solves_permuted_system() {
        // A system requiring pivoting: zero on the first diagonal entry.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let rhs = vec![2.0, 3.0];
        let x = solve_dense(&a, &rhs, 2);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn thomas_rejects_mismatched_bands() {
        solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn dense_rejects_singular() {
        solve_dense(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0], 2);
    }
}
