//! Small linear-algebra kernels: the Thomas tridiagonal solver used by the
//! implicit PDE steps (scalar and lane-batched SoA forms), plus a dense
//! Gaussian-elimination reference used to validate them in tests.

/// Column-block width of the batched solvers and sweeps: how many
/// independent tridiagonal systems [`solve_tridiagonal_batch`] advances in
/// lockstep per row. 32 lanes × 8 bytes = two cache lines per band row —
/// wide enough that the auto-vectorizer fills full SIMD registers and the
/// dependent-division latency of the Thomas recurrence is hidden across
/// lanes, small enough that the working set (five `n × BLOCK_WIDTH`
/// buffers) stays cache-resident at production grid sizes.
pub const BLOCK_WIDTH: usize = 32;

/// Solve the tridiagonal system
/// `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]` with the Thomas algorithm.
///
/// `a[0]` and `c[n-1]` are ignored. O(n) time. Thin allocating wrapper over
/// [`solve_tridiagonal_into`], kept for compatibility; hot paths should
/// call the `_into` form with caller-owned scratch.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths, are empty, or a pivot
/// vanishes (the matrix must be non-singular; diagonally dominant systems —
/// the only kind the PDE steppers produce — always satisfy this).
pub fn solve_tridiagonal(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(
        a.len() == n && c.len() == n && d.len() == n,
        "tridiagonal bands must have equal length"
    );
    let mut x = d.to_vec();
    let mut c_star = vec![0.0; n];
    solve_tridiagonal_into(a, b, c, &mut x, &mut c_star);
    x
}

/// Allocation-free [`solve_tridiagonal`]: `x` holds the right-hand side on
/// entry and the solution on exit; `c_star` is caller-owned scratch of the
/// same length. The arithmetic (operation kinds and order) is identical to
/// the allocating form, so results are bit-identical.
///
/// # Panics
///
/// Panics under the same conditions as [`solve_tridiagonal`], or if
/// `c_star` has the wrong length.
pub fn solve_tridiagonal_into(a: &[f64], b: &[f64], c: &[f64], x: &mut [f64], c_star: &mut [f64]) {
    let n = b.len();
    assert!(n > 0, "empty system");
    assert!(
        a.len() == n && c.len() == n && x.len() == n,
        "tridiagonal bands must have equal length"
    );
    assert_eq!(c_star.len(), n, "c_star scratch length mismatch");
    let mut beta = b[0];
    assert!(beta.abs() > f64::MIN_POSITIVE, "zero pivot at row 0");
    c_star[0] = c[0] / beta;
    x[0] /= beta;
    for i in 1..n {
        beta = b[i] - a[i] * c_star[i - 1];
        assert!(beta.abs() > f64::MIN_POSITIVE, "zero pivot at row {i}");
        c_star[i] = c[i] / beta;
        x[i] = (x[i] - a[i] * x[i - 1]) / beta;
    }
    for i in (0..n - 1).rev() {
        x[i] -= c_star[i] * x[i + 1];
    }
}

/// Solve `width` independent tridiagonal systems in lockstep.
///
/// The bands are stored structure-of-arrays, lane-major: row `i` of lane
/// `l` lives at index `i * width + l` of `a`/`b`/`c` (and of the `c_star`
/// scratch). The right-hand sides sit in `x` with a caller-chosen row
/// stride — row `i`, lane `l` at `x[i * stride + l]` — so a block of
/// adjacent grid columns can be solved *in place* in their native
/// row-major field layout (`stride = ny`, no gather/scatter). On exit `x`
/// holds the solutions.
///
/// Per lane, the operation kinds and order are exactly those of
/// [`solve_tridiagonal_into`], so each lane's solution is bit-identical to
/// a scalar solve of the same system; the speedup comes purely from the
/// inner lane loops auto-vectorizing and from the dependent-division
/// recurrence latency being shared across lanes. `beta` is a `width`-sized
/// pivot scratch row.
///
/// # Panics
///
/// Panics on length/stride mismatches (`stride >= width`, bands of
/// `n * width`, `x` covering `(n-1) * stride + width`), an empty system,
/// or a vanishing pivot in any lane (reported with its row index).
#[allow(clippy::too_many_arguments)]
pub fn solve_tridiagonal_batch(
    n: usize,
    width: usize,
    a: &[f64],
    b: &[f64],
    c: &[f64],
    x: &mut [f64],
    stride: usize,
    c_star: &mut [f64],
    beta: &mut [f64],
) {
    assert!(n > 0, "empty system");
    assert!(width > 0, "empty lane block");
    assert!(stride >= width, "stride must cover the lane block");
    assert!(
        a.len() == n * width && b.len() == n * width && c.len() == n * width,
        "tridiagonal bands must be n * width lane-major"
    );
    assert_eq!(c_star.len(), n * width, "c_star scratch length mismatch");
    assert_eq!(beta.len(), width, "beta scratch length mismatch");
    assert!(
        x.len() >= (n - 1) * stride + width,
        "rhs slice too short for n rows at this stride"
    );

    // Row 0: beta = b[0], then one division per lane for c* and x.
    beta.copy_from_slice(&b[..width]);
    check_pivots(beta, 0);
    for l in 0..width {
        c_star[l] = c[l] / beta[l];
        x[l] /= beta[l];
    }
    // Forward elimination: lanes advance in lockstep; the loop bodies are
    // branch-free elementwise maps the auto-vectorizer turns into SIMD.
    for i in 1..n {
        let row = i * width;
        let a_row = &a[row..row + width];
        let b_row = &b[row..row + width];
        let c_row = &c[row..row + width];
        let (cs_prev, cs_cur) = c_star.split_at_mut(row);
        let cs_prev = &cs_prev[row - width..];
        let cs_row = &mut cs_cur[..width];
        for l in 0..width {
            beta[l] = b_row[l] - a_row[l] * cs_prev[l];
        }
        check_pivots(beta, i);
        let (x_head, x_cur) = x.split_at_mut(i * stride);
        let x_prev = &x_head[(i - 1) * stride..(i - 1) * stride + width];
        let x_row = &mut x_cur[..width];
        for l in 0..width {
            cs_row[l] = c_row[l] / beta[l];
            x_row[l] = (x_row[l] - a_row[l] * x_prev[l]) / beta[l];
        }
    }
    // Back substitution, again in lockstep.
    for i in (0..n - 1).rev() {
        let cs_row = &c_star[i * width..i * width + width];
        let (x_head, x_next) = x.split_at_mut((i + 1) * stride);
        let x_row = &mut x_head[i * stride..i * stride + width];
        let x_next = &x_next[..width];
        for l in 0..width {
            x_row[l] -= cs_row[l] * x_next[l];
        }
    }
}

/// Assert every lane's pivot is usable; kept out of the arithmetic loops so
/// they stay vectorizable. Written so a NaN pivot fails too.
#[inline]
fn check_pivots(beta: &[f64], row: usize) {
    for &p in beta {
        assert!(p.abs() > f64::MIN_POSITIVE, "zero pivot at row {row}");
    }
}

/// Solve a dense system `A x = rhs` with partial-pivoting Gaussian
/// elimination. `a` is row-major `n × n`. Intended as a test oracle for
/// [`solve_tridiagonal`]; O(n³).
///
/// # Panics
///
/// Panics on dimension mismatch or a singular matrix.
pub fn solve_dense(a: &[f64], rhs: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(rhs.len(), n, "rhs must have length n");
    let mut m = a.to_vec();
    let mut x = rhs.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[r1 * n + col]
                    .abs()
                    .partial_cmp(&m[r2 * n + col].abs())
                    .expect("no NaN in matrix")
            })
            .expect("non-empty range");
        assert!(
            m[pivot_row * n + col].abs() > 1e-300,
            "singular matrix at column {col}"
        );
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            x.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            x[row] -= factor * x[col];
        }
    }
    for row in (0..n).rev() {
        let mut acc = x[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    x
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_solves_identity() {
        let n = 5;
        let a = vec![0.0; n];
        let b = vec![1.0; n];
        let c = vec![0.0; n];
        let d = vec![3.0, -1.0, 0.0, 2.0, 5.0];
        assert_eq!(solve_tridiagonal(&a, &b, &c, &d), d);
    }

    #[test]
    fn thomas_matches_dense_on_laplacian() {
        // Discrete 1-D Laplacian with Dirichlet boundaries: -1, 2, -1.
        let n = 12;
        let a = vec![-1.0; n];
        let b = vec![2.0; n];
        let c = vec![-1.0; n];
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let x_tri = solve_tridiagonal(&a, &b, &c, &d);

        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = 2.0;
            if i > 0 {
                dense[i * n + i - 1] = -1.0;
            }
            if i + 1 < n {
                dense[i * n + i + 1] = -1.0;
            }
        }
        let x_dense = solve_dense(&dense, &d, n);
        assert!(max_abs_diff(&x_tri, &x_dense) < 1e-10);
    }

    #[test]
    fn dense_solves_permuted_system() {
        // A system requiring pivoting: zero on the first diagonal entry.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let rhs = vec![2.0, 3.0];
        let x = solve_dense(&a, &rhs, 2);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn thomas_rejects_mismatched_bands() {
        solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn dense_rejects_singular() {
        solve_dense(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0], 2);
    }
}
