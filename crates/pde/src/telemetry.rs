//! Shared instrumentation helpers for the 2-D steppers.
//!
//! Every helper early-returns on a disabled recorder, so the numerical
//! kernels pay one branch per macro step when telemetry is off. None of
//! them touch the fields they observe: telemetry reads state, never
//! perturbs it.

use mfgcp_obs::{OnceFlag, RecorderHandle};

use crate::field::Field2d;

/// Emit the CFL health gauge for one macro step: `value` is the headroom
/// ratio `max_dt / sub_dt` (≥ 1 when the sub-stepping honoured the bound;
/// `"inf"` when the step has no dynamics and the bound is vacuous).
pub(crate) fn report_cfl(
    rec: &RecorderHandle,
    name: &'static str,
    max_dt: f64,
    dt: f64,
    n_sub: usize,
    sub_dt: f64,
) {
    if !rec.enabled() {
        return;
    }
    rec.gauge(
        name,
        max_dt / sub_dt,
        &[
            ("max_dt", max_dt.into()),
            ("dt", dt.into()),
            ("substeps", n_sub.into()),
        ],
    );
}

/// Scan `field` for the first non-finite value and fire the sentinel event
/// `name` exactly once per stepper instance, carrying the grid coordinates
/// `(i, j)` of the poisoned cell. The O(grid) scan only runs while the
/// recorder is enabled and the flag has not fired yet.
pub(crate) fn report_nonfinite(
    rec: &RecorderHandle,
    flag: &OnceFlag,
    name: &'static str,
    field: &Field2d,
) {
    if !rec.enabled() || flag.fired() {
        return;
    }
    if let Some(idx) = field.values().iter().position(|v| !v.is_finite()) {
        if flag.fire() {
            let ny = field.grid().y().len();
            rec.event(
                name,
                &[
                    ("i", (idx / ny).into()),
                    ("j", (idx % ny).into()),
                    ("value", field.values()[idx].into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::{Axis, Grid2d};
    use mfgcp_obs::{Kind, MemorySink, Value};
    use std::sync::Arc;

    fn grid() -> Grid2d {
        Grid2d::new(
            Axis::new(0.0, 1.0, 4).unwrap(),
            Axis::new(0.0, 1.0, 5).unwrap(),
        )
    }

    #[test]
    fn nonfinite_sentinel_fires_once_with_coordinates() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        let flag = OnceFlag::new();
        let mut f = Field2d::zeros(grid());
        report_nonfinite(&rec, &flag, "pde.test.nonfinite", &f);
        assert!(sink.is_empty(), "finite field must not fire");
        // Poison cell (2, 3): row-major index 2*5 + 3.
        f.set(2, 3, f64::NAN);
        report_nonfinite(&rec, &flag, "pde.test.nonfinite", &f);
        report_nonfinite(&rec, &flag, "pde.test.nonfinite", &f);
        let events = sink.events();
        assert_eq!(events.len(), 1, "sentinel must fire exactly once");
        assert_eq!(events[0].kind, Kind::Event);
        assert_eq!(events[0].field("i"), Some(&Value::U64(2)));
        assert_eq!(events[0].field("j"), Some(&Value::U64(3)));
    }

    #[test]
    fn cfl_gauge_reports_headroom_and_substeps() {
        let sink = Arc::new(MemorySink::new());
        let rec = RecorderHandle::new(sink.clone());
        report_cfl(&rec, "pde.test.cfl_margin", 0.3, 1.0, 4, 0.25);
        report_cfl(&rec, "pde.test.cfl_margin", f64::INFINITY, 1.0, 1, 1.0);
        let events = sink.events();
        assert_eq!(events[0].value, Some(Value::F64(0.3 / 0.25)));
        assert_eq!(events[0].field("substeps"), Some(&Value::U64(4)));
        assert_eq!(events[1].value, Some(Value::F64(f64::INFINITY)));
    }
}
