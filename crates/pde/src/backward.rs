//! Backward parabolic steppers for value functions.
//!
//! The HJB equation (Eq. (20)) after substituting the optimal control of
//! Thm. 1 is a semi-linear backward parabolic PDE
//!
//! `∂_t V + b_h ∂_h V + b_q ∂_q V + D_h ∂_hh V + D_q ∂_qq V + U = 0`
//!
//! with terminal data `V(T, ·)`. Stepping *backwards* from `t + dt` to `t`
//! is equivalent to stepping the time-reversed equation forwards, which is
//! stable explicitly provided the advection terms are upwinded against the
//! reversed characteristic speed (`−b`) and the step obeys the usual
//! advection–diffusion CFL bound — both handled internally, so callers use
//! macro steps aligned with the control-update grid of Alg. 2.

use mfgcp_obs::{OnceFlag, RecorderHandle};

use crate::axis::Grid2d;
use crate::field::{Field1d, Field2d};
use crate::ops::Derivative1d;
use crate::stability::StabilityLimit;
use crate::telemetry::{report_cfl, report_nonfinite};
use crate::PdeError;

fn check_diffusion(name: &'static str, d: f64) -> Result<f64, PdeError> {
    if !d.is_finite() || d < 0.0 {
        return Err(PdeError::BadCoefficient { name, value: d });
    }
    Ok(d)
}

/// Upwind direction for the term `+ b ∂V` in a *backward* equation: the
/// time-reversed advection speed is `−b`, so where `b > 0` the stencil
/// looks forward.
#[inline]
fn backward_upwind_dir(b: f64) -> Derivative1d {
    if b > 0.0 {
        Derivative1d::Forward
    } else {
        Derivative1d::Backward
    }
}

/// 1-D backward parabolic stepper (used by the reduced q-only HJB solver).
#[derive(Debug, Clone)]
pub struct BackwardParabolic1d {
    diffusion: f64,
    limit: StabilityLimit,
    scratch: Vec<f64>,
}

impl BackwardParabolic1d {
    /// Create a stepper with diffusion coefficient `D = ½ϱ²`.
    ///
    /// # Errors
    ///
    /// Returns an error if `diffusion` is negative or non-finite.
    pub fn new(diffusion: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion: check_diffusion("diffusion", diffusion)?,
            limit: StabilityLimit::default(),
            scratch: Vec::new(),
        })
    }

    /// Step `value` backwards by `dt`: given `V(t + dt)` in `value`,
    /// overwrite it with `V(t)` under nodal `drift` and `source` terms
    /// (both held frozen across the step).
    ///
    /// # Panics
    ///
    /// Panics if `drift` or `source` lengths do not match.
    pub fn step_back(&mut self, value: &mut Field1d, drift: &[f64], source: &[f64], dt: f64) {
        let n = value.values().len();
        assert_eq!(drift.len(), n, "drift length mismatch");
        assert_eq!(source.len(), n, "source length mismatch");
        let dx = value.axis().dx();
        let b_max = drift.iter().fold(0.0_f64, |m, b| m.max(b.abs()));
        let max_dt = self.limit.max_dt_1d(b_max, self.diffusion, dx);
        let (n_sub, sub_dt) = self.limit.substeps(dt, max_dt);
        for _ in 0..n_sub {
            self.substep(value, drift, source, sub_dt);
        }
    }

    fn substep(&mut self, value: &mut Field1d, drift: &[f64], source: &[f64], dt: f64) {
        let dx = value.axis().dx();
        let v = value.values();
        let n = v.len();
        self.scratch.clear();
        self.scratch.reserve(n);
        let inv_dx2 = 1.0 / (dx * dx);
        for i in 0..n {
            // Upwinded gradient; where the upwind neighbour is outside the
            // wall, the reflecting (zero-Neumann) ghost makes it zero —
            // using the opposite one-sided stencil instead would break the
            // scheme's monotonicity (maximum principle).
            let grad = match backward_upwind_dir(drift[i]) {
                Derivative1d::Forward if i + 1 < n => (v[i + 1] - v[i]) / dx,
                Derivative1d::Backward if i > 0 => (v[i] - v[i - 1]) / dx,
                _ => 0.0,
            };
            let lap = if i == 0 {
                (v[1] - v[0]) * inv_dx2
            } else if i == n - 1 {
                (v[n - 2] - v[n - 1]) * inv_dx2
            } else {
                (v[i - 1] - 2.0 * v[i] + v[i + 1]) * inv_dx2
            };
            self.scratch
                .push(v[i] + dt * (drift[i] * grad + self.diffusion * lap + source[i]));
        }
        value.values_mut().copy_from_slice(&self.scratch);
    }
}

/// 2-D backward parabolic stepper over the `(h, q)` grid; the kernel of
/// the HJB sweep in Alg. 2 lines 4–5.
#[derive(Debug, Clone)]
pub struct BackwardParabolic2d {
    diffusion_x: f64,
    diffusion_y: f64,
    limit: StabilityLimit,
    recorder: RecorderHandle,
    nonfinite: OnceFlag,
}

impl BackwardParabolic2d {
    /// Create a stepper with per-axis diffusion coefficients
    /// `D_h = ½ϱ_h²`, `D_q = ½ϱ_q²`.
    ///
    /// # Errors
    ///
    /// Returns an error if either coefficient is negative or non-finite.
    pub fn new(diffusion_x: f64, diffusion_y: f64) -> Result<Self, PdeError> {
        Ok(Self {
            diffusion_x: check_diffusion("diffusion_x", diffusion_x)?,
            diffusion_y: check_diffusion("diffusion_y", diffusion_y)?,
            limit: StabilityLimit::default(),
            recorder: RecorderHandle::noop(),
            nonfinite: OnceFlag::new(),
        })
    }

    /// Attach a telemetry recorder: every macro step then emits the
    /// `pde.hjb.cfl_margin` gauge, and the first non-finite value surface
    /// entry fires the `pde.hjb.nonfinite` sentinel (once per instance).
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Step `value` backwards by `dt` under drift fields `(bx, by)` and the
    /// running-reward `source` (all frozen across the step).
    ///
    /// # Panics
    ///
    /// Panics if any field is not on the value's grid.
    pub fn step_back(
        &self,
        value: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        source: &Field2d,
        dt: f64,
    ) {
        self.step_back_scratch(value, bx, by, source, dt, &mut crate::StepperScratch::new());
    }

    /// [`BackwardParabolic2d::step_back`] with a caller-owned
    /// [`crate::StepperScratch`] so repeated sweeps allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if any field is not on the value's grid.
    pub fn step_back_scratch(
        &self,
        value: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        source: &Field2d,
        dt: f64,
        scratch: &mut crate::StepperScratch,
    ) {
        assert_eq!(value.grid(), bx.grid(), "bx grid mismatch");
        assert_eq!(value.grid(), by.grid(), "by grid mismatch");
        assert_eq!(value.grid(), source.grid(), "source grid mismatch");
        let grid = value.grid().clone();
        let bx_max = bx.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let by_max = by.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let max_dt = self.limit.max_dt(&[
            (bx_max, self.diffusion_x, grid.x().dx()),
            (by_max, self.diffusion_y, grid.y().dx()),
        ]);
        let (n_sub, sub_dt) = self.limit.substeps(dt, max_dt);
        report_cfl(
            &self.recorder,
            "pde.hjb.cfl_margin",
            max_dt,
            dt,
            n_sub,
            sub_dt,
        );
        let next = scratch.buf_for(grid.len());
        for _ in 0..n_sub {
            self.substep(value, bx, by, source, sub_dt, &grid, next);
        }
        report_nonfinite(&self.recorder, &self.nonfinite, "pde.hjb.nonfinite", value);
    }

    #[allow(clippy::too_many_arguments)] // internal kernel: all fields are hot-loop state
    fn substep(
        &self,
        value: &mut Field2d,
        bx: &Field2d,
        by: &Field2d,
        source: &Field2d,
        dt: f64,
        grid: &Grid2d,
        next: &mut [f64],
    ) {
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let (dx, dy) = (grid.x().dx(), grid.y().dx());
        let inv_dx2 = 1.0 / (dx * dx);
        let inv_dy2 = 1.0 / (dy * dy);
        for i in 0..nx {
            for j in 0..ny {
                let v = value.at(i, j);
                let b_x = bx.at(i, j);
                let b_y = by.at(i, j);

                // Upwinded first derivatives against the reversed speed;
                // reflecting ghosts zero the gradient at the walls (an
                // anti-upwind fallback would violate the maximum principle).
                let grad_x = match backward_upwind_dir(b_x) {
                    Derivative1d::Forward if i + 1 < nx => (value.at(i + 1, j) - v) / dx,
                    Derivative1d::Backward if i > 0 => (v - value.at(i - 1, j)) / dx,
                    _ => 0.0,
                };
                let grad_y = match backward_upwind_dir(b_y) {
                    Derivative1d::Forward if j + 1 < ny => (value.at(i, j + 1) - v) / dy,
                    Derivative1d::Backward if j > 0 => (v - value.at(i, j - 1)) / dy,
                    _ => 0.0,
                };

                // Second differences with reflecting (zero-Neumann) walls.
                let lap_x = if i == 0 {
                    (value.at(1, j) - v) * inv_dx2
                } else if i == nx - 1 {
                    (value.at(nx - 2, j) - v) * inv_dx2
                } else {
                    (value.at(i - 1, j) - 2.0 * v + value.at(i + 1, j)) * inv_dx2
                };
                let lap_y = if j == 0 {
                    (value.at(i, 1) - v) * inv_dy2
                } else if j == ny - 1 {
                    (value.at(i, ny - 2) - v) * inv_dy2
                } else {
                    (value.at(i, j - 1) - 2.0 * v + value.at(i, j + 1)) * inv_dy2
                };

                next[grid.index(i, j)] = v + dt
                    * (b_x * grad_x
                        + b_y * grad_y
                        + self.diffusion_x * lap_x
                        + self.diffusion_y * lap_y
                        + source.at(i, j));
            }
        }
        value.values_mut().copy_from_slice(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn axis(lo: f64, hi: f64, n: usize) -> Axis {
        Axis::new(lo, hi, n).unwrap()
    }

    #[test]
    fn zero_source_constant_terminal_stays_constant_1d() {
        let mut stepper = BackwardParabolic1d::new(0.05).unwrap();
        let mut v = Field1d::from_fn(axis(0.0, 1.0, 41), |_| 2.0);
        let drift = vec![0.7; 41];
        let src = vec![0.0; 41];
        for _ in 0..20 {
            stepper.step_back(&mut v, &drift, &src, 0.05);
        }
        for &x in v.values() {
            assert!((x - 2.0).abs() < 1e-10, "drifted to {x}");
        }
    }

    #[test]
    fn pure_source_accumulates_linearly_1d() {
        // With b = D = 0, V(t) = V(T) + (T − t)·U.
        let mut stepper = BackwardParabolic1d::new(0.0).unwrap();
        let mut v = Field1d::zeros(axis(0.0, 1.0, 11));
        let drift = vec![0.0; 11];
        let src = vec![3.0; 11];
        for _ in 0..10 {
            stepper.step_back(&mut v, &drift, &src, 0.1);
        }
        for &x in v.values() {
            assert!((x - 3.0).abs() < 1e-10, "got {x}");
        }
    }

    #[test]
    fn advection_shifts_the_profile_1d() {
        // ∂_t V + b ∂_x V = 0 has solution V(t, x) = V(T, x + b(T − t)).
        let b = 0.3;
        let mut stepper = BackwardParabolic1d::new(0.0).unwrap();
        let ax = axis(0.0, 2.0, 801);
        let terminal = |x: f64| (-40.0 * (x - 1.3) * (x - 1.3)).exp();
        let mut v = Field1d::from_fn(ax.clone(), terminal);
        let drift = vec![b; 801];
        let src = vec![0.0; 801];
        let horizon = 1.0;
        for _ in 0..50 {
            stepper.step_back(&mut v, &drift, &src, horizon / 50.0);
        }
        // Peak should now be near x = 1.3 − b·T = 1.0 (characteristics
        // x(t) = x₀ + b·t reach 1.3 at T from 1.0 at 0).
        let peak_idx = v
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_x = ax.at(peak_idx);
        assert!((peak_x - 1.0).abs() < 0.05, "peak at {peak_x}");
    }

    #[test]
    fn heat_kernel_smooths_2d() {
        let grid = Grid2d::new(axis(0.0, 1.0, 31), axis(0.0, 1.0, 31));
        let stepper = BackwardParabolic2d::new(0.01, 0.01).unwrap();
        let mut v = Field2d::from_fn(grid.clone(), |x, y| {
            (-200.0 * ((x - 0.5).powi(2) + (y - 0.5).powi(2))).exp()
        });
        let zero = Field2d::zeros(grid.clone());
        let max0 = v.max();
        for _ in 0..10 {
            stepper.step_back(&mut v, &zero, &zero, &zero, 0.02);
        }
        assert!(v.max() < max0, "diffusion should lower the peak");
        assert!(v.min() > -1e-12, "maximum principle violated");
    }

    #[test]
    fn source_accumulates_2d() {
        let grid = Grid2d::new(axis(0.0, 1.0, 9), axis(0.0, 1.0, 9));
        let stepper = BackwardParabolic2d::new(0.0, 0.0).unwrap();
        let mut v = Field2d::zeros(grid.clone());
        let zero = Field2d::zeros(grid.clone());
        let src = Field2d::from_fn(grid, |x, _| 1.0 + x);
        for _ in 0..5 {
            stepper.step_back(&mut v, &zero, &zero, &src, 0.2);
        }
        // V(0) = T · (1 + x) with T = 1.
        for i in 0..9 {
            for j in 0..9 {
                let x = v.grid().x().at(i);
                assert!((v.at(i, j) - (1.0 + x)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn invalid_diffusion_rejected() {
        assert!(BackwardParabolic1d::new(-1.0).is_err());
        assert!(BackwardParabolic2d::new(0.1, -0.2).is_err());
    }
}
