//! Property-based tests for the finite-difference substrate.

use proptest::prelude::*;

use mfgcp_pde::{
    linalg, Axis, BackwardParabolic1d, Field1d, Field2d, FokkerPlanck1d, Grid2d,
    ImplicitFokkerPlanck1d, StabilityLimit,
};

/// A diagonally dominant tridiagonal system (always solvable by Thomas).
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0_f64..1.0, n),
        proptest::collection::vec(-1.0_f64..1.0, n),
        proptest::collection::vec(-5.0_f64..5.0, n),
    )
        .prop_map(move |(a, c, d)| {
            let b: Vec<f64> = (0..n).map(|i| 2.5 + a[i].abs() + c[i].abs()).collect();
            (a, b, c, d)
        })
}

proptest! {
    /// Thomas agrees with dense Gaussian elimination on random diagonally
    /// dominant systems.
    #[test]
    fn thomas_matches_dense((a, b, c, d) in dominant_system(12)) {
        let n = b.len();
        let x_tri = linalg::solve_tridiagonal(&a, &b, &c, &d);
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = b[i];
            if i > 0 {
                dense[i * n + i - 1] = a[i];
            }
            if i + 1 < n {
                dense[i * n + i + 1] = c[i];
            }
        }
        let x_dense = linalg::solve_dense(&dense, &d, n);
        prop_assert!(linalg::max_abs_diff(&x_tri, &x_dense) < 1e-9);
    }

    /// Axis lookups: `locate` reconstructs the coordinate, `nearest` is
    /// consistent with `locate`.
    #[test]
    fn axis_locate_roundtrips(
        lo in -10.0_f64..10.0,
        span in 0.1_f64..100.0,
        n in 2_usize..200,
        frac in 0.0_f64..1.0,
    ) {
        let axis = Axis::new(lo, lo + span, n).unwrap();
        let x = lo + frac * span;
        let (i, w) = axis.locate(x);
        prop_assert!(i <= n - 2);
        prop_assert!((0.0..=1.0).contains(&w));
        let reconstructed = (1.0 - w) * axis.at(i) + w * axis.at(i + 1);
        prop_assert!((reconstructed - x).abs() < 1e-9 * span.max(1.0));
        let nearest = axis.nearest(x);
        prop_assert!((axis.at(nearest) - x).abs() <= 0.5 * axis.dx() + 1e-12);
    }

    /// Explicit FPK: mass conservation and positivity for arbitrary
    /// bounded drifts and diffusions, any number of macro steps.
    #[test]
    fn fpk_conserves_mass_and_positivity(
        drift_knots in proptest::collection::vec(-2.0_f64..2.0, 4),
        diffusion in 0.0_f64..0.05,
        steps in 1_usize..30,
    ) {
        let n = 61;
        let axis = Axis::new(0.0, 1.0, n).unwrap();
        let mut lam = Field1d::from_fn(axis.clone(), |x| {
            let z = (x - 0.6) / 0.1;
            (-0.5 * z * z).exp()
        });
        lam.normalize();
        // Piecewise-linear drift from 4 random knots.
        let drift: Vec<f64> = (0..n)
            .map(|i| {
                let s = i as f64 / (n - 1) as f64 * 3.0;
                let k = (s.floor() as usize).min(2);
                let w = s - k as f64;
                (1.0 - w) * drift_knots[k] + w * drift_knots[k + 1]
            })
            .collect();
        let mut fpk = FokkerPlanck1d::new(diffusion).unwrap();
        let m0 = lam.integral();
        for _ in 0..steps {
            fpk.step(&mut lam, &drift, 0.02);
        }
        prop_assert!((lam.integral() - m0).abs() < 1e-10);
        prop_assert!(lam.values().iter().all(|&v| v >= -1e-10));
    }

    /// Implicit FPK conserves mass for ANY dt — including ones far past
    /// the explicit CFL bound.
    #[test]
    fn implicit_fpk_unconditionally_conservative(
        dt in 0.001_f64..50.0,
        drift0 in -3.0_f64..3.0,
    ) {
        let axis = Axis::new(0.0, 1.0, 41).unwrap();
        let mut lam = Field1d::from_fn(axis, |x| 1.0 + x);
        lam.normalize();
        let drift = vec![drift0; 41];
        let stepper = ImplicitFokkerPlanck1d::new(0.01).unwrap();
        let m0 = lam.integral();
        for _ in 0..5 {
            stepper.step(&mut lam, &drift, dt);
        }
        prop_assert!((lam.integral() - m0).abs() < 1e-9);
        prop_assert!(lam.values().iter().all(|&v| v >= -1e-10));
    }

    /// The backward stepper satisfies a discrete maximum principle with
    /// zero source: values stay within the terminal data's range.
    #[test]
    fn backward_step_maximum_principle(
        terminal_knots in proptest::collection::vec(-5.0_f64..5.0, 5),
        drift0 in -2.0_f64..2.0,
        diffusion in 0.0_f64..0.05,
    ) {
        let n = 51;
        let axis = Axis::new(0.0, 1.0, n).unwrap();
        let v0 = Field1d::from_fn(axis, |x| {
            let s = x * 4.0;
            let k = (s.floor() as usize).min(3);
            let w = s - k as f64;
            (1.0 - w) * terminal_knots[k] + w * terminal_knots[k + 1]
        });
        let (lo, hi) = v0.values().iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
            (l.min(x), h.max(x))
        });
        let mut v = v0;
        let drift = vec![drift0; n];
        let source = vec![0.0; n];
        let mut stepper = BackwardParabolic1d::new(diffusion).unwrap();
        for _ in 0..10 {
            stepper.step_back(&mut v, &drift, &source, 0.02);
        }
        for &x in v.values() {
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "{x} outside [{lo}, {hi}]");
        }
    }

    /// Bilinear interpolation of a 2-D field never exceeds the field's
    /// range (convex combination of 4 corners).
    #[test]
    fn field2d_interpolation_bounded(
        x in -0.5_f64..1.5,
        y in -0.5_f64..1.5,
        seedx in 0.1_f64..5.0,
        seedy in 0.1_f64..5.0,
    ) {
        let grid = Grid2d::new(Axis::new(0.0, 1.0, 9).unwrap(), Axis::new(0.0, 1.0, 7).unwrap());
        let f = Field2d::from_fn(grid, |a, b| (seedx * a).sin() * (seedy * b).cos());
        let v = f.interpolate(x, y);
        prop_assert!(v >= f.min() - 1e-12 && v <= f.max() + 1e-12);
    }

    /// The CFL substep machinery always covers the macro step exactly and
    /// respects the bound.
    #[test]
    fn substeps_partition_dt(dt in 1e-6_f64..100.0, max_dt in 1e-6_f64..100.0) {
        let limit = StabilityLimit::default();
        let (n, sub) = limit.substeps(dt, max_dt);
        prop_assert!(n >= 1);
        prop_assert!((sub * n as f64 - dt).abs() < 1e-9 * dt.max(1.0));
        prop_assert!(sub <= max_dt + 1e-12);
    }

    /// Field1d normalization produces unit mass whenever the input has
    /// positive mass.
    #[test]
    fn normalize_yields_unit_mass(values in proptest::collection::vec(0.0_f64..10.0, 2..100)) {
        let n = values.len();
        let axis = Axis::new(0.0, 1.0, n).unwrap();
        let mut f = Field1d::from_values(axis, values).unwrap();
        let before = f.integral();
        f.normalize();
        if before > 0.0 {
            prop_assert!((f.integral() - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(f.values().iter().all(|&v| v == 0.0));
        }
    }
}
