//! Differential-oracle property tests for the batched SoA kernels.
//!
//! The column-block sweeps behind [`ImplicitFokkerPlanck2d`] and
//! [`ImplicitBackward2d`] batch the Thomas solves across `BLOCK_WIDTH`
//! lanes but keep every per-lane arithmetic operation, and its order,
//! identical to the scalar one-column-at-a-time oracle. Parity is
//! therefore *bit-exact*, not within-epsilon — these tests assert
//! `assert_eq!` on the raw `f64` values over random drift/diffusion
//! fields, random grid shapes (including lane counts that do not divide
//! the block width, remainder blocks of width 1, and minimal 2-point
//! axes), and CFL-marginal macro steps.

use proptest::prelude::*;

use mfgcp_pde::{
    Axis, Field2d, Grid2d, ImplicitBackward2d, ImplicitFokkerPlanck2d, StabilityLimit,
    StepperScratch,
};

fn grid(nx: usize, ny: usize) -> Grid2d {
    Grid2d::new(
        Axis::new(0.0, 1.0, nx).unwrap(),
        Axis::new(0.0, 2.0, ny).unwrap(),
    )
}

/// Smooth but asymmetric fields driven by four random coefficients:
/// (density-like state, x-drift, y-drift, source).
fn fields(nx: usize, ny: usize, k: &[f64]) -> (Field2d, Field2d, Field2d, Field2d) {
    let g = grid(nx, ny);
    let lam = Field2d::from_fn(g.clone(), |x, y| {
        (-6.0 * ((x - 0.4).powi(2) + (y - 1.1).powi(2))).exp() + 0.05
    });
    let bx = Field2d::from_fn(g.clone(), |x, y| {
        k[0] * (3.0 * x + 1.7 * y).sin() + k[1] * (2.0 * y).cos()
    });
    let by = Field2d::from_fn(g.clone(), |x, y| {
        k[2] * (2.3 * x).cos() + k[3] * (1.3 * x + y).sin()
    });
    let src = Field2d::from_fn(g, |x, y| k[1] * (x * y).cos() - k[3] * (x - y).sin());
    (lam, bx, by, src)
}

/// Grid extents that exercise the blocking: lane counts below, at, just
/// above and well above `BLOCK_WIDTH` (32), plus the 2-point minimum.
fn extent() -> impl Strategy<Value = usize> {
    const EDGES: [usize; 12] = [2, 3, 5, 17, 24, 31, 32, 33, 34, 45, 48, 69];
    (0_usize..EDGES.len()).prop_map(|i| EDGES[i])
}

#[allow(clippy::too_many_arguments)]
fn run_fpk(
    batched: bool,
    steps: usize,
    dt: f64,
    dx_diff: f64,
    dy_diff: f64,
    lam: &Field2d,
    bx: &Field2d,
    by: &Field2d,
) -> Field2d {
    let mut stepper = ImplicitFokkerPlanck2d::new(dx_diff, dy_diff).unwrap();
    stepper.set_batched(batched);
    let mut state = lam.clone();
    let mut scratch = StepperScratch::new();
    for _ in 0..steps {
        stepper.step_scratch(&mut state, bx, by, dt, &mut scratch);
    }
    state
}

#[allow(clippy::too_many_arguments)]
fn run_hjb(
    batched: bool,
    steps: usize,
    dt: f64,
    dx_diff: f64,
    dy_diff: f64,
    val: &Field2d,
    bx: &Field2d,
    by: &Field2d,
    src: &Field2d,
) -> Field2d {
    let mut stepper = ImplicitBackward2d::new(dx_diff, dy_diff).unwrap();
    stepper.set_batched(batched);
    let mut state = val.clone();
    let mut scratch = StepperScratch::new();
    for _ in 0..steps {
        stepper.step_back_scratch(&mut state, bx, by, src, dt, &mut scratch);
    }
    state
}

proptest! {
    /// FPK: batched column-block sweeps are bit-identical to the scalar
    /// oracle on random drifts, diffusions and grid shapes.
    #[test]
    fn batched_fpk_is_bit_identical(
        nx in extent(),
        ny in extent(),
        k in proptest::collection::vec(-1.5_f64..1.5, 4),
        diffusion_x in 0.0_f64..0.1,
        diffusion_y in 0.0_f64..0.1,
        dt in 0.005_f64..0.2,
        steps in 1_usize..5,
    ) {
        let (lam, bx, by, _) = fields(nx, ny, &k);
        let scalar = run_fpk(false, steps, dt, diffusion_x, diffusion_y, &lam, &bx, &by);
        let batched = run_fpk(true, steps, dt, diffusion_x, diffusion_y, &lam, &bx, &by);
        prop_assert_eq!(scalar.values(), batched.values());
    }

    /// HJB: the backward sweep (boundary rows take different stencils, so
    /// the batched kernel has four distinct row cases) is bit-identical to
    /// the scalar oracle.
    #[test]
    fn batched_hjb_is_bit_identical(
        nx in extent(),
        ny in extent(),
        k in proptest::collection::vec(-1.5_f64..1.5, 4),
        diffusion_x in 0.0_f64..0.1,
        diffusion_y in 0.0_f64..0.1,
        dt in 0.005_f64..0.2,
        steps in 1_usize..5,
    ) {
        let (val, bx, by, src) = fields(nx, ny, &k);
        let scalar = run_hjb(false, steps, dt, diffusion_x, diffusion_y, &val, &bx, &by, &src);
        let batched = run_hjb(true, steps, dt, diffusion_x, diffusion_y, &val, &bx, &by, &src);
        prop_assert_eq!(scalar.values(), batched.values());
    }

    /// Parity at the CFL boundary: the implicit solves are unconditionally
    /// stable, but a macro step right at the explicit-scheme limit (via
    /// [`StabilityLimit::marginal_dt`]) maximizes the off-diagonal weight
    /// of the tridiagonal systems — the regime where an indexing slip in
    /// the batched assembly would be loudest.
    #[test]
    fn batched_kernels_match_at_cfl_marginal_dt(
        nx in extent(),
        ny in extent(),
        k in proptest::collection::vec(-1.5_f64..1.5, 4),
        diffusion in 0.001_f64..0.05,
    ) {
        let (lam, bx, by, src) = fields(nx, ny, &k);
        let b_max = bx
            .values()
            .iter()
            .chain(by.values())
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1e-6);
        let g = lam.grid();
        let dt = StabilityLimit::with_safety(0.9).marginal_dt(&[
            (b_max, diffusion, g.x().dx()),
            (b_max, diffusion, g.y().dx()),
        ]);
        let fpk_scalar = run_fpk(false, 2, dt, diffusion, diffusion, &lam, &bx, &by);
        let fpk_batched = run_fpk(true, 2, dt, diffusion, diffusion, &lam, &bx, &by);
        prop_assert_eq!(fpk_scalar.values(), fpk_batched.values());
        let hjb_scalar = run_hjb(false, 2, dt, diffusion, diffusion, &lam, &bx, &by, &src);
        let hjb_batched = run_hjb(true, 2, dt, diffusion, diffusion, &lam, &bx, &by, &src);
        prop_assert_eq!(hjb_scalar.values(), hjb_batched.values());
    }
}

/// Fixed shapes that pin the blocking edge cases regardless of what the
/// proptest shrinker happens to visit: remainder blocks of width 1
/// (33 lanes), exact block multiples (32, 64), single-lane-ish minima,
/// and the paper grid (24, 48).
#[test]
fn blocking_edge_shapes_are_bit_identical() {
    let k = [0.8, -0.6, 1.1, -0.9_f64];
    for &(nx, ny) in &[
        (2, 2),
        (2, 33),
        (33, 2),
        (32, 32),
        (32, 64),
        (33, 33),
        (24, 48),
    ] {
        let (lam, bx, by, src) = fields(nx, ny, &k);
        let fpk_scalar = run_fpk(false, 3, 0.05, 0.02, 0.03, &lam, &bx, &by);
        let fpk_batched = run_fpk(true, 3, 0.05, 0.02, 0.03, &lam, &bx, &by);
        assert_eq!(fpk_scalar.values(), fpk_batched.values(), "fpk {nx}x{ny}");
        let hjb_scalar = run_hjb(false, 3, 0.05, 0.02, 0.03, &lam, &bx, &by, &src);
        let hjb_batched = run_hjb(true, 3, 0.05, 0.02, 0.03, &lam, &bx, &by, &src);
        assert_eq!(hjb_scalar.values(), hjb_batched.values(), "hjb {nx}x{ny}");
    }
}
