//! Network parameters with the paper's §V-A defaults.

use mfgcp_sde::OrnsteinUhlenbeck;

/// Parameters of the network model (§II-A), defaulting to the simulation
/// settings of §V-A: `B = 10 MHz`, `τ = 3`, `G = 1 W`, channel fading
/// coefficient in `[1, 10]·10⁻⁵`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Transmission bandwidth `B` in Hz.
    pub bandwidth: f64,
    /// Path-loss exponent `τ`.
    pub path_loss_exp: f64,
    /// Transmission power `G_i` in W (identical for all EDPs per §V-A).
    pub tx_power: f64,
    /// Noise power `ϱ²` in W.
    pub noise_power: f64,
    /// Radius of the deployment disc in meters.
    pub area_radius: f64,
    /// Minimum link distance in meters (clamps the path-loss singularity).
    pub min_distance: f64,
    /// Channel-fading OU rate `ς_h` of Eq. (1).
    pub fading_rate: f64,
    /// Channel-fading long-term mean `υ_h` of Eq. (1).
    pub fading_mean: f64,
    /// Channel-fading noise amplitude `ϱ_h` of Eq. (1).
    pub fading_noise: f64,
    /// Lower clamp of the fading coefficient (paper: `1·10⁻⁵`).
    pub fading_min: f64,
    /// Upper clamp of the fading coefficient (paper: `10·10⁻⁵`).
    pub fading_max: f64,
    /// Transmission rate `H_c` between the cloud center and any EDP, bits/s.
    pub center_rate: f64,
    /// Use the exact dense `M × J` channel layout instead of the
    /// occupancy-local sharded one. The dense path is the differential
    /// oracle and stays practical only for small `M`.
    pub dense_channel: bool,
    /// Interferers tracked per requester in the sharded channel layout
    /// (the `k_int` nearest non-serving EDPs). Must be at least 1. The
    /// tracked links carry the dominant interferers with live fading;
    /// the untracked far field is covered by a frozen mean-field tail at
    /// the stationary-mean fading, so the full Eq. (2) interference
    /// power is represented in expectation and only far-field fading
    /// fluctuation remains (bounded by
    /// [`NetworkConfig::truncation_tol`]; the share carried by the tail
    /// is reported by the `net.shard.truncated_power` gauge).
    pub k_int: usize,
    /// Let the channel state resize `k_int` itself at every
    /// re-association, steering on the measured truncated-power share:
    /// doubled while the frozen tail carries more than
    /// `truncation_tol / 2` of the stationary-mean interference power,
    /// halved (with 4× hysteresis, floored at 4) when it carries less
    /// than `truncation_tol / 8`. [`NetworkConfig::k_int`] then only
    /// seeds the initial budget. The decision is a pure function of the
    /// tracked geometry, so adaptive runs stay bit-reproducible.
    pub adaptive_k_int: bool,
    /// Documented worst-case bound on the relative Eq. (2) interference
    /// error of the sharded layout at the default geometry. The tracked
    /// neighborhood plus the frozen mean-field tail cover the full
    /// interference power in expectation; what remains is the zero-mean
    /// fading fluctuation of the far field, which this bounds. The
    /// sharded-vs-dense differential suite asserts the measured error
    /// stays below it.
    pub truncation_tol: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            bandwidth: 10e6,
            path_loss_exp: 3.0,
            tx_power: 1.0,
            noise_power: 1e-13,
            area_radius: 500.0,
            min_distance: 1.0,
            // The paper plots fading paths reverting within ~1 time unit
            // (Fig. 3) over the band [1, 10]·10⁻⁵; ς_h = 4 and a mid-band
            // mean reproduce that behaviour.
            fading_rate: 4.0,
            fading_mean: 5.0e-5,
            fading_noise: 1.0e-5,
            fading_min: 1.0e-5,
            fading_max: 10.0e-5,
            // Backhaul to the cloud center is slower than a good edge link;
            // 20 Mbit/s keeps the staleness-cost trade-off of Eq. (9) alive.
            center_rate: 20e6,
            dense_channel: false,
            // 32 tracked interferers: with τ = 3 the interference tail past
            // the 32nd-nearest EDP is well under 0.1% of the total for
            // uniform placements at any density (measured by the
            // `net.shard.truncated_power` gauge; see DESIGN.md §2f).
            k_int: 32,
            adaptive_k_int: false,
            truncation_tol: 2e-2,
        }
    }
}

impl NetworkConfig {
    /// The OU process for one fading link under this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fading parameters are invalid (they are validated by
    /// construction for the default config).
    pub fn fading_process(&self) -> OrnsteinUhlenbeck {
        OrnsteinUhlenbeck::new(self.fading_rate, self.fading_mean, self.fading_noise)
            .expect("fading parameters must be valid")
    }

    /// Clamp a fading coefficient into the configured band.
    pub fn clamp_fading(&self, h: f64) -> f64 {
        h.clamp(self.fading_min, self.fading_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = NetworkConfig::default();
        assert_eq!(c.bandwidth, 10e6);
        assert_eq!(c.path_loss_exp, 3.0);
        assert_eq!(c.tx_power, 1.0);
        assert_eq!(c.fading_min, 1.0e-5);
        assert_eq!(c.fading_max, 10.0e-5);
    }

    #[test]
    fn fading_process_uses_config_values() {
        let c = NetworkConfig::default();
        let ou = c.fading_process();
        assert_eq!(ou.varsigma(), c.fading_rate);
        assert_eq!(ou.upsilon(), c.fading_mean);
        assert_eq!(ou.varrho(), c.fading_noise);
    }

    #[test]
    fn clamp_keeps_band() {
        let c = NetworkConfig::default();
        assert_eq!(c.clamp_fading(0.0), c.fading_min);
        assert_eq!(c.clamp_fading(1.0), c.fading_max);
        let mid = 5.0e-5;
        assert_eq!(c.clamp_fading(mid), mid);
    }
}
