//! Per-link channel fading state and interference-limited rates.
//!
//! Maintains one OU fading coefficient `h_{i,j}(t)` per (EDP, requester)
//! pair, advanced with the *exact* OU transition (no discretization error),
//! and computes the Eq. (2) rate including the interference sum
//! `Σ_{i'≠i} |g_{i',j}|² G_{i'}`.

use rand::Rng;

use mfgcp_sde::OrnsteinUhlenbeck;

use crate::config::NetworkConfig;
use crate::topology::Topology;
use crate::{channel_gain, shannon_rate};

/// Dynamic channel state for every (EDP, requester) link.
#[derive(Debug, Clone)]
pub struct ChannelState {
    /// Row-major `[m × j]` fading coefficients.
    fading: Vec<f64>,
    num_edps: usize,
    num_requesters: usize,
    process: OrnsteinUhlenbeck,
    cfg: NetworkConfig,
    /// Cached distances, row-major `[m × j]`.
    distances: Vec<f64>,
}

impl ChannelState {
    /// Initialize all links from the OU stationary distribution, clamped to
    /// the configured fading band.
    pub fn init<R: Rng + ?Sized>(topo: &Topology, cfg: &NetworkConfig, rng: &mut R) -> Self {
        let process = cfg.fading_process();
        let m = topo.num_edps();
        let j = topo.num_requesters();
        let sd = process.stationary_variance().sqrt();
        let stationary = mfgcp_sde::Normal::new(process.stationary_mean(), sd)
            .expect("valid stationary parameters");
        let mut fading = Vec::with_capacity(m * j);
        let mut distances = Vec::with_capacity(m * j);
        for i in 0..m {
            for jj in 0..j {
                fading.push(cfg.clamp_fading(stationary.sample(rng)));
                distances.push(topo.distance(i, jj));
            }
        }
        Self {
            fading,
            num_edps: m,
            num_requesters: j,
            process,
            cfg: cfg.clone(),
            distances,
        }
    }

    /// Number of EDPs.
    pub fn num_edps(&self) -> usize {
        self.num_edps
    }

    /// Number of requesters.
    pub fn num_requesters(&self) -> usize {
        self.num_requesters
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.num_edps && j < self.num_requesters);
        i * self.num_requesters + j
    }

    /// Current fading coefficient `h_{i,j}`.
    pub fn fading(&self, i: usize, j: usize) -> f64 {
        self.fading[self.idx(i, j)]
    }

    /// Recompute the cached link distances after requester mobility
    /// changed the topology (fading states are per-link and persist).
    ///
    /// # Panics
    ///
    /// Panics if the topology's dimensions changed.
    pub fn refresh_distances(&mut self, topo: &Topology) {
        assert_eq!(topo.num_edps(), self.num_edps, "EDP count changed");
        assert_eq!(
            topo.num_requesters(),
            self.num_requesters,
            "requester count changed"
        );
        for i in 0..self.num_edps {
            for j in 0..self.num_requesters {
                let k = self.idx(i, j);
                self.distances[k] = topo.distance(i, j);
            }
        }
    }

    /// Recompute the cached link distances from explicit requester
    /// positions, without touching the topology's nearest-EDP association.
    ///
    /// Equivalent to cloning the topology, calling `update_requesters`,
    /// and then [`ChannelState::refresh_distances`] — but O(M·J) with no
    /// allocation and no wasted re-association, for the per-slot case
    /// where walkers move continuously but association only changes at
    /// epoch boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the topology's EDP count or the position count changed.
    pub fn refresh_distances_from_positions(
        &mut self,
        topo: &Topology,
        positions: &[crate::Point],
    ) {
        assert_eq!(topo.num_edps(), self.num_edps, "EDP count changed");
        assert_eq!(
            positions.len(),
            self.num_requesters,
            "requester count changed"
        );
        for i in 0..self.num_edps {
            let e = topo.edp(i);
            let row = i * self.num_requesters;
            for (j, p) in positions.iter().enumerate() {
                self.distances[row + j] = e.distance(p);
            }
        }
    }

    /// Advance every link by `dt` using the exact OU transition, clamping
    /// into the configured fading band.
    pub fn advance<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) {
        for h in &mut self.fading {
            *h = self
                .cfg
                .clamp_fading(self.process.sample_transition(*h, dt, rng));
        }
    }

    /// Channel gain `|g_{i,j}|²`.
    pub fn gain(&self, i: usize, j: usize) -> f64 {
        let k = self.idx(i, j);
        channel_gain(
            self.fading[k],
            self.distances[k],
            self.cfg.path_loss_exp,
            self.cfg.min_distance,
        )
    }

    /// Interference power at requester `j` from all EDPs except `i`
    /// (`Σ_{i'≠i} |g_{i',j}|² G`, Eq. (2) denominator).
    pub fn interference(&self, i: usize, j: usize) -> f64 {
        let mut acc = 0.0;
        for other in 0..self.num_edps {
            if other != i {
                acc += self.gain(other, j) * self.cfg.tx_power;
            }
        }
        acc
    }

    /// Achievable rate `H_{i,j}` of Eq. (2), bits/s.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        shannon_rate(
            self.cfg.bandwidth,
            self.gain(i, j),
            self.cfg.tx_power,
            self.cfg.noise_power,
            self.interference(i, j),
        )
    }

    /// Mean rate from EDP `i` to its served requesters; `None` if it serves
    /// nobody. Used when a scalar per-EDP rate is needed (reduced solver).
    pub fn mean_rate_to_served(&self, topo: &Topology, i: usize) -> Option<f64> {
        let served = topo.served_by(i);
        if served.is_empty() {
            return None;
        }
        let total: f64 = served.iter().map(|&j| self.rate(i, j)).sum();
        Some(total / served.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use mfgcp_sde::seeded_rng;

    fn small() -> (Topology, NetworkConfig) {
        let edps = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        let requesters = vec![Point::new(10.0, 0.0), Point::new(190.0, 0.0)];
        (
            Topology::with_positions(edps, requesters),
            NetworkConfig::default(),
        )
    }

    #[test]
    fn fading_stays_in_band_forever() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(8);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        for _ in 0..200 {
            ch.advance(0.05, &mut rng);
            for i in 0..2 {
                for j in 0..2 {
                    let h = ch.fading(i, j);
                    assert!(h >= cfg.fading_min && h <= cfg.fading_max);
                }
            }
        }
    }

    #[test]
    fn nearer_link_has_better_rate_on_average() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(9);
        let mut near = 0.0;
        let mut far = 0.0;
        for _ in 0..100 {
            let ch = ChannelState::init(&topo, &cfg, &mut rng);
            near += ch.rate(0, 0); // 10 m away
            far += ch.rate(1, 0); // 190 m away
        }
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn interference_excludes_the_serving_edp() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(10);
        let ch = ChannelState::init(&topo, &cfg, &mut rng);
        let i0 = ch.interference(0, 0);
        // Only EDP 1 interferes with link (0, 0).
        assert!((i0 - ch.gain(1, 0) * cfg.tx_power).abs() < 1e-25);
    }

    #[test]
    fn mean_rate_handles_unserved_edps() {
        let edps = vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)];
        let requesters = vec![Point::new(1.0, 0.0)];
        let topo = Topology::with_positions(edps, requesters);
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(11);
        let ch = ChannelState::init(&topo, &cfg, &mut rng);
        assert!(ch.mean_rate_to_served(&topo, 0).is_some());
        assert!(ch.mean_rate_to_served(&topo, 1).is_none());
    }

    #[test]
    fn refresh_distances_tracks_topology() {
        let (mut topo, cfg) = small();
        let mut rng = seeded_rng(13);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        let before = ch.gain(0, 0);
        // Move requester 0 far away from EDP 0.
        topo.update_requesters(vec![Point::new(400.0, 0.0), Point::new(190.0, 0.0)]);
        ch.refresh_distances(&topo);
        assert!(ch.gain(0, 0) < before, "gain should drop with distance");
    }

    #[test]
    fn refresh_from_positions_matches_topology_rebuild() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(14);
        let mut via_positions = ChannelState::init(&topo, &cfg, &mut rng);
        let mut via_rebuild = via_positions.clone();
        let moved = vec![Point::new(321.0, -45.0), Point::new(-17.0, 60.0)];
        via_positions.refresh_distances_from_positions(&topo, &moved);
        let mut probe = topo.clone();
        probe.update_requesters(moved);
        via_rebuild.refresh_distances(&probe);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(via_positions.gain(i, j), via_rebuild.gain(i, j));
            }
        }
    }

    #[test]
    fn advance_changes_the_state_deterministically_per_seed() {
        let (topo, cfg) = small();
        let mut rng1 = seeded_rng(12);
        let mut rng2 = seeded_rng(12);
        let mut a = ChannelState::init(&topo, &cfg, &mut rng1);
        let mut b = ChannelState::init(&topo, &cfg, &mut rng2);
        a.advance(0.1, &mut rng1);
        b.advance(0.1, &mut rng2);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(a.fading(i, j), b.fading(i, j));
            }
        }
    }
}
