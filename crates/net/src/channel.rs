//! Per-link channel fading state and interference-limited rates.
//!
//! Maintains OU fading coefficients `h_{i,j}(t)` (Eq. (1)), advanced with
//! the *exact* OU transition (no discretization error), and computes the
//! Eq. (2) rate including the interference sum `Σ_{i'≠i} |g_{i',j}|² G_{i'}`.
//!
//! Two representations share one API:
//!
//! - **Sharded** (default): occupancy-local storage tracking, per
//!   requester, only the serving-EDP link plus the `k_int` nearest
//!   interferers ([`NetworkConfig::k_int`]). Memory and per-slot fading
//!   work are O(J·k_int) — flat in `M` at fixed occupancy. The Eq. (2)
//!   interference sum is the live tracked neighborhood plus a **frozen
//!   mean-field tail**: the untracked far field evaluated at the OU
//!   stationary-mean fading, recomputed only at (re)association. The
//!   tail aggregates many weak links whose fading fluctuations average
//!   out, so the relative interference error stays within
//!   [`NetworkConfig::truncation_tol`] (measured by the
//!   `net.shard.truncated_power` gauge, bounded by the differential
//!   tests).
//! - **Dense** ([`NetworkConfig::dense_channel`]): every (EDP, requester)
//!   link, the exact Eq. (2) sum — O(M·J) memory, the historical layout,
//!   kept for small instances and as the differential-test oracle.
//!
//! Every fading draw comes from a per-link counter-based stream keyed on
//! `(channel seed, EDP, requester, draw id)` (see [`crate::shard`]), so
//! the two representations are **bit-identical on every link they both
//! track** — in particular on all serving links — and results do not
//! depend on iteration order or thread count.

use mfgcp_obs::RecorderHandle;
use mfgcp_sde::OrnsteinUhlenbeck;
use rand::Rng;

use crate::config::NetworkConfig;
use crate::shard::{advance_fading, init_fading, ShardedLinks};
use crate::topology::Topology;
use crate::{channel_gain, shannon_rate};

/// The storage layout behind [`ChannelState`].
#[derive(Debug, Clone)]
enum Repr {
    /// Exact dense fallback: row-major `[m × j]` fading and distances.
    Dense {
        fading: Vec<f64>,
        distances: Vec<f64>,
    },
    /// Occupancy-local shards (serving link + `k_int` interferers).
    Sharded(ShardedLinks),
}

/// Floor of the adaptive tracked-interferer budget: below this the
/// per-record bookkeeping is noise and further shrinking saves nothing.
const MIN_ADAPTIVE_K_INT: usize = 4;

/// Dynamic channel state for the tracked (EDP, requester) links.
#[derive(Debug, Clone)]
pub struct ChannelState {
    repr: Repr,
    num_edps: usize,
    num_requesters: usize,
    process: OrnsteinUhlenbeck,
    cfg: NetworkConfig,
    /// Channel substream seed; every fading draw is keyed off it.
    seed: u64,
    /// Slot counter: [`ChannelState::advance`] increments it and draws
    /// transition noise with draw id `2·step`; links freshly tracked at
    /// a handover initialize with draw id `2·step + 1`.
    step: u64,
    recorder: RecorderHandle,
}

impl ChannelState {
    /// Initialize all tracked links from the OU stationary distribution,
    /// clamped to the configured fading band. Consumes exactly one `u64`
    /// from `rng` as the channel substream seed; all per-link draws are
    /// derived from it, never from `rng` again.
    pub fn init<R: Rng + ?Sized>(topo: &Topology, cfg: &NetworkConfig, rng: &mut R) -> Self {
        Self::init_with_seed(topo, cfg, rng.next_u64())
    }

    /// [`ChannelState::init`] with an explicit channel seed — the entry
    /// point for differential tests that must build a dense and a sharded
    /// state over identical per-link streams.
    pub fn init_with_seed(topo: &Topology, cfg: &NetworkConfig, seed: u64) -> Self {
        assert!(cfg.k_int > 0, "k_int must be at least 1");
        let process = cfg.fading_process();
        let m = topo.num_edps();
        let j = topo.num_requesters();
        let repr = if cfg.dense_channel {
            let mut fading = Vec::with_capacity(m * j);
            let mut distances = Vec::with_capacity(m * j);
            for i in 0..m {
                for jj in 0..j {
                    fading.push(init_fading(seed, i, jj, 0, &process, cfg));
                    distances.push(topo.distance(i, jj));
                }
            }
            Repr::Dense { fading, distances }
        } else {
            Repr::Sharded(ShardedLinks::build(topo, cfg, &process, seed, 0, cfg.k_int))
        };
        Self {
            repr,
            num_edps: m,
            num_requesters: j,
            process,
            cfg: cfg.clone(),
            seed,
            step: 0,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attach a telemetry recorder: each re-association then emits
    /// `net.shard.*` gauges (occupancy, tracked interferers, truncated
    /// interference power). Telemetry reads state only — it never
    /// perturbs the channel dynamics.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Number of EDPs.
    pub fn num_edps(&self) -> usize {
        self.num_edps
    }

    /// Number of requesters.
    pub fn num_requesters(&self) -> usize {
        self.num_requesters
    }

    /// Whether this state uses the exact dense fallback layout.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Number of links currently holding fading state.
    pub fn tracked_links(&self) -> usize {
        match &self.repr {
            Repr::Dense { .. } => self.num_edps * self.num_requesters,
            Repr::Sharded(links) => links.records.iter().map(|r| 1 + r.interferers.len()).sum(),
        }
    }

    /// Resident bytes of the channel storage (fading + distances or the
    /// sharded link records).
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Dense { fading, distances } => {
                (fading.capacity() + distances.capacity()) * std::mem::size_of::<f64>()
            }
            Repr::Sharded(links) => links.memory_bytes(),
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.num_edps && j < self.num_requesters);
        i * self.num_requesters + j
    }

    /// Current fading coefficient `h_{i,j}`; `0` for a link the sharded
    /// layout does not track (use [`ChannelState::link_fading`] to
    /// distinguish untracked from faded-to-zero — the clamp band keeps
    /// tracked fading strictly positive).
    pub fn fading(&self, i: usize, j: usize) -> f64 {
        self.link_fading(i, j).unwrap_or(0.0)
    }

    /// Fading of link `(i, j)` if it is tracked, `None` otherwise. Dense
    /// states track every link.
    pub fn link_fading(&self, i: usize, j: usize) -> Option<f64> {
        match &self.repr {
            Repr::Dense { fading, .. } => Some(fading[self.idx(i, j)]),
            Repr::Sharded(links) => links.records[j].link_to(i as u32).map(|l| l.fading),
        }
    }

    /// Tracked interferer links of requester `j` (`num_edps − 1` for the
    /// dense layout, which tracks everything).
    pub fn interferer_count(&self, j: usize) -> usize {
        match &self.repr {
            Repr::Dense { .. } => self.num_edps.saturating_sub(1),
            Repr::Sharded(links) => links.records[j].interferers.len(),
        }
    }

    /// EDP indices of the tracked interferers of requester `j`, in the
    /// order they are summed by [`ChannelState::interference`]. Empty for
    /// the dense layout, where the tracked-subset notion does not apply
    /// (every link is stored).
    pub fn tracked_interferers(&self, j: usize) -> Vec<usize> {
        match &self.repr {
            Repr::Dense { .. } => Vec::new(),
            Repr::Sharded(links) => links.records[j]
                .interferers
                .iter()
                .map(|l| l.edp as usize)
                .collect(),
        }
    }

    /// Re-sync with a topology whose association changed (epoch-boundary
    /// mobility): refresh link distances and, for the sharded layout,
    /// migrate link state between shards — links tracked on both sides of
    /// a handover keep their fading, newly tracked links draw from their
    /// per-link stationary stream at the current step, dropped links are
    /// forgotten. Deterministic for any thread count by construction.
    ///
    /// # Panics
    ///
    /// Panics if the topology's dimensions changed.
    pub fn refresh_distances(&mut self, topo: &Topology) {
        assert_eq!(topo.num_edps(), self.num_edps, "EDP count changed");
        assert_eq!(
            topo.num_requesters(),
            self.num_requesters,
            "requester count changed"
        );
        match &mut self.repr {
            Repr::Dense { distances, .. } => {
                for i in 0..self.num_edps {
                    for j in 0..self.num_requesters {
                        distances[i * self.num_requesters + j] = topo.distance(i, j);
                    }
                }
            }
            Repr::Sharded(links) => {
                links.reassociate(topo, &self.cfg, &self.process, self.seed, self.step);
            }
        }
        if self.cfg.adaptive_k_int {
            self.adapt_k_int(topo);
        }
        self.emit_shard_gauges();
    }

    /// The adaptive-k controller: after a re-association, resize the
    /// tracked-interferer budget from the measured truncated-power share
    /// (the same quantity the `net.shard.truncated_power` gauge reports).
    /// Doubles `k_int` while the tail carries more than
    /// `truncation_tol / 2` of the stationary-mean interference power
    /// (capped at `M − 1`, where the tail is empty); halves it once per
    /// boundary when the tail share drops below `truncation_tol / 8`
    /// (floored at [`MIN_ADAPTIVE_K_INT`]). The 4× gap between the two
    /// thresholds is the hysteresis that keeps the controller from
    /// oscillating between boundaries. Deterministic: the decision is a
    /// pure function of tracked distances, so runs stay bit-reproducible
    /// for any thread count.
    fn adapt_k_int(&mut self, topo: &Topology) {
        let max_k = self.num_edps.saturating_sub(1).max(1);
        let mut grown = false;
        loop {
            let Repr::Sharded(links) = &self.repr else {
                return;
            };
            let Some((fraction, _)) = links.tail_fraction(&self.process, &self.cfg) else {
                return;
            };
            let k = links.k_int;
            if fraction > 0.5 * self.cfg.truncation_tol && k < max_k {
                let target = (k * 2).min(max_k);
                let Repr::Sharded(links) = &mut self.repr else {
                    return;
                };
                links.retrack(topo, &self.cfg, &self.process, self.seed, self.step, target);
                grown = true;
                continue;
            }
            // Never shrink in a pass that grew: a budget at the cap has a
            // tail share of exactly 0 (everything is tracked), which says
            // the tolerance *demanded* the cap, not that the budget is
            // slack — backing off would re-violate it next boundary.
            if grown {
                return;
            }
            if fraction < 0.125 * self.cfg.truncation_tol && k > MIN_ADAPTIVE_K_INT {
                // Shrink as a measured probe, at most one halving per
                // boundary: keep it only if the halved budget still meets
                // the grow threshold, otherwise revert. (A zero tail
                // carries no information about what halving would leave,
                // so the probe must re-measure rather than assume.)
                let target = (k / 2).max(MIN_ADAPTIVE_K_INT);
                let Repr::Sharded(links) = &mut self.repr else {
                    return;
                };
                links.retrack(topo, &self.cfg, &self.process, self.seed, self.step, target);
                let Repr::Sharded(links) = &self.repr else {
                    return;
                };
                if let Some((shrunk, _)) = links.tail_fraction(&self.process, &self.cfg) {
                    if shrunk > 0.5 * self.cfg.truncation_tol {
                        let Repr::Sharded(links) = &mut self.repr else {
                            return;
                        };
                        links.retrack(topo, &self.cfg, &self.process, self.seed, self.step, k);
                    }
                }
            }
            return;
        }
    }

    /// Recompute the tracked link distances from explicit requester
    /// positions, without touching the nearest-EDP association — the
    /// per-slot case where walkers move continuously but association
    /// only changes at epoch boundaries. O(tracked links), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the topology's EDP count or the position count changed.
    pub fn refresh_distances_from_positions(
        &mut self,
        topo: &Topology,
        positions: &[crate::Point],
    ) {
        assert_eq!(topo.num_edps(), self.num_edps, "EDP count changed");
        assert_eq!(
            positions.len(),
            self.num_requesters,
            "requester count changed"
        );
        match &mut self.repr {
            Repr::Dense { distances, .. } => {
                for i in 0..self.num_edps {
                    let e = topo.edp(i);
                    let row = i * self.num_requesters;
                    for (j, p) in positions.iter().enumerate() {
                        distances[row + j] = e.distance(p);
                    }
                }
            }
            Repr::Sharded(links) => links.refresh_distances(topo, positions),
        }
    }

    /// Advance every tracked link by `dt` using the exact OU transition,
    /// clamping into the configured fading band. Each link draws from its
    /// own counter-based stream, so the result is independent of storage
    /// layout, iteration order, and thread count.
    pub fn advance(&mut self, dt: f64) {
        self.step += 1;
        match &mut self.repr {
            Repr::Dense { fading, .. } => {
                let sd = self.process.transition_variance(dt).sqrt();
                for i in 0..self.num_edps {
                    let row = i * self.num_requesters;
                    for j in 0..self.num_requesters {
                        let h = &mut fading[row + j];
                        *h = advance_fading(
                            self.seed,
                            i,
                            j,
                            self.step,
                            *h,
                            dt,
                            sd,
                            &self.process,
                            &self.cfg,
                        );
                    }
                }
            }
            Repr::Sharded(links) => {
                links.advance(&self.cfg, &self.process, self.seed, self.step, dt);
            }
        }
    }

    /// Channel gain `|g_{i,j}|²`; `0` for an untracked link.
    pub fn gain(&self, i: usize, j: usize) -> f64 {
        match &self.repr {
            Repr::Dense { fading, distances } => {
                let k = self.idx(i, j);
                channel_gain(
                    fading[k],
                    distances[k],
                    self.cfg.path_loss_exp,
                    self.cfg.min_distance,
                )
            }
            Repr::Sharded(links) => match links.records[j].link_to(i as u32) {
                Some(l) => channel_gain(
                    l.fading,
                    l.distance,
                    self.cfg.path_loss_exp,
                    self.cfg.min_distance,
                ),
                None => 0.0,
            },
        }
    }

    /// Interference power at requester `j` from all EDPs except `i`
    /// (`Σ_{i'≠i} |g_{i',j}|² G`, Eq. (2) denominator). The sharded
    /// layout sums over the tracked neighborhood only — a truncation of
    /// the exact sum whose omitted tail is controlled by `k_int` and the
    /// path-loss exponent (see [`NetworkConfig::truncation_tol`]).
    pub fn interference(&self, i: usize, j: usize) -> f64 {
        match &self.repr {
            Repr::Dense { fading, distances } => {
                let mut acc = 0.0;
                for other in 0..self.num_edps {
                    if other != i {
                        let k = other * self.num_requesters + j;
                        acc += channel_gain(
                            fading[k],
                            distances[k],
                            self.cfg.path_loss_exp,
                            self.cfg.min_distance,
                        ) * self.cfg.tx_power;
                    }
                }
                acc
            }
            Repr::Sharded(links) => {
                let record = &links.records[j];
                let mut acc = 0.0;
                if record.serving.edp as usize != i {
                    acc += channel_gain(
                        record.serving.fading,
                        record.serving.distance,
                        self.cfg.path_loss_exp,
                        self.cfg.min_distance,
                    ) * self.cfg.tx_power;
                }
                for l in &record.interferers {
                    if l.edp as usize != i {
                        acc += channel_gain(
                            l.fading,
                            l.distance,
                            self.cfg.path_loss_exp,
                            self.cfg.min_distance,
                        ) * self.cfg.tx_power;
                    }
                }
                // The frozen mean-field tail of the untracked far field
                // (see `RequesterLinks::tail_gain`).
                acc + record.tail_gain * self.cfg.tx_power
            }
        }
    }

    /// Achievable rate `H_{i,j}` of Eq. (2), bits/s. `0` for an untracked
    /// link (its gain is `0`).
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        shannon_rate(
            self.cfg.bandwidth,
            self.gain(i, j),
            self.cfg.tx_power,
            self.cfg.noise_power,
            self.interference(i, j),
        )
    }

    /// Mean rate from EDP `i` to its served requesters; `None` if it serves
    /// nobody. Used when a scalar per-EDP rate is needed (reduced solver).
    pub fn mean_rate_to_served(&self, topo: &Topology, i: usize) -> Option<f64> {
        let served = topo.served_by(i);
        if served.is_empty() {
            return None;
        }
        let total: f64 = served.iter().map(|&j| self.rate(i, j)).sum();
        Some(total / served.len() as f64)
    }

    /// The statistics behind the `net.shard.*` gauges as plain data, for
    /// the live snapshot/query path. `None` for the dense layout (there
    /// are no shards to report on). Pure reads — no RNG, no mutation —
    /// but the truncated-power estimate costs O(J·k_int), so callers
    /// should sample it at re-association cadence, not per slot.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        let Repr::Sharded(links) = &self.repr else {
            return None;
        };
        let occupied = links.shards.iter().filter(|s| !s.is_empty()).count();
        let max_occ = links.shards.iter().map(Vec::len).max().unwrap_or(0);
        let mean_occ = if occupied > 0 {
            self.num_requesters as f64 / occupied as f64
        } else {
            0.0
        };
        let tracked: usize = links.records.iter().map(|r| r.interferers.len()).sum();
        let mean_int = if self.num_requesters > 0 {
            tracked as f64 / self.num_requesters as f64
        } else {
            0.0
        };
        Some(ShardStats {
            mean_occupancy: mean_occ,
            max_occupancy: max_occ as u64,
            occupied_shards: occupied as u64,
            edps: self.num_edps as u64,
            requesters: self.num_requesters as u64,
            mean_interferers: mean_int,
            k_int: links.k_int as u64,
            truncated_power: links.tail_fraction(&self.process, &self.cfg),
        })
    }

    /// Emit the `net.shard.*` gauges after a re-association. Pure reads —
    /// no RNG, no mutation — so telemetry cannot perturb the run. The
    /// truncated-power estimate evaluates every fading coefficient at
    /// the stationary mean (the split is geometric, so fading cancels in
    /// expectation); cost is O(J·k_int), never O(M·J).
    fn emit_shard_gauges(&self) {
        if !self.recorder.enabled() {
            return;
        }
        let Some(stats) = self.shard_stats() else {
            return;
        };
        self.recorder.gauge(
            "net.shard.occupancy",
            stats.mean_occupancy,
            &[
                ("max", stats.max_occupancy.into()),
                ("occupied", stats.occupied_shards.into()),
                ("edps", stats.edps.into()),
                ("requesters", stats.requesters.into()),
            ],
        );
        self.recorder.gauge(
            "net.shard.interferers",
            stats.mean_interferers,
            &[("k_int", stats.k_int.into())],
        );
        // Share of the interference power (at the stationary-mean fading)
        // carried by the frozen mean-field tail rather than by live
        // tracked links — the part of Eq. (2) the sharding approximates,
        // and the signal the adaptive-k controller steers on.
        if let Some((fraction, sampled)) = stats.truncated_power {
            self.recorder.gauge(
                "net.shard.truncated_power",
                fraction,
                &[("sampled", sampled.into())],
            );
        }
    }
}

/// Sharded-layout channel statistics — the exact numbers behind the
/// `net.shard.{occupancy,interferers,truncated_power}` gauges, exposed
/// as plain data so the live control plane can serve them from snapshot
/// queries as well as from the telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Mean requesters per occupied shard.
    pub mean_occupancy: f64,
    /// Largest shard population.
    pub max_occupancy: u64,
    /// Number of non-empty shards.
    pub occupied_shards: u64,
    /// EDP count (M).
    pub edps: u64,
    /// Requester count (J).
    pub requesters: u64,
    /// Mean tracked interferers per requester.
    pub mean_interferers: f64,
    /// Configured interferer budget.
    pub k_int: u64,
    /// Frozen-tail share of interference power at the stationary-mean
    /// fading, with the number of requesters sampled for the estimate;
    /// `None` when the estimate is unavailable.
    pub truncated_power: Option<(f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use mfgcp_sde::seeded_rng;

    fn small() -> (Topology, NetworkConfig) {
        let edps = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        let requesters = vec![Point::new(10.0, 0.0), Point::new(190.0, 0.0)];
        (
            Topology::with_positions(edps, requesters),
            NetworkConfig::default(),
        )
    }

    #[test]
    fn fading_stays_in_band_forever() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(8);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        for _ in 0..200 {
            ch.advance(0.05);
            for i in 0..2 {
                for j in 0..2 {
                    let h = ch.fading(i, j);
                    assert!(h >= cfg.fading_min && h <= cfg.fading_max);
                }
            }
        }
    }

    #[test]
    fn nearer_link_has_better_rate_on_average() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(9);
        let mut near = 0.0;
        let mut far = 0.0;
        for _ in 0..100 {
            let ch = ChannelState::init(&topo, &cfg, &mut rng);
            near += ch.rate(0, 0); // 10 m away
            far += ch.rate(1, 0); // 190 m away
        }
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn interference_excludes_the_serving_edp() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(10);
        let ch = ChannelState::init(&topo, &cfg, &mut rng);
        let i0 = ch.interference(0, 0);
        // Only EDP 1 interferes with link (0, 0).
        assert!((i0 - ch.gain(1, 0) * cfg.tx_power).abs() < 1e-25);
    }

    #[test]
    fn mean_rate_handles_unserved_edps() {
        let edps = vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)];
        let requesters = vec![Point::new(1.0, 0.0)];
        let topo = Topology::with_positions(edps, requesters);
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(11);
        let ch = ChannelState::init(&topo, &cfg, &mut rng);
        assert!(ch.mean_rate_to_served(&topo, 0).is_some());
        assert!(ch.mean_rate_to_served(&topo, 1).is_none());
    }

    #[test]
    fn refresh_distances_tracks_topology() {
        let (mut topo, cfg) = small();
        let mut rng = seeded_rng(13);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        let before = ch.gain(0, 0);
        // Move requester 0 far away from EDP 0.
        topo.update_requesters(&[Point::new(400.0, 0.0), Point::new(190.0, 0.0)]);
        ch.refresh_distances(&topo);
        assert!(ch.gain(0, 0) < before, "gain should drop with distance");
    }

    #[test]
    fn refresh_from_positions_matches_topology_rebuild() {
        let (topo, cfg) = small();
        let mut rng = seeded_rng(14);
        let mut via_positions = ChannelState::init(&topo, &cfg, &mut rng);
        let mut via_rebuild = via_positions.clone();
        let moved = vec![Point::new(321.0, -45.0), Point::new(-17.0, 60.0)];
        via_positions.refresh_distances_from_positions(&topo, &moved);
        let mut probe = topo.clone();
        probe.update_requesters(&moved);
        via_rebuild.refresh_distances(&probe);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(via_positions.gain(i, j), via_rebuild.gain(i, j));
            }
        }
    }

    #[test]
    fn advance_changes_the_state_deterministically_per_seed() {
        let (topo, cfg) = small();
        let mut rng1 = seeded_rng(12);
        let mut rng2 = seeded_rng(12);
        let mut a = ChannelState::init(&topo, &cfg, &mut rng1);
        let mut b = ChannelState::init(&topo, &cfg, &mut rng2);
        a.advance(0.1);
        b.advance(0.1);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(a.fading(i, j), b.fading(i, j));
                assert_ne!(a.fading(i, j), 0.0);
            }
        }
    }

    #[test]
    fn sharded_layout_truncates_to_k_int() {
        // A line of EDPs; with k_int = 1 each requester tracks its serving
        // EDP and exactly one interferer, and distant links report zero.
        let edps: Vec<Point> = (0..6).map(|i| Point::new(100.0 * i as f64, 0.0)).collect();
        let requesters = vec![Point::new(5.0, 0.0)];
        let topo = Topology::with_positions(edps, requesters);
        let cfg = NetworkConfig {
            k_int: 1,
            ..NetworkConfig::default()
        };
        let ch = ChannelState::init_with_seed(&topo, &cfg, 77);
        assert!(!ch.is_dense());
        assert_eq!(ch.tracked_links(), 2);
        assert_eq!(ch.interferer_count(0), 1);
        assert!(ch.link_fading(0, 0).is_some(), "serving link tracked");
        assert!(ch.link_fading(1, 0).is_some(), "nearest interferer tracked");
        assert_eq!(ch.link_fading(5, 0), None, "distant link untracked");
        assert_eq!(ch.gain(5, 0), 0.0);
        assert_eq!(ch.rate(5, 0), 0.0);
    }

    #[test]
    fn dense_fallback_tracks_every_link() {
        let (topo, cfg) = small();
        let cfg = NetworkConfig {
            dense_channel: true,
            ..cfg
        };
        let ch = ChannelState::init_with_seed(&topo, &cfg, 5);
        assert!(ch.is_dense());
        assert_eq!(ch.tracked_links(), 4);
        assert_eq!(ch.interferer_count(0), 1);
    }

    #[test]
    fn sharded_memory_is_flat_in_edp_count() {
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(15);
        let small = Topology::random(50, 40, &cfg, &mut rng);
        let big = Topology::random(5_000, 40, &cfg, &mut rng);
        let ch_small = ChannelState::init_with_seed(&small, &cfg, 1);
        let ch_big = ChannelState::init_with_seed(&big, &cfg, 1);
        // Tracked links are J·(1 + k_int) in both; only the shard index
        // (one Vec header per EDP) grows with M.
        assert_eq!(ch_small.tracked_links(), ch_big.tracked_links());
        // One Vec header per EDP plus allocation-granularity slack for the
        // occupied shards' small buffers.
        let index_growth = (5_000 - 50) * std::mem::size_of::<Vec<u32>>() + 1024;
        assert!(
            ch_big.memory_bytes() <= ch_small.memory_bytes() + index_growth,
            "sharded channel memory must not scale with M beyond the index: \
             {} vs {}",
            ch_big.memory_bytes(),
            ch_small.memory_bytes()
        );
    }

    #[test]
    fn adaptive_k_int_grows_until_the_tail_meets_the_tolerance() {
        let mut rng = seeded_rng(19);
        let cfg = NetworkConfig {
            k_int: 1,
            adaptive_k_int: true,
            ..NetworkConfig::default()
        };
        let mut topo = Topology::random(60, 30, &cfg, &mut rng);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        let moved: Vec<Point> = (0..30)
            .map(|_| crate::uniform_in_disc(500.0, &mut rng))
            .collect();
        topo.update_requesters(&moved);
        ch.refresh_distances(&topo);
        let Repr::Sharded(links) = &ch.repr else {
            panic!("expected the sharded layout");
        };
        assert!(links.k_int > 1, "one tracked interferer leaves a fat tail");
        let (fraction, _) = links.tail_fraction(&ch.process, &ch.cfg).unwrap();
        assert!(
            fraction <= 0.5 * ch.cfg.truncation_tol || links.k_int == 59,
            "controller must stop inside tolerance (or at M − 1): \
             fraction {fraction}, k {}",
            links.k_int
        );
    }

    #[test]
    fn adaptive_k_int_shrinks_a_slack_budget_one_probe_at_a_time() {
        // EDPs on a geometrically-spaced line: with τ = 3 the far field
        // is negligible, so a budget of 6 interferers is pure slack and
        // the halved budget of 4 still sits far inside the tolerance.
        let edps: Vec<Point> = std::iter::once(Point::new(0.0, 0.0))
            .chain((0..7).map(|i| Point::new(100.0 * (1 << i) as f64, 0.0)))
            .collect();
        let requesters = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let mut topo = Topology::with_positions(edps, requesters);
        let cfg = NetworkConfig {
            k_int: 6,
            adaptive_k_int: true,
            ..NetworkConfig::default()
        };
        let mut ch = ChannelState::init_with_seed(&topo, &cfg, 20);
        topo.update_requesters(&[Point::new(1.5, 0.0), Point::new(2.5, 0.0)]);
        ch.refresh_distances(&topo);
        let Repr::Sharded(links) = &ch.repr else {
            panic!("expected the sharded layout");
        };
        assert_eq!(links.k_int, 4, "one probe halving, floored at 4");
    }

    #[test]
    fn adaptive_k_int_reverts_a_shrink_probe_that_breaks_the_tolerance() {
        // At the cap (k = M − 1) the tail share is exactly 0 — below the
        // shrink threshold — but this dense uniform geometry needs the
        // whole budget, so the probe must measure, fail, and revert.
        let mut rng = seeded_rng(20);
        let cfg = NetworkConfig {
            k_int: 59,
            adaptive_k_int: true,
            ..NetworkConfig::default()
        };
        let mut topo = Topology::random(60, 30, &cfg, &mut rng);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        let moved: Vec<Point> = (0..30)
            .map(|_| crate::uniform_in_disc(500.0, &mut rng))
            .collect();
        topo.update_requesters(&moved);
        ch.refresh_distances(&topo);
        let Repr::Sharded(links) = &ch.repr else {
            panic!("expected the sharded layout");
        };
        assert_eq!(links.k_int, 59, "the failed probe must be reverted");
    }

    #[test]
    fn shard_gauges_are_emitted_on_reassociation() {
        use mfgcp_obs::MemorySink;
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(16);
        let mut topo = Topology::random(30, 60, &cfg, &mut rng);
        let mut ch = ChannelState::init(&topo, &cfg, &mut rng);
        let sink = std::sync::Arc::new(MemorySink::new());
        ch.set_recorder(RecorderHandle::new(sink.clone()));
        let moved: Vec<Point> = (0..60)
            .map(|_| crate::uniform_in_disc(500.0, &mut rng))
            .collect();
        topo.update_requesters(&moved);
        ch.refresh_distances(&topo);
        let names: Vec<String> = sink.events().iter().map(|e| e.name.to_string()).collect();
        assert!(names.contains(&"net.shard.occupancy".to_string()));
        assert!(names.contains(&"net.shard.interferers".to_string()));
        assert!(names.contains(&"net.shard.truncated_power".to_string()));
    }
}
