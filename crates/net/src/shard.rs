//! Occupancy-local channel storage: per-EDP shards of (serving, requester)
//! links plus each requester's top-`k_int` interferers.
//!
//! # Per-link counter-based fading streams
//!
//! Every fading draw is a pure function of `(channel_seed, edp, requester,
//! draw id)`: the key is hashed through a SplitMix64 chain and seeds a
//! fresh [`mfgcp_sde::SimRng`] for that single Gaussian sample. Draw id
//! `2·n` is the transition noise into step `n`; draw id `2·n + 1` seeds a
//! link freshly tracked *at* step `n` (handover) from the OU stationary
//! law. Consequences, all load-bearing:
//!
//! - **Dense/sharded parity**: both representations evaluate the same
//!   function of the same key, so any link tracked by both carries
//!   bit-identical fading at every step — the sharded truncation changes
//!   *which* links exist, never their values.
//! - **Order independence**: iteration order over links (shard-major,
//!   row-major, or parallel) cannot change any draw, so runs stay
//!   bit-identical for any `--threads` value.
//! - **Deterministic handover migration**: when mobility re-associates a
//!   requester, links tracked on both sides of the handover carry their
//!   fading over unchanged, and newly tracked links draw from a stream
//!   that depends only on the key — never on which thread or in which
//!   order the migration ran.

use mfgcp_sde::{seeded_rng, OrnsteinUhlenbeck, SimRng, StandardNormal};

use crate::config::NetworkConfig;
use crate::topology::Topology;

/// SplitMix64 finalizer: the bijective avalanche mix used to derive
/// per-link stream keys.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fresh single-use RNG for draw `draw` of link `(edp, requester)` under
/// `seed`. Used for exactly one Gaussian sample (rejection sampling may
/// consume a variable number of words, which is fine — the stream is
/// never shared across draws).
#[inline]
pub(crate) fn link_rng(seed: u64, edp: usize, requester: usize, draw: u64) -> SimRng {
    let a = mix(seed ^ (edp as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let b = mix(a ^ (requester as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
    seeded_rng(mix(b ^ draw.wrapping_mul(0x2545_F491_4F6C_DD1D)))
}

/// Run `f` over disjoint chunks of `items` on scoped threads, passing each
/// chunk's base index. Falls back to one inline call when the population
/// is too small to amortize thread spawns. Every caller's per-item work is
/// keyed by counter-based per-link streams (or draws nothing at all), so
/// any chunking — including the sequential fallback — is bit-identical.
fn par_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(items: &mut [T], f: F) {
    const MIN_PER_THREAD: usize = 1024;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len() / MIN_PER_THREAD);
    if threads <= 1 {
        f(0, items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(c * chunk, chunk_items));
        }
    });
}

/// Stationary-law fading for a link first tracked at step `step`
/// (`step = 0` at construction), clamped into the configured band.
#[inline]
pub(crate) fn init_fading(
    seed: u64,
    edp: usize,
    requester: usize,
    step: u64,
    process: &OrnsteinUhlenbeck,
    cfg: &NetworkConfig,
) -> f64 {
    let mut rng = link_rng(seed, edp, requester, 2 * step + 1);
    let z = StandardNormal.sample(&mut rng);
    cfg.clamp_fading(process.stationary_mean() + process.stationary_variance().sqrt() * z)
}

/// One exact OU transition of a link's fading into step `step`, clamped.
///
/// The flat argument list *is* the stream key plus transition inputs —
/// bundling them into a struct would hide which components key the
/// per-link RNG (`seed`/`edp`/`requester`/`step`) versus which feed the
/// OU transition, so the lint is waived.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn advance_fading(
    seed: u64,
    edp: usize,
    requester: usize,
    step: u64,
    h: f64,
    dt: f64,
    transition_sd: f64,
    process: &OrnsteinUhlenbeck,
    cfg: &NetworkConfig,
) -> f64 {
    let mut rng = link_rng(seed, edp, requester, 2 * step);
    let z = StandardNormal.sample(&mut rng);
    cfg.clamp_fading(process.transition_mean(h, dt) + transition_sd * z)
}

/// One tracked (EDP, requester) link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Link {
    /// EDP side of the link.
    pub edp: u32,
    /// Current OU fading coefficient `h_{i,j}`.
    pub fading: f64,
    /// Current link distance in meters.
    pub distance: f64,
}

/// The links tracked for one requester: its serving EDP plus its
/// `k_int` strongest (nearest) interferers, and the frozen mean-field
/// tail of everything farther away.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RequesterLinks {
    /// The serving-EDP link (always tracked).
    pub serving: Link,
    /// Interferer links, ordered by `(distance, EDP index)` at the last
    /// (re)association.
    pub interferers: Vec<Link>,
    /// Summed channel gain of every *untracked* non-serving EDP, taken at
    /// the OU stationary-mean fading — the far-field interference tail.
    /// With `τ = 3` path loss the tail aggregates hundreds of weak links
    /// whose fading fluctuations average out (mean-field §III), so
    /// freezing it at the stationary mean between re-associations keeps
    /// the Eq. (2) denominator within the configured truncation bound
    /// while the per-slot work stays O(k_int).
    pub tail_gain: f64,
}

impl RequesterLinks {
    /// The tracked link to `edp`, if any.
    pub fn link_to(&self, edp: u32) -> Option<&Link> {
        if self.serving.edp == edp {
            return Some(&self.serving);
        }
        self.interferers.iter().find(|l| l.edp == edp)
    }
}

/// Occupancy-local channel storage: one [`RequesterLinks`] record per
/// requester, sharded by serving EDP.
#[derive(Debug, Clone)]
pub(crate) struct ShardedLinks {
    /// Per-requester link records, indexed by requester id.
    pub records: Vec<RequesterLinks>,
    /// `shards[i]` = requesters whose *serving* EDP is `i` (mirrors
    /// `Topology::served_by` at the last association). The fading hot
    /// loop iterates shard-major so each EDP's state stays cache-local.
    pub shards: Vec<Vec<u32>>,
    /// Interferers tracked per requester.
    pub k_int: usize,
}

impl ShardedLinks {
    /// Track the serving link and `k_int` nearest interferers for every
    /// requester, drawing initial fading from the per-link stationary
    /// streams at step `step`.
    pub fn build(
        topo: &Topology,
        cfg: &NetworkConfig,
        process: &OrnsteinUhlenbeck,
        seed: u64,
        step: u64,
        k_int: usize,
    ) -> Self {
        let m = topo.num_edps();
        let j = topo.num_requesters();
        // Each record is a pure function of its requester index (distances
        // from `topo`, fading from the per-link streams), so construction
        // fans out over record chunks like `reassociate`; only the shard
        // index rebuild stays sequential in ascending requester order.
        let mut slots: Vec<Option<RequesterLinks>> = vec![None; j];
        par_chunks(&mut slots, |base, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(Self::track(
                    topo,
                    cfg,
                    process,
                    seed,
                    step,
                    k_int,
                    base + off,
                    None,
                ));
            }
        });
        let records: Vec<RequesterLinks> = slots.into_iter().flatten().collect();
        let mut shards = vec![Vec::new(); m];
        for (jj, rec) in records.iter().enumerate() {
            shards[rec.serving.edp as usize].push(jj as u32);
        }
        Self {
            records,
            shards,
            k_int,
        }
    }

    /// Re-associate every requester after mobility, migrating link state
    /// between shards: links tracked both before and after the handover
    /// keep their fading; links tracked only after draw fresh stationary
    /// state at step `step` from their per-link stream; links no longer
    /// tracked are dropped. Distances are refreshed from `topo`.
    pub fn reassociate(
        &mut self,
        topo: &Topology,
        cfg: &NetworkConfig,
        process: &OrnsteinUhlenbeck,
        seed: u64,
        step: u64,
    ) {
        // Each record's new state depends only on its own carried links
        // and per-link streams, so the re-tracking runs on record chunks
        // across threads; only the shard index rebuild stays sequential
        // (ascending requester order, exactly as before).
        let k_int = self.k_int;
        par_chunks(&mut self.records, |base, chunk| {
            for (off, rec) in chunk.iter_mut().enumerate() {
                let jj = base + off;
                *rec = Self::track(topo, cfg, process, seed, step, k_int, jj, Some(&*rec));
            }
        });
        for shard in &mut self.shards {
            shard.clear();
        }
        for (jj, rec) in self.records.iter().enumerate() {
            self.shards[rec.serving.edp as usize].push(jj as u32);
        }
    }

    /// Resize the tracked-interferer budget to `k_int` and re-track every
    /// record under the new budget (the adaptive-k controller's lever).
    /// Links tracked under both budgets keep their fading; newly tracked
    /// links draw fresh stationary state, exactly as in
    /// [`ShardedLinks::reassociate`].
    pub fn retrack(
        &mut self,
        topo: &Topology,
        cfg: &NetworkConfig,
        process: &OrnsteinUhlenbeck,
        seed: u64,
        step: u64,
        k_int: usize,
    ) {
        self.k_int = k_int.max(1);
        self.reassociate(topo, cfg, process, seed, step);
    }

    /// Mean share of the interference power (every fading evaluated at
    /// the OU stationary mean, where the geometric split makes fading
    /// cancel in expectation) carried by the frozen tail rather than by
    /// live tracked links, plus how many requesters had any interference
    /// power at all. `None` when nobody did. Pure reads — the
    /// `net.shard.truncated_power` gauge and the adaptive-k controller
    /// both measure through here, so they can never disagree.
    pub fn tail_fraction(
        &self,
        process: &OrnsteinUhlenbeck,
        cfg: &NetworkConfig,
    ) -> Option<(f64, u64)> {
        let h = process.stationary_mean();
        let mut total = 0.0;
        let mut sampled = 0u64;
        for record in &self.records {
            let tracked: f64 = record
                .interferers
                .iter()
                .map(|l| crate::channel_gain(h, l.distance, cfg.path_loss_exp, cfg.min_distance))
                .sum();
            let t = tracked + record.tail_gain;
            if t > 0.0 {
                total += record.tail_gain / t;
                sampled += 1;
            }
        }
        (sampled > 0).then(|| (total / sampled as f64, sampled))
    }

    /// Build the link record for requester `jj`: serving EDP (= nearest,
    /// by the association invariant) plus the next `k_int` nearest EDPs
    /// as interferers. `carry` supplies fading for links already tracked.
    /// The argument list mirrors `advance_fading`'s stream-key components
    /// plus the tracking inputs; see the lint waiver there.
    #[allow(clippy::too_many_arguments)]
    fn track(
        topo: &Topology,
        cfg: &NetworkConfig,
        process: &OrnsteinUhlenbeck,
        seed: u64,
        step: u64,
        k_int: usize,
        jj: usize,
        carry: Option<&RequesterLinks>,
    ) -> RequesterLinks {
        let p = topo.requester(jj);
        let serving_edp = topo.serving(jj);
        let fading_of = |edp: u32| -> f64 {
            if let Some(prev) = carry {
                if let Some(link) = prev.link_to(edp) {
                    return link.fading;
                }
            }
            init_fading(seed, edp as usize, jj, step, process, cfg)
        };
        let serving = Link {
            edp: serving_edp as u32,
            fading: fading_of(serving_edp as u32),
            distance: topo.distance(serving_edp, jj),
        };
        // The serving EDP is the nearest by construction, so the k_int + 1
        // nearest minus the serving EDP are exactly the k_int nearest
        // interferers. Guard with a filter anyway: ties at equal distance
        // are broken by index in both queries, but the invariant lives in
        // `Topology`, not here.
        let near = topo.grid().k_nearest(&p, k_int + 1);
        let mut interferers = Vec::with_capacity(k_int.min(near.len()));
        for (edp, distance) in near {
            if edp == serving_edp || interferers.len() == k_int {
                continue;
            }
            interferers.push(Link {
                edp: edp as u32,
                fading: fading_of(edp as u32),
                distance,
            });
        }
        // Frozen mean-field tail: the untracked far field at the OU
        // stationary-mean fading. One O(M) pass per requester, paid only
        // at (re)association time, never per slot. Computed as
        // (everything − tracked) so the far field needs no membership
        // test; the subtraction uses the same distances, so cancellation
        // error is at the rounding level.
        let h = process.stationary_mean();
        let mut tail_gain = 0.0;
        if interferers.len() == k_int && k_int + 1 < topo.num_edps() {
            let total: f64 = (0..topo.num_edps())
                .filter(|&i| i != serving_edp)
                .map(|i| {
                    crate::channel_gain(
                        h,
                        topo.distance(i, jj),
                        cfg.path_loss_exp,
                        cfg.min_distance,
                    )
                })
                .sum();
            let tracked: f64 = interferers
                .iter()
                .map(|l| crate::channel_gain(h, l.distance, cfg.path_loss_exp, cfg.min_distance))
                .sum();
            tail_gain = (total - tracked).max(0.0);
        }
        RequesterLinks {
            serving,
            interferers,
            tail_gain,
        }
    }

    /// Advance every tracked link by `dt` with its per-link transition
    /// stream into step `step`. Requester-major over record chunks on
    /// scoped threads; the counter-based streams make the result identical
    /// for any iteration order and thread count.
    pub fn advance(
        &mut self,
        cfg: &NetworkConfig,
        process: &OrnsteinUhlenbeck,
        seed: u64,
        step: u64,
        dt: f64,
    ) {
        let sd = process.transition_variance(dt).sqrt();
        par_chunks(&mut self.records, |base, chunk| {
            for (off, record) in chunk.iter_mut().enumerate() {
                let jj = base + off;
                let s = &mut record.serving;
                s.fading = advance_fading(
                    seed,
                    s.edp as usize,
                    jj,
                    step,
                    s.fading,
                    dt,
                    sd,
                    process,
                    cfg,
                );
                for l in &mut record.interferers {
                    l.fading = advance_fading(
                        seed,
                        l.edp as usize,
                        jj,
                        step,
                        l.fading,
                        dt,
                        sd,
                        process,
                        cfg,
                    );
                }
            }
        });
    }

    /// Refresh tracked link distances from moved requester positions
    /// without re-associating (the per-slot mobility path).
    pub fn refresh_distances(&mut self, topo: &Topology, positions: &[crate::Point]) {
        par_chunks(&mut self.records, |base, chunk| {
            for (off, record) in chunk.iter_mut().enumerate() {
                let p = &positions[base + off];
                record.serving.distance = topo.edp(record.serving.edp as usize).distance(p);
                for l in &mut record.interferers {
                    l.distance = topo.edp(l.edp as usize).distance(p);
                }
            }
        });
    }

    /// Resident bytes of the link store (records + shard index).
    pub fn memory_bytes(&self) -> usize {
        let records: usize = self
            .records
            .iter()
            .map(|r| {
                std::mem::size_of::<RequesterLinks>()
                    + r.interferers.capacity() * std::mem::size_of::<Link>()
            })
            .sum();
        let shards: usize = self
            .shards
            .iter()
            .map(|s| std::mem::size_of::<Vec<u32>>() + s.capacity() * std::mem::size_of::<u32>())
            .sum();
        records + shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_streams_are_reproducible_and_distinct() {
        use rand::RngExt as _;
        let mut a = link_rng(7, 3, 11, 40);
        let mut b = link_rng(7, 3, 11, 40);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        // Different key components give different streams.
        let base = link_rng(7, 3, 11, 40).random::<u64>();
        assert_ne!(link_rng(8, 3, 11, 40).random::<u64>(), base);
        assert_ne!(link_rng(7, 4, 11, 40).random::<u64>(), base);
        assert_ne!(link_rng(7, 3, 12, 40).random::<u64>(), base);
        assert_ne!(link_rng(7, 3, 11, 41).random::<u64>(), base);
    }

    #[test]
    fn init_fading_is_clamped_and_deterministic() {
        let cfg = NetworkConfig::default();
        let process = cfg.fading_process();
        for step in [0u64, 1, 17] {
            for edp in 0..5 {
                let h = init_fading(99, edp, 2, step, &process, &cfg);
                assert!(h >= cfg.fading_min && h <= cfg.fading_max);
                assert_eq!(h, init_fading(99, edp, 2, step, &process, &cfg));
            }
        }
    }
}
