//! Requester mobility: the random-waypoint model.
//!
//! §II-A motivates the stochastic channel model with "the randomness and
//! uncertainty of requesters' mobility". This module makes that mobility
//! explicit: each requester picks a waypoint uniformly in the deployment
//! disc, walks towards it at a random speed, pauses, and repeats. The
//! simulator advances positions every slot and re-associates requesters
//! with their nearest EDP every epoch.

use mfgcp_obs::RecorderHandle;
use rand::{Rng, RngExt as _};

use crate::geometry::{uniform_in_disc, Point};

/// Random-waypoint parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Minimum walking speed (m per time unit).
    pub speed_min: f64,
    /// Maximum walking speed (m per time unit).
    pub speed_max: f64,
    /// Pause duration at each waypoint (time units).
    pub pause: f64,
}

impl Default for RandomWaypoint {
    fn default() -> Self {
        // Pedestrian speeds on the epoch time scale (an epoch ≈ 100 s):
        // 1–2 m/s → 100–200 m per epoch.
        Self {
            speed_min: 100.0,
            speed_max: 200.0,
            pause: 0.1,
        }
    }
}

impl RandomWaypoint {
    /// Validate the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed_min <= speed_max` and `pause >= 0`.
    pub fn validated(self) -> Self {
        assert!(
            self.speed_min > 0.0 && self.speed_max >= self.speed_min,
            "need 0 < speed_min <= speed_max"
        );
        assert!(self.pause >= 0.0, "pause must be >= 0");
        self
    }
}

/// Per-requester motion state.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Walking towards the waypoint at the given speed.
    Walking { speed: f64 },
    /// Pausing; time remaining.
    Paused { remaining: f64 },
}

/// The moving requester population.
#[derive(Debug, Clone)]
pub struct MobileRequesters {
    model: RandomWaypoint,
    radius: f64,
    positions: Vec<Point>,
    waypoints: Vec<Point>,
    phases: Vec<Phase>,
    recorder: RecorderHandle,
}

impl MobileRequesters {
    /// Start from the given positions inside a disc of `radius`.
    pub fn new<R: Rng + ?Sized>(
        positions: Vec<Point>,
        radius: f64,
        model: RandomWaypoint,
        rng: &mut R,
    ) -> Self {
        let model = model.validated();
        let n = positions.len();
        let waypoints = (0..n).map(|_| uniform_in_disc(radius, rng)).collect();
        let phases = (0..n)
            .map(|_| Phase::Walking {
                speed: rng.random_range(model.speed_min..=model.speed_max),
            })
            .collect();
        Self {
            model,
            radius,
            positions,
            waypoints,
            phases,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attach a telemetry recorder: [`MobileRequesters::step`] then emits
    /// a `net.mobility.step` event whenever at least one walker reaches
    /// its waypoint (fields: `arrivals`, `walkers`). Telemetry reads state
    /// only — the walk itself (and its RNG consumption) is unaffected.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Current positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Advance every requester by `dt`.
    ///
    /// Phase transitions carry the residual time within the slot: a pause
    /// that ends mid-slot starts walking for the remainder of the slot,
    /// and a walker arriving mid-slot begins its pause with the already
    /// consumed walking time deducted. Total walking time over any horizon
    /// therefore equals elapsed time minus pause time exactly, independent
    /// of how the horizon is sliced into slots.
    ///
    /// Note on determinism: waypoint and speed draws happen in the slot
    /// where the pause actually expires (draw order per transition:
    /// waypoint, then speed), and several transitions can chain within one
    /// slot. This shifts the master-RNG consumption pattern relative to
    /// the historical one-transition-per-slot step, so runs are not
    /// draw-compatible with pre-fix baselines.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) {
        let mut arrivals: u64 = 0;
        // A zero-length leg with a zero pause would consume no time while
        // drawing new waypoints forever; cap the transitions per slot so
        // that measure-zero geometry cannot hang the step.
        const MAX_TRANSITIONS: usize = 10_000;
        for i in 0..self.positions.len() {
            let mut left = dt;
            let mut transitions = 0usize;
            while left > 0.0 && transitions < MAX_TRANSITIONS {
                match self.phases[i] {
                    Phase::Paused { remaining } => {
                        if remaining > left {
                            self.phases[i] = Phase::Paused {
                                remaining: remaining - left,
                            };
                            left = 0.0;
                        } else {
                            left -= remaining;
                            self.waypoints[i] = uniform_in_disc(self.radius, rng);
                            self.phases[i] = Phase::Walking {
                                speed: rng
                                    .random_range(self.model.speed_min..=self.model.speed_max),
                            };
                            transitions += 1;
                        }
                    }
                    Phase::Walking { speed } => {
                        let pos = self.positions[i];
                        let target = self.waypoints[i];
                        let dist = pos.distance(&target);
                        let travel = speed * left;
                        if travel >= dist {
                            // Arrive and pause for the rest of the slot.
                            self.positions[i] = target;
                            left -= dist / speed;
                            self.phases[i] = Phase::Paused {
                                remaining: self.model.pause,
                            };
                            arrivals += 1;
                            transitions += 1;
                        } else {
                            let frac = travel / dist;
                            self.positions[i] = Point::new(
                                pos.x + (target.x - pos.x) * frac,
                                pos.y + (target.y - pos.y) * frac,
                            );
                            left = 0.0;
                        }
                    }
                }
            }
        }
        // Only waypoint arrivals are reported — an every-slot event would
        // drown the stream without adding information.
        if arrivals > 0 {
            self.recorder.event(
                "net.mobility.step",
                &[
                    ("arrivals", arrivals.into()),
                    ("walkers", self.positions.len().into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    fn start() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(-50.0, 20.0),
        ]
    }

    #[test]
    fn walkers_stay_inside_the_disc() {
        let mut rng = seeded_rng(31);
        let mut mob = MobileRequesters::new(start(), 100.0, RandomWaypoint::default(), &mut rng);
        for _ in 0..200 {
            mob.step(0.05, &mut rng);
            for p in mob.positions() {
                assert!(p.distance(&Point::default()) <= 100.0 + 1e-9);
            }
        }
    }

    #[test]
    fn walkers_actually_move() {
        let mut rng = seeded_rng(32);
        let initial = start();
        let mut mob =
            MobileRequesters::new(initial.clone(), 500.0, RandomWaypoint::default(), &mut rng);
        mob.step(0.5, &mut rng);
        let moved = mob
            .positions()
            .iter()
            .zip(&initial)
            .any(|(a, b)| a.distance(b) > 1.0);
        assert!(moved, "nobody moved");
    }

    #[test]
    fn arrival_triggers_a_pause_then_a_new_waypoint() {
        let mut rng = seeded_rng(33);
        let model = RandomWaypoint {
            speed_min: 1e6,
            speed_max: 1e6,
            pause: 0.2,
        };
        let mut mob = MobileRequesters::new(start(), 100.0, model, &mut rng);
        // Huge speed: arrives within one step.
        mob.step(0.01, &mut rng);
        let at_waypoint = mob.positions().to_vec();
        // During the pause the position is frozen.
        mob.step(0.1, &mut rng);
        for (a, b) in mob.positions().iter().zip(&at_waypoint) {
            assert_eq!(a.distance(b), 0.0);
        }
        // After the pause it walks again.
        mob.step(0.2, &mut rng);
        mob.step(0.01, &mut rng);
        let moved = mob
            .positions()
            .iter()
            .zip(&at_waypoint)
            .any(|(a, b)| a.distance(b) > 1.0);
        assert!(moved, "stuck after pause");
    }

    #[test]
    fn arrival_event_reports_the_arrival_count() {
        use mfgcp_obs::{MemorySink, RecorderHandle, Value};
        let mut rng = seeded_rng(35);
        let model = RandomWaypoint {
            speed_min: 1e6,
            speed_max: 1e6,
            pause: 10.0,
        };
        let mut mob = MobileRequesters::new(start(), 100.0, model, &mut rng);
        let sink = std::sync::Arc::new(MemorySink::new());
        mob.set_recorder(RecorderHandle::new(sink.clone()));
        // Huge speed: all three walkers arrive within one step.
        mob.step(0.01, &mut rng);
        // Long pause: the next step has no arrivals and emits nothing.
        mob.step(0.01, &mut rng);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "net.mobility.step");
        assert_eq!(events[0].field("arrivals"), Some(&Value::U64(3)));
        assert_eq!(events[0].field("walkers"), Some(&Value::U64(3)));
    }

    #[test]
    #[should_panic(expected = "speed_min")]
    fn invalid_speeds_rejected() {
        RandomWaypoint {
            speed_min: 0.0,
            speed_max: 1.0,
            pause: 0.0,
        }
        .validated();
    }

    #[test]
    fn displacement_matches_speed_times_elapsed_time() {
        use mfgcp_obs::MemorySink;
        // With pause = 0 and a fixed speed the walk never stops, so the
        // path length over any horizon is exactly speed × elapsed time.
        // The pre-fix step dropped the residual dt at every phase
        // transition: the arrival slot under-walked and the following
        // Paused{0} slot did not move at all, so slots without an arrival
        // could show zero displacement. Here every arrival-free slot must
        // advance every walker by exactly speed · dt, and the summed path
        // must reconstruct speed × elapsed up to the turn geometry.
        let mut rng = seeded_rng(36);
        let speed = 40.0;
        let model = RandomWaypoint {
            speed_min: speed,
            speed_max: speed,
            pause: 0.0,
        };
        let mut mob = MobileRequesters::new(start(), 100.0, model, &mut rng);
        let sink = std::sync::Arc::new(MemorySink::new());
        mob.set_recorder(RecorderHandle::new(sink.clone()));
        let dt = 0.05;
        let steps = 400;
        let mut path = 0.0;
        let mut seen_events = 0usize;
        for _ in 0..steps {
            let before = mob.positions().to_vec();
            mob.step(dt, &mut rng);
            let arrived = sink.events().len() > seen_events;
            seen_events = sink.events().len();
            for (a, b) in mob.positions().iter().zip(&before) {
                let d = a.distance(b);
                path += d;
                if !arrived {
                    // Mid-leg slot: displacement is exactly the walk.
                    assert!((d - speed * dt).abs() < 1e-9, "leaked time: {d}");
                }
            }
        }
        // Summed displacement only under-counts at turns (triangle
        // inequality within the arrival slots), so it stays within a few
        // percent of the exact path length speed × elapsed × walkers.
        let exact = speed * dt * steps as f64 * 3.0;
        assert!(path <= exact + 1e-6, "path {path} exceeds exact {exact}");
        assert!(path > 0.97 * exact, "path {path} vs exact {exact}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = seeded_rng(34);
        let mut r2 = seeded_rng(34);
        let mut a = MobileRequesters::new(start(), 100.0, RandomWaypoint::default(), &mut r1);
        let mut b = MobileRequesters::new(start(), 100.0, RandomWaypoint::default(), &mut r2);
        for _ in 0..20 {
            a.step(0.1, &mut r1);
            b.step(0.1, &mut r2);
        }
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            assert_eq!(pa.distance(pb), 0.0);
        }
    }
}
