//! Uniform spatial hash grid over the deployment disc.
//!
//! Buckets the (static) EDP positions into a `g × g` grid with
//! `g ≈ ⌈√M⌉`, so each cell holds O(1) EDPs in expectation under the
//! uniform placement of §II. Nearest-EDP and k-nearest queries walk
//! expanding Chebyshev rings of cells around the query point and stop as
//! soon as no unexplored cell can still contain a closer candidate —
//! O(1) expected work per query, O(M) only in degenerate placements.
//!
//! Queries are **exact**, not approximate: the ring lower bound is
//! conservative and the final comparison uses the same `sqrt`'d Euclidean
//! distance with the same lexicographic `(distance, index)` tie-break as
//! the dense `min_by` scan it replaces, so associations are bit-identical
//! to the pre-grid implementation.

use crate::geometry::Point;

/// Spatial hash over a fixed set of points (the EDP placement).
#[derive(Debug, Clone)]
pub(crate) struct SpatialGrid {
    /// The indexed points, in their original order.
    points: Vec<Point>,
    /// Lower-left corner of the bounding box.
    origin: Point,
    /// Side length of one square cell (meters).
    cell: f64,
    /// Grid dimensions (columns, rows).
    nx: usize,
    ny: usize,
    /// `cells[cy * nx + cx]` = indices of the points in that cell.
    cells: Vec<Vec<u32>>,
}

impl SpatialGrid {
    /// Build a grid over `points` with roughly one point per cell.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any coordinate is non-finite.
    pub(crate) fn build(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        let mut min = points[0];
        let mut max = points[0];
        for p in points {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "grid points must be finite"
            );
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let side = (points.len() as f64).sqrt().ceil() as usize;
        let extent = (max.x - min.x).max(max.y - min.y);
        // Degenerate extents (a single point, collinear clusters) fall back
        // to one cell; the ring search then terminates on the first ring.
        let cell = if extent > 0.0 {
            extent / side as f64
        } else {
            1.0
        };
        let nx = (((max.x - min.x) / cell).ceil() as usize).max(1);
        let ny = (((max.y - min.y) / cell).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = cell_of(p, &min, cell, nx, ny);
            cells[cy * nx + cx].push(i as u32);
        }
        Self {
            points: points.to_vec(),
            origin: min,
            cell,
            nx,
            ny,
            cells,
        }
    }

    /// Number of indexed points.
    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    /// Index of the point nearest to `p`, breaking distance ties toward
    /// the smaller index (exactly the first-minimum semantics of the
    /// dense `min_by` scan).
    pub(crate) fn nearest(&self, p: &Point) -> usize {
        let (cx, cy) = cell_of(p, &self.origin, self.cell, self.nx, self.ny);
        let mut best: Option<(f64, u32)> = None;
        let max_rho = self.nx.max(self.ny);
        for rho in 0..=max_rho {
            self.for_ring(cx, cy, rho, |idx, q| {
                let d = p.distance(q);
                match best {
                    None => best = Some((d, idx)),
                    Some((bd, bi)) => {
                        if d < bd || (d == bd && idx < bi) {
                            best = Some((d, idx));
                        }
                    }
                }
            });
            // Rings 0..=rho are now explored. Any point in a cell at
            // Chebyshev distance >= rho + 1 from the query's (clamped)
            // cell is at least rho * cell away: the query point projects
            // into cell (cx, cy), and rho whole cell widths separate the
            // two cells' interiors. Stop once the incumbent is strictly
            // closer than that bound — a tie at exactly the bound could
            // still be claimed by a smaller index in an unexplored ring,
            // so `<` (not `<=`) is load-bearing.
            if let Some((d, _)) = best {
                if d < rho as f64 * self.cell {
                    break;
                }
            }
        }
        best.expect("non-empty grid").1 as usize
    }

    /// The `k` points nearest to `p`, sorted by `(distance, index)`.
    /// Returns all points (sorted) when `k >= len()`.
    pub(crate) fn k_nearest(&self, p: &Point, k: usize) -> Vec<(usize, f64)> {
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        let (cx, cy) = cell_of(p, &self.origin, self.cell, self.nx, self.ny);
        let mut cand: Vec<(f64, u32)> = Vec::with_capacity(k * 4);
        let max_rho = self.nx.max(self.ny);
        for rho in 0..=max_rho {
            self.for_ring(cx, cy, rho, |idx, q| cand.push((p.distance(q), idx)));
            if cand.len() >= k {
                cand.sort_unstable_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite distances")
                        .then(a.1.cmp(&b.1))
                });
                // Same conservative ring bound as `nearest`, applied to
                // the current k-th best distance over the explored rings
                // 0..=rho.
                if cand[k - 1].0 < rho as f64 * self.cell {
                    break;
                }
            }
        }
        cand.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        cand.truncate(k);
        cand.into_iter().map(|(d, i)| (i as usize, d)).collect()
    }

    /// Visit every point in the cells at Chebyshev distance exactly `rho`
    /// from cell `(cx, cy)`.
    fn for_ring<F: FnMut(u32, &Point)>(&self, cx: usize, cy: usize, rho: usize, mut f: F) {
        let (cx, cy, rho) = (cx as isize, cy as isize, rho as isize);
        let visit = |x: isize, y: isize, f: &mut F| {
            if x < 0 || y < 0 || x >= self.nx as isize || y >= self.ny as isize {
                return;
            }
            for &idx in &self.cells[y as usize * self.nx + x as usize] {
                f(idx, &self.points[idx as usize]);
            }
        };
        if rho == 0 {
            visit(cx, cy, &mut f);
            return;
        }
        for x in (cx - rho)..=(cx + rho) {
            visit(x, cy - rho, &mut f);
            visit(x, cy + rho, &mut f);
        }
        for y in (cy - rho + 1)..=(cy + rho - 1) {
            visit(cx - rho, y, &mut f);
            visit(cx + rho, y, &mut f);
        }
    }
}

/// Cell coordinates of `p`, clamped into the grid (query points may lie
/// outside the bounding box of the indexed set).
fn cell_of(p: &Point, origin: &Point, cell: f64, nx: usize, ny: usize) -> (usize, usize) {
    let cx = ((p.x - origin.x) / cell).floor();
    let cy = ((p.y - origin.y) / cell).floor();
    let clamp = |v: f64, hi: usize| {
        if v.is_nan() || v < 0.0 {
            0
        } else {
            (v as usize).min(hi - 1)
        }
    };
    (clamp(cx, nx), clamp(cy, ny))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::uniform_in_disc;
    use mfgcp_sde::seeded_rng;

    /// The dense reference: first minimum by `(distance, index)`.
    fn dense_nearest(points: &[Point], p: &Point) -> usize {
        points
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.distance(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    }

    fn dense_k_nearest(points: &[Point], p: &Point, k: usize) -> Vec<usize> {
        let mut all: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, e)| (e.distance(p), i))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        all.truncate(k);
        all.into_iter().map(|(_, i)| i).collect()
    }

    #[test]
    fn nearest_matches_dense_scan_on_random_placements() {
        let mut rng = seeded_rng(41);
        for n in [1usize, 2, 3, 10, 100, 500] {
            let points: Vec<Point> = (0..n).map(|_| uniform_in_disc(500.0, &mut rng)).collect();
            let grid = SpatialGrid::build(&points);
            for _ in 0..200 {
                // Queries both inside the disc and well outside the bbox.
                let q = uniform_in_disc(900.0, &mut rng);
                assert_eq!(grid.nearest(&q), dense_nearest(&points, &q), "n = {n}");
            }
        }
    }

    #[test]
    fn nearest_breaks_ties_toward_the_smaller_index() {
        // Two coincident points and a duplicate farther pair: the dense
        // min_by keeps the first minimum, so index 1 must win over 2.
        let points = vec![
            Point::new(10.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
        ];
        let grid = SpatialGrid::build(&points);
        assert_eq!(grid.nearest(&Point::new(0.1, 0.0)), 1);
    }

    #[test]
    fn k_nearest_matches_dense_sort() {
        let mut rng = seeded_rng(42);
        for n in [1usize, 5, 64, 333] {
            let points: Vec<Point> = (0..n).map(|_| uniform_in_disc(500.0, &mut rng)).collect();
            let grid = SpatialGrid::build(&points);
            for k in [1usize, 4, 32, n, n + 10] {
                let q = uniform_in_disc(700.0, &mut rng);
                let got: Vec<usize> = grid.k_nearest(&q, k).into_iter().map(|(i, _)| i).collect();
                assert_eq!(got, dense_k_nearest(&points, &q, k), "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn k_nearest_distances_are_sorted_and_exact() {
        let mut rng = seeded_rng(43);
        let points: Vec<Point> = (0..100).map(|_| uniform_in_disc(500.0, &mut rng)).collect();
        let grid = SpatialGrid::build(&points);
        let q = Point::new(3.0, -7.0);
        let got = grid.k_nearest(&q, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (i, d) in got {
            assert_eq!(d, points[i].distance(&q));
        }
    }

    #[test]
    fn degenerate_single_point_grid_works() {
        let points = vec![Point::new(4.0, 4.0)];
        let grid = SpatialGrid::build(&points);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.nearest(&Point::new(-100.0, 250.0)), 0);
        assert_eq!(grid.k_nearest(&Point::default(), 5).len(), 1);
    }

    #[test]
    fn collinear_points_are_handled() {
        // Zero vertical extent: the grid degenerates to a single row.
        let points: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 2.0)).collect();
        let grid = SpatialGrid::build(&points);
        let mut rng = seeded_rng(44);
        for _ in 0..50 {
            let q = uniform_in_disc(30.0, &mut rng);
            assert_eq!(grid.nearest(&q), dense_nearest(&points, &q));
        }
    }
}
