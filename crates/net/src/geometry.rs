//! Planar geometry for node placement.

use rand::{Rng, RngExt as _};

/// A point in the plane (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — cheaper than [`Point::distance`] when
    /// only comparisons are needed (spatial-grid pruning).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// Sample a point uniformly in the disc of radius `radius` centered at the
/// origin (by area, using the `sqrt` radial transform).
pub fn uniform_in_disc<R: Rng + ?Sized>(radius: f64, rng: &mut R) -> Point {
    debug_assert!(radius > 0.0);
    let theta: f64 = rng.random_range(0.0..core::f64::consts::TAU);
    let r = radius * rng.random_range(0.0_f64..1.0).sqrt();
    Point::new(r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn disc_samples_stay_inside() {
        let mut rng = seeded_rng(5);
        for _ in 0..1_000 {
            let p = uniform_in_disc(100.0, &mut rng);
            assert!(p.distance(&Point::default()) <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn disc_sampling_is_uniform_by_area() {
        // The inner disc of half radius holds 1/4 of the area; check the
        // empirical proportion of samples.
        let mut rng = seeded_rng(6);
        let n = 40_000;
        let inside = (0..n)
            .filter(|_| uniform_in_disc(1.0, &mut rng).distance(&Point::default()) < 0.5)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "fraction {frac}");
    }
}
