//! Wireless network substrate for the MFG-CP reproduction.
//!
//! Implements the network model of §II-A: planar geometry for Edge Data
//! Providers (EDPs) and requesters, random-waypoint requester mobility
//! (the stated source of channel randomness), nearest-EDP association, the
//! Ornstein–Uhlenbeck channel-fading dynamics of Eq. (1) (via `mfgcp-sde`),
//! the path-loss channel gain `|g|² = |h|² d^{−τ}`, and the
//! interference-limited Shannon rate of Eq. (2):
//!
//! `H_{i,j} = B log₂(1 + |g_{i,j}|² G_i / (ϱ² + Σ_{i'≠i} |g_{i',j}|² G_{i'}))`.
//!
//! Channel state is **occupancy-local** by default: a spatial hash grid
//! over the EDP placement answers nearest-EDP association and
//! k-nearest-interferer queries in O(1) expected, and only each
//! requester's serving link plus its `k_int` strongest interferers carry
//! OU fading state. The exact dense `M × J` layout stays available behind
//! [`NetworkConfig::dense_channel`] as the differential-test oracle.
//!
//! # Example
//!
//! ```
//! use mfgcp_net::{NetworkConfig, Topology, ChannelState};
//! let cfg = NetworkConfig::default();
//! let mut rng = mfgcp_sde::seeded_rng(1);
//! let topo = Topology::random(8, 40, &cfg, &mut rng);
//! let mut channels = ChannelState::init(&topo, &cfg, &mut rng);
//! channels.advance(0.01);
//! let rate = channels.rate(0, topo.served_by(0)[0]);
//! assert!(rate > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod channel;
mod config;
mod geometry;
mod grid;
mod mobility;
mod shard;
mod topology;

pub use channel::{ChannelState, ShardStats};
pub use config::NetworkConfig;
pub use geometry::{uniform_in_disc, Point};
pub use mobility::{MobileRequesters, RandomWaypoint};
pub use topology::Topology;

/// Shannon rate of Eq. (2) given the desired-link gain, the total
/// interference gain (already weighted by the interferers' powers), the
/// transmit power of the serving EDP, the noise power, and the bandwidth.
///
/// All quantities are linear (not dB). Returns bits/s.
pub fn shannon_rate(
    bandwidth: f64,
    link_gain: f64,
    tx_power: f64,
    noise_power: f64,
    interference: f64,
) -> f64 {
    debug_assert!(bandwidth > 0.0 && noise_power > 0.0);
    let sinr = link_gain * tx_power / (noise_power + interference);
    bandwidth * (1.0 + sinr).log2()
}

/// Channel gain `|g|² = |h|² · d^{−τ}` from the fading coefficient `h`,
/// distance `d` and path-loss exponent `τ`.
///
/// Distances below `min_distance` are clamped to avoid the singularity at
/// co-located nodes.
pub fn channel_gain(h: f64, distance: f64, path_loss_exp: f64, min_distance: f64) -> f64 {
    let d = distance.max(min_distance);
    h * h * d.powf(-path_loss_exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_rate_increases_with_gain() {
        let r1 = shannon_rate(10e6, 1e-10, 1.0, 1e-13, 0.0);
        let r2 = shannon_rate(10e6, 2e-10, 1.0, 1e-13, 0.0);
        assert!(r2 > r1);
    }

    #[test]
    fn shannon_rate_decreases_with_interference() {
        let r1 = shannon_rate(10e6, 1e-10, 1.0, 1e-13, 0.0);
        let r2 = shannon_rate(10e6, 1e-10, 1.0, 1e-13, 1e-11);
        assert!(r2 < r1);
    }

    #[test]
    fn zero_gain_means_zero_rate() {
        assert_eq!(shannon_rate(10e6, 0.0, 1.0, 1e-13, 0.0), 0.0);
    }

    #[test]
    fn channel_gain_follows_path_loss() {
        let g_near = channel_gain(1e-5, 10.0, 3.0, 1.0);
        let g_far = channel_gain(1e-5, 20.0, 3.0, 1.0);
        // Doubling distance with τ = 3 cuts the gain by 8×.
        assert!((g_near / g_far - 8.0).abs() < 1e-9);
    }

    #[test]
    fn channel_gain_clamps_tiny_distances() {
        let g0 = channel_gain(1e-5, 0.0, 3.0, 1.0);
        let g1 = channel_gain(1e-5, 0.5, 3.0, 1.0);
        assert_eq!(g0, g1);
        assert!(g0.is_finite());
    }
}
