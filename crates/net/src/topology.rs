//! EDP/requester placement and nearest-EDP association.
//!
//! §II of the paper: EDPs and requesters are "randomly distributed within a
//! certain range", and "each requester is associated with a default serving
//! EDP that is nearest geographically"; `J_i(t)` is the set of requesters
//! served by EDP `i`.
//!
//! Association queries go through a [`SpatialGrid`] over the (static) EDP
//! placement, so building a topology and re-associating after mobility are
//! O(J) expected instead of O(M·J). The grid is exact: it reproduces the
//! dense scan's `(distance, index)` first-minimum semantics bit for bit.

use std::sync::{Arc, OnceLock};

use mfgcp_obs::RecorderHandle;
use rand::Rng;

use crate::config::NetworkConfig;
use crate::geometry::{uniform_in_disc, Point};
use crate::grid::SpatialGrid;

/// Static node placement: `M` EDPs and `J` requesters in a disc, plus the
/// nearest-EDP association map.
#[derive(Debug, Clone)]
pub struct Topology {
    edps: Vec<Point>,
    requesters: Vec<Point>,
    /// `serving_edp[j]` = index of the EDP serving requester `j`.
    serving_edp: Vec<usize>,
    /// `served[i]` = indices of requesters associated with EDP `i`.
    served: Vec<Vec<usize>>,
    /// Spatial hash over the EDP positions; shared because EDPs never move.
    grid: Arc<SpatialGrid>,
    /// Lazily-built distance-sorted neighbor lists, one per EDP. EDPs are
    /// static, so a list built once stays valid for the topology's lifetime
    /// (mobility only moves requesters).
    neighbor_cache: Arc<Vec<OnceLock<Vec<usize>>>>,
    /// `anchor[j]` = the position at which requester `j`'s serving EDP was
    /// last established by a full nearest query.
    anchor: Vec<Point>,
    /// `margin[j]` = safe displacement radius around `anchor[j]`: while
    /// the requester stays strictly within it, the anchored nearest EDP is
    /// still strictly nearest (triangle inequality) and the grid query can
    /// be skipped. `∞` when a second-nearest EDP does not exist.
    margin: Vec<f64>,
    recorder: RecorderHandle,
}

/// Fraction of the exact triangle-inequality bound `(d₂ − d₁) / 2` kept
/// as the skip margin. After moving `δ < (d₂ − d₁)/2` from the anchor the
/// old nearest EDP is still *strictly* nearest (`d(r, s) ≤ d₁ + δ <
/// d₂ − δ ≤ d(r, e)` for every other EDP `e`), so the skip reproduces the
/// dense scan exactly and no tie-break can arise. Staying below `1/2`
/// leaves headroom for the rounding of the two distance evaluations.
const REASSOC_MARGIN_GUARD: f64 = 0.45;

impl Topology {
    /// Place `m` EDPs and `j` requesters uniformly in the configured disc
    /// and associate each requester with its nearest EDP.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn random<R: Rng + ?Sized>(m: usize, j: usize, cfg: &NetworkConfig, rng: &mut R) -> Self {
        assert!(m > 0, "need at least one EDP");
        let edps: Vec<Point> = (0..m)
            .map(|_| uniform_in_disc(cfg.area_radius, rng))
            .collect();
        let requesters: Vec<Point> = (0..j)
            .map(|_| uniform_in_disc(cfg.area_radius, rng))
            .collect();
        Self::with_positions(edps, requesters)
    }

    /// Build a topology from explicit positions (used by tests and the
    /// deterministic examples).
    ///
    /// # Panics
    ///
    /// Panics if `edps` is empty.
    pub fn with_positions(edps: Vec<Point>, requesters: Vec<Point>) -> Self {
        assert!(!edps.is_empty(), "need at least one EDP");
        let grid = Arc::new(SpatialGrid::build(&edps));
        let mut serving_edp = Vec::with_capacity(requesters.len());
        let mut served = vec![Vec::new(); edps.len()];
        let mut anchor = Vec::with_capacity(requesters.len());
        let mut margin = Vec::with_capacity(requesters.len());
        for (j, r) in requesters.iter().enumerate() {
            let (best, m) = anchored_nearest(&grid, r);
            serving_edp.push(best);
            served[best].push(j);
            anchor.push(*r);
            margin.push(m);
        }
        let neighbor_cache = Arc::new((0..edps.len()).map(|_| OnceLock::new()).collect());
        Self {
            edps,
            requesters,
            serving_edp,
            served,
            grid,
            neighbor_cache,
            anchor,
            margin,
            recorder: RecorderHandle::noop(),
        }
    }

    /// Attach a telemetry recorder: every
    /// [`Topology::update_requesters`] then emits a `net.reassociation`
    /// event counting how many requesters changed serving EDP. Telemetry
    /// reads state only — the association itself is unaffected.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Number of EDPs.
    pub fn num_edps(&self) -> usize {
        self.edps.len()
    }

    /// Number of requesters.
    pub fn num_requesters(&self) -> usize {
        self.requesters.len()
    }

    /// Position of EDP `i`.
    pub fn edp(&self, i: usize) -> Point {
        self.edps[i]
    }

    /// Position of requester `j`.
    pub fn requester(&self, j: usize) -> Point {
        self.requesters[j]
    }

    /// The EDP serving requester `j`.
    pub fn serving(&self, j: usize) -> usize {
        self.serving_edp[j]
    }

    /// The requesters served by EDP `i` (the paper's `J_i`).
    pub fn served_by(&self, i: usize) -> &[usize] {
        &self.served[i]
    }

    /// Distance between EDP `i` and requester `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.edps[i].distance(&self.requesters[j])
    }

    /// The spatial hash over the EDP placement (shared with the sharded
    /// channel state for interferer selection).
    pub(crate) fn grid(&self) -> &SpatialGrid {
        &self.grid
    }

    /// Replace the requester positions (mobility) and recompute the
    /// nearest-EDP association in place — O(J) expected via the spatial
    /// grid; the EDP placement, grid, and neighbor cache are untouched.
    ///
    /// Incremental: a requester whose displacement since its last full
    /// nearest query is strictly below its stored margin (a guarded
    /// `(d₂ − d₁)/2`, see `REASSOC_MARGIN_GUARD`) keeps its serving EDP
    /// without touching the grid — exact by the triangle inequality, so
    /// the resulting partition is identical to querying every requester.
    ///
    /// # Panics
    ///
    /// Panics if the number of positions changes.
    pub fn update_requesters(&mut self, positions: &[Point]) {
        assert_eq!(
            positions.len(),
            self.requesters.len(),
            "requester count must not change"
        );
        self.requesters.clear();
        self.requesters.extend_from_slice(positions);
        for list in &mut self.served {
            list.clear();
        }
        let mut moved = 0usize;
        for (j, r) in self.requesters.iter().enumerate() {
            let best = if r.distance(&self.anchor[j]) < self.margin[j] {
                self.serving_edp[j]
            } else {
                let (best, m) = anchored_nearest(&self.grid, r);
                self.anchor[j] = *r;
                self.margin[j] = m;
                best
            };
            if self.serving_edp[j] != best {
                moved += 1;
            }
            self.serving_edp[j] = best;
            self.served[best].push(j);
        }
        if self.recorder.enabled() {
            self.recorder.event(
                "net.reassociation",
                &[
                    ("moved", moved.into()),
                    ("requesters", self.serving_edp.len().into()),
                ],
            );
        }
    }

    /// Indices of the EDPs nearest to EDP `i`, sorted by distance
    /// (excluding `i` itself) — the "adjacent EDPs" of the sharing model.
    ///
    /// The list is built on first use and cached for the lifetime of the
    /// topology (EDPs never move), so repeated calls from the sharing
    /// model cost a slice borrow instead of an O(M log M) re-sort.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        self.neighbor_cache[i].get_or_init(|| {
            let me = self.edps[i];
            let mut others: Vec<(usize, f64)> = self
                .edps
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i)
                .map(|(k, p)| (k, me.distance(p)))
                .collect();
            others.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
            others.into_iter().map(|(k, _)| k).collect()
        })
    }
}

/// Full nearest query for `r` plus the skip margin for its new anchor:
/// the two nearest EDPs in `(distance, index)` order — the first matches
/// [`SpatialGrid::nearest`]'s first-minimum semantics exactly — and the
/// guarded half-gap between them (`∞` when the grid holds a single EDP,
/// where no handover is ever possible).
fn anchored_nearest(grid: &SpatialGrid, r: &Point) -> (usize, f64) {
    let nn = grid.k_nearest(r, 2);
    debug_assert_eq!(
        nn[0].0,
        grid.nearest(r),
        "k_nearest's head must match the single-nearest query"
    );
    let margin = if nn.len() > 1 {
        REASSOC_MARGIN_GUARD * (nn[1].1 - nn[0].1)
    } else {
        f64::INFINITY
    };
    (nn[0].0, margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    fn square_topology() -> Topology {
        // EDPs at the corners of a unit square; requesters near each corner.
        let edps = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let requesters = vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.1),
            Point::new(0.1, 0.9),
            Point::new(0.9, 0.9),
            Point::new(0.05, 0.0),
        ];
        Topology::with_positions(edps, requesters)
    }

    #[test]
    fn nearest_association() {
        let t = square_topology();
        assert_eq!(t.serving(0), 0);
        assert_eq!(t.serving(1), 1);
        assert_eq!(t.serving(2), 2);
        assert_eq!(t.serving(3), 3);
        assert_eq!(t.serving(4), 0);
        assert_eq!(t.served_by(0), &[0, 4]);
        assert_eq!(t.served_by(3), &[3]);
    }

    #[test]
    fn association_matches_the_dense_scan() {
        // The grid path must reproduce the historical O(M·J) min_by scan
        // bit for bit, including its first-minimum tie-break.
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(21);
        let t = Topology::random(137, 400, &cfg, &mut rng);
        for j in 0..t.num_requesters() {
            let r = t.requester(j);
            let dense = (0..t.num_edps())
                .map(|i| (i, t.edp(i).distance(&r)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty")
                .0;
            assert_eq!(t.serving(j), dense, "requester {j}");
        }
    }

    #[test]
    fn neighbors_sorted_by_distance() {
        let t = square_topology();
        let n = t.neighbors(0);
        assert_eq!(n.len(), 3);
        // Corners at distance 1, 1, √2: the diagonal corner (index 3) last.
        assert_eq!(n[2], 3);
    }

    #[test]
    fn neighbors_are_cached_and_survive_reassociation() {
        let mut t = square_topology();
        let first: Vec<usize> = t.neighbors(1).to_vec();
        let ptr_before = t.neighbors(1).as_ptr();
        // Mobility re-associates requesters but EDPs never move, so the
        // cached list must be reused (same allocation), not rebuilt.
        let positions: Vec<Point> = (0..t.num_requesters()).map(|j| t.requester(j)).collect();
        t.update_requesters(&positions);
        assert_eq!(t.neighbors(1), first.as_slice());
        assert_eq!(t.neighbors(1).as_ptr(), ptr_before);
    }

    #[test]
    fn random_topology_respects_counts_and_partition() {
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(7);
        let t = Topology::random(10, 57, &cfg, &mut rng);
        assert_eq!(t.num_edps(), 10);
        assert_eq!(t.num_requesters(), 57);
        // Every requester appears in exactly one served list.
        let total: usize = (0..10).map(|i| t.served_by(i).len()).sum();
        assert_eq!(total, 57);
        for j in 0..57 {
            assert!(t.served_by(t.serving(j)).contains(&j));
        }
    }

    #[test]
    fn update_requesters_reassociates() {
        let mut t = square_topology();
        assert_eq!(t.serving(0), 0);
        // Move requester 0 next to EDP 3.
        let mut positions: Vec<Point> = (0..t.num_requesters()).map(|j| t.requester(j)).collect();
        positions[0] = Point::new(0.95, 0.95);
        t.update_requesters(&positions);
        assert_eq!(t.serving(0), 3);
        assert!(t.served_by(3).contains(&0));
        assert!(!t.served_by(0).contains(&0));
    }

    #[test]
    fn update_requesters_keeps_served_lists_in_requester_order() {
        let cfg = NetworkConfig::default();
        let mut rng = seeded_rng(22);
        let mut t = Topology::random(9, 80, &cfg, &mut rng);
        let moved: Vec<Point> = (0..80).map(|_| uniform_in_disc(500.0, &mut rng)).collect();
        t.update_requesters(&moved);
        let reference = Topology::with_positions((0..9).map(|i| t.edp(i)).collect(), moved);
        for i in 0..9 {
            assert_eq!(t.served_by(i), reference.served_by(i), "EDP {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one EDP")]
    fn empty_edps_rejected() {
        Topology::with_positions(vec![], vec![Point::default()]);
    }

    #[test]
    fn reassociation_event_counts_moved_requesters() {
        use mfgcp_obs::{MemorySink, Value};
        let mut t = square_topology();
        let sink = std::sync::Arc::new(MemorySink::new());
        t.set_recorder(RecorderHandle::new(sink.clone()));
        // Move requester 0 next to EDP 3; everyone else stays put.
        let mut positions: Vec<Point> = (0..t.num_requesters()).map(|j| t.requester(j)).collect();
        positions[0] = Point::new(0.95, 0.95);
        t.update_requesters(&positions);
        // A second update with the same positions moves nobody — and the
        // recorder must survive the update.
        t.update_requesters(&positions);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "net.reassociation");
        assert_eq!(events[0].field("moved"), Some(&Value::U64(1)));
        assert_eq!(events[0].field("requesters"), Some(&Value::U64(5)));
        assert_eq!(events[1].field("moved"), Some(&Value::U64(0)));
    }
}
