//! Differential suite: the sharded occupancy-local channel against the
//! exact dense oracle.
//!
//! The per-link counter-based fading streams make every link that both
//! representations track **bit-identical** — init, every OU transition,
//! and every distance refresh. The only divergence the sharding is
//! allowed is the *truncation* of the Eq. (2) interference sum to the
//! `k_int` tracked interferers, which these tests bound by the configured
//! [`NetworkConfig::truncation_tol`].

use proptest::prelude::*;

use mfgcp_net::{ChannelState, NetworkConfig, Point, Topology};
use mfgcp_sde::seeded_rng;

fn dense_cfg(cfg: &NetworkConfig) -> NetworkConfig {
    NetworkConfig {
        dense_channel: true,
        ..cfg.clone()
    }
}

/// A mid-sized instance where `k_int = 32 < M − 1`, so truncation is real.
fn instance(seed: u64, m: usize, j: usize) -> (Topology, NetworkConfig) {
    let cfg = NetworkConfig::default();
    let mut rng = seeded_rng(seed);
    (Topology::random(m, j, &cfg, &mut rng), cfg)
}

#[test]
fn serving_links_are_bit_identical_over_time() {
    let (topo, cfg) = instance(301, 200, 80);
    let mut sharded = ChannelState::init_with_seed(&topo, &cfg, 9001);
    let mut dense = ChannelState::init_with_seed(&topo, &dense_cfg(&cfg), 9001);
    assert!(!sharded.is_dense() && dense.is_dense());
    for step in 0..25 {
        for j in 0..topo.num_requesters() {
            let i = topo.serving(j);
            assert_eq!(
                sharded.link_fading(i, j),
                dense.link_fading(i, j),
                "serving fading diverged at step {step}, link ({i}, {j})"
            );
            assert_eq!(
                sharded.gain(i, j),
                dense.gain(i, j),
                "serving gain diverged at step {step}, link ({i}, {j})"
            );
        }
        sharded.advance(0.05);
        dense.advance(0.05);
    }
}

#[test]
fn every_tracked_link_matches_the_dense_oracle() {
    let (topo, cfg) = instance(302, 150, 60);
    let mut sharded = ChannelState::init_with_seed(&topo, &cfg, 77);
    let mut dense = ChannelState::init_with_seed(&topo, &dense_cfg(&cfg), 77);
    for _ in 0..10 {
        sharded.advance(0.05);
        dense.advance(0.05);
    }
    for j in 0..topo.num_requesters() {
        let mut tracked = sharded.tracked_interferers(j);
        tracked.push(topo.serving(j));
        assert_eq!(tracked.len(), cfg.k_int + 1);
        for i in tracked {
            assert_eq!(sharded.link_fading(i, j), dense.link_fading(i, j));
            assert_eq!(sharded.gain(i, j), dense.gain(i, j));
        }
    }
}

#[test]
fn interference_and_rate_stay_within_the_truncation_bound() {
    let (topo, cfg) = instance(303, 400, 100);
    let mut sharded = ChannelState::init_with_seed(&topo, &cfg, 12);
    let mut dense = ChannelState::init_with_seed(&topo, &dense_cfg(&cfg), 12);
    let mut worst_interference = 0.0_f64;
    let mut worst_rate = 0.0_f64;
    for _ in 0..5 {
        sharded.advance(0.05);
        dense.advance(0.05);
        for j in 0..topo.num_requesters() {
            let i = topo.serving(j);
            let exact = dense.interference(i, j);
            let truncated = sharded.interference(i, j);
            if exact > 0.0 {
                worst_interference = worst_interference.max((exact - truncated).abs() / exact);
            }
            let r_exact = dense.rate(i, j);
            let r_sharded = sharded.rate(i, j);
            if r_exact > 0.0 {
                worst_rate = worst_rate.max((r_sharded - r_exact).abs() / r_exact);
            }
        }
    }
    assert!(
        worst_interference <= cfg.truncation_tol,
        "interference truncation error {worst_interference:.3e} above \
         configured bound {:.1e}",
        cfg.truncation_tol
    );
    // Truncating interference can only increase SINR, and the rate is a
    // log of it, so the rate error is no worse than the interference one.
    assert!(
        worst_rate <= cfg.truncation_tol,
        "rate truncation error {worst_rate:.3e} above configured bound"
    );
}

#[test]
fn full_tracking_reproduces_dense_rates_to_rounding() {
    // With k_int >= M - 1 nothing is truncated; the only difference left
    // is floating-point summation order in the interference loop.
    let cfg = NetworkConfig {
        k_int: 39,
        ..NetworkConfig::default()
    };
    let mut rng = seeded_rng(304);
    let topo = Topology::random(40, 30, &cfg, &mut rng);
    let mut sharded = ChannelState::init_with_seed(&topo, &cfg, 5);
    let mut dense = ChannelState::init_with_seed(&topo, &dense_cfg(&cfg), 5);
    for _ in 0..8 {
        sharded.advance(0.1);
        dense.advance(0.1);
    }
    for j in 0..topo.num_requesters() {
        for i in 0..topo.num_edps() {
            assert_eq!(sharded.link_fading(i, j), dense.link_fading(i, j));
            let (a, b) = (sharded.rate(i, j), dense.rate(i, j));
            let tol = 1e-12 * b.abs().max(1.0);
            assert!((a - b).abs() <= tol, "rate ({i}, {j}): {a} vs {b}");
        }
    }
}

#[test]
fn mobility_keeps_continuously_tracked_links_bit_identical() {
    // Drive both representations through per-slot position refreshes and
    // an epoch-boundary re-association (handover migration on the sharded
    // side). Links tracked on both sides of the handover must stay bit
    // for bit equal to the dense oracle; links first tracked *at* the
    // handover draw fresh stationary state (they cannot replay the dense
    // link's clamped OU history — the divergence is the documented,
    // deterministic part of the migration, covered by the proptests).
    let (mut topo, cfg) = instance(305, 120, 50);
    let mut sharded = ChannelState::init_with_seed(&topo, &cfg, 42);
    let mut dense = ChannelState::init_with_seed(&topo, &dense_cfg(&cfg), 42);
    let mut rng = seeded_rng(306);
    for _ in 0..5 {
        sharded.advance(0.05);
        dense.advance(0.05);
    }
    let tracked_before: Vec<Vec<usize>> = (0..topo.num_requesters())
        .map(|j| {
            let mut edps = sharded.tracked_interferers(j);
            edps.push(topo.serving(j));
            edps
        })
        .collect();
    let positions: Vec<Point> = (0..topo.num_requesters())
        .map(|_| mfgcp_net::uniform_in_disc(cfg.area_radius, &mut rng))
        .collect();
    topo.update_requesters(&positions);
    sharded.refresh_distances(&topo);
    dense.refresh_distances(&topo);
    let mut checked = 0usize;
    for _ in 0..5 {
        sharded.advance(0.05);
        dense.advance(0.05);
        sharded.refresh_distances_from_positions(&topo, &positions);
        dense.refresh_distances_from_positions(&topo, &positions);
        for (j, before) in tracked_before.iter().enumerate() {
            let mut now = sharded.tracked_interferers(j);
            now.push(topo.serving(j));
            for i in now {
                if before.contains(&i) {
                    assert_eq!(
                        sharded.link_fading(i, j),
                        dense.link_fading(i, j),
                        "migrated link ({i}, {j}) diverged from the dense oracle"
                    );
                    assert_eq!(sharded.gain(i, j), dense.gain(i, j));
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 100,
        "handover kept too few links to be a real test"
    );
}

proptest! {
    /// Handover migration never drops or duplicates link state: after any
    /// sequence of moves and re-associations, every requester still
    /// tracks exactly its serving link plus `min(k_int, M − 1)` distinct
    /// non-serving interferers, and any link tracked across the handover
    /// carries its fading value over bit for bit.
    #[test]
    fn handover_migration_preserves_link_state(
        seed in 0_u64..500,
        m in 2_usize..40,
        j in 1_usize..20,
        k_int in 1_usize..6,
        epochs in 1_usize..5,
    ) {
        let cfg = NetworkConfig { k_int, ..NetworkConfig::default() };
        let mut rng = seeded_rng(seed);
        let mut topo = Topology::random(m, j, &cfg, &mut rng);
        let mut ch = ChannelState::init_with_seed(&topo, &cfg, seed ^ 0xABCD);
        let expected_interferers = k_int.min(m - 1);
        for _ in 0..epochs {
            // Snapshot every tracked link before the handover.
            let mut before = Vec::new();
            for jj in 0..j {
                let mut edps = ch.tracked_interferers(jj);
                edps.push(topo.serving(jj));
                for i in edps {
                    before.push((i, jj, ch.link_fading(i, jj).expect("tracked")));
                }
            }
            let positions: Vec<Point> = (0..j)
                .map(|_| mfgcp_net::uniform_in_disc(cfg.area_radius, &mut rng))
                .collect();
            topo.update_requesters(&positions);
            ch.refresh_distances(&topo);
            for jj in 0..j {
                // The serving link always exists (never dropped).
                let serving = topo.serving(jj);
                prop_assert!(ch.link_fading(serving, jj).is_some());
                // Exactly the expected number of distinct interferers,
                // none of them the serving EDP (never duplicated).
                let ints = ch.tracked_interferers(jj);
                prop_assert_eq!(ints.len(), expected_interferers);
                let mut dedup = ints.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), ints.len(), "duplicate interferer");
                prop_assert!(!ints.contains(&serving), "serving EDP duplicated as interferer");
            }
            // Links tracked on both sides migrated their fading intact.
            for (i, jj, h) in before {
                if let Some(now) = ch.link_fading(i, jj) {
                    prop_assert_eq!(now, h, "fading changed across handover on link ({}, {})", i, jj);
                }
            }
            ch.advance(0.05);
        }
    }

    /// A freshly tracked link's fading is a pure function of the link key
    /// and the step — independent of how the requester got there.
    #[test]
    fn fresh_links_draw_from_their_per_link_stream(
        seed in 0_u64..200,
        m in 3_usize..30,
        j in 1_usize..10,
    ) {
        let cfg = NetworkConfig { k_int: 2, ..NetworkConfig::default() };
        let mut rng = seeded_rng(seed);
        let topo = Topology::random(m, j, &cfg, &mut rng);
        // Two independent states over the same seed and the same walk
        // must agree on everything, including links first tracked at a
        // handover.
        let mut a = ChannelState::init_with_seed(&topo, &cfg, seed);
        let mut b = ChannelState::init_with_seed(&topo, &cfg, seed);
        let positions: Vec<Point> = (0..j)
            .map(|_| mfgcp_net::uniform_in_disc(cfg.area_radius, &mut rng))
            .collect();
        let mut t2 = topo.clone();
        t2.update_requesters(&positions);
        a.advance(0.05);
        b.advance(0.05);
        a.refresh_distances(&t2);
        b.refresh_distances(&t2);
        for jj in 0..j {
            let mut edps = a.tracked_interferers(jj);
            edps.push(t2.serving(jj));
            for i in edps {
                prop_assert_eq!(a.link_fading(i, jj), b.link_fading(i, jj));
            }
        }
    }
}
