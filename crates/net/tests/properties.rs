//! Property-based tests for the wireless network substrate.

use proptest::prelude::*;

use mfgcp_net::{
    channel_gain, shannon_rate, MobileRequesters, NetworkConfig, Point, RandomWaypoint, Topology,
};

proptest! {
    /// The Shannon rate is non-negative, monotone in the link gain, and
    /// anti-monotone in interference and noise.
    #[test]
    fn shannon_rate_monotonicity(
        gain in 0.0_f64..1e-6,
        bump in 1e-12_f64..1e-7,
        interference in 0.0_f64..1e-8,
        noise in 1e-15_f64..1e-10,
    ) {
        let r = shannon_rate(10e6, gain, 1.0, noise, interference);
        prop_assert!(r >= 0.0);
        prop_assert!(r.is_finite());
        let r_better = shannon_rate(10e6, gain + bump, 1.0, noise, interference);
        prop_assert!(r_better >= r);
        let r_noisier = shannon_rate(10e6, gain, 1.0, noise, interference + bump);
        prop_assert!(r_noisier <= r);
    }

    /// Channel gain decreases with distance and is finite even at zero
    /// distance thanks to the clamp.
    #[test]
    fn channel_gain_distance_law(
        h in 1e-6_f64..1e-3,
        d1 in 0.0_f64..1000.0,
        d2 in 0.0_f64..1000.0,
        tau in 2.0_f64..4.0,
    ) {
        let g1 = channel_gain(h, d1, tau, 1.0);
        let g2 = channel_gain(h, d2, tau, 1.0);
        prop_assert!(g1.is_finite() && g2.is_finite());
        prop_assert!(g1 > 0.0);
        if d1.max(1.0) < d2.max(1.0) {
            prop_assert!(g1 >= g2);
        }
    }

    /// Nearest-EDP association is a partition: every requester appears in
    /// exactly one served list, and it really is the nearest EDP.
    #[test]
    fn association_is_a_nearest_partition(
        edps in proptest::collection::vec((-100.0_f64..100.0, -100.0_f64..100.0), 1..8),
        reqs in proptest::collection::vec((-100.0_f64..100.0, -100.0_f64..100.0), 0..20),
    ) {
        let edp_pts: Vec<Point> = edps.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let req_pts: Vec<Point> = reqs.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = Topology::with_positions(edp_pts.clone(), req_pts.clone());
        let total: usize = (0..topo.num_edps()).map(|i| topo.served_by(i).len()).sum();
        prop_assert_eq!(total, req_pts.len());
        for (j, r) in req_pts.iter().enumerate() {
            let serving = topo.serving(j);
            let d_serving = edp_pts[serving].distance(r);
            for e in &edp_pts {
                prop_assert!(d_serving <= e.distance(r) + 1e-9);
            }
        }
    }

    /// Repeated in-place re-association reproduces the from-scratch
    /// association exactly, step after step. Positions live on a
    /// quarter-unit lattice shared with the EDP placement, so exact
    /// distance ties and spatial-grid cell-boundary hits occur with real
    /// probability; deltas mix sub-margin wiggles (exercising the
    /// triangle-inequality skip that keeps a stale anchor) with long
    /// jumps that force full nearest queries and handovers.
    #[test]
    fn update_requesters_preserves_the_exact_partition(
        edps in proptest::collection::vec((0_i32..21, 0_i32..21), 2..12),
        starts in proptest::collection::vec((0_i32..81, 0_i32..81), 5),
        deltas in proptest::collection::vec(
            proptest::collection::vec((-40_i32..41, -40_i32..41), 5), 1..6),
    ) {
        let edp_pts: Vec<Point> = edps
            .iter()
            .map(|&(x, y)| Point::new(x as f64 * 10.0, y as f64 * 10.0))
            .collect();
        let mut pos: Vec<Point> = starts
            .iter()
            .map(|&(x, y)| Point::new(x as f64 * 2.5, y as f64 * 2.5))
            .collect();
        let mut topo = Topology::with_positions(edp_pts.clone(), pos.clone());
        for step in &deltas {
            for (p, &(dx, dy)) in pos.iter_mut().zip(step) {
                *p = Point::new(
                    (p.x + dx as f64 * 0.25).clamp(0.0, 200.0),
                    (p.y + dy as f64 * 0.25).clamp(0.0, 200.0),
                );
            }
            topo.update_requesters(&pos);
            let reference = Topology::with_positions(edp_pts.clone(), pos.clone());
            for j in 0..pos.len() {
                prop_assert_eq!(topo.serving(j), reference.serving(j), "requester {}", j);
            }
            for i in 0..edp_pts.len() {
                prop_assert_eq!(topo.served_by(i), reference.served_by(i), "EDP {}", i);
            }
        }
    }

    /// Mobile requesters never leave the deployment disc, for any walk
    /// parameters and step pattern.
    #[test]
    fn mobility_respects_the_disc(
        speed in 1.0_f64..500.0,
        pause in 0.0_f64..1.0,
        steps in 1_usize..60,
        dt in 0.01_f64..0.5,
        seed in 0_u64..200,
    ) {
        let mut rng = mfgcp_sde::seeded_rng(seed);
        let model = RandomWaypoint { speed_min: speed, speed_max: speed * 1.5, pause };
        let starts = vec![Point::new(0.0, 0.0), Point::new(50.0, -20.0)];
        let mut mob = MobileRequesters::new(starts, 100.0, model, &mut rng);
        for _ in 0..steps {
            mob.step(dt, &mut rng);
            for p in mob.positions() {
                prop_assert!(p.distance(&Point::default()) <= 100.0 + 1e-6);
            }
        }
    }

    /// The fading clamp keeps any OU excursion inside the configured band.
    #[test]
    fn fading_clamp_is_idempotent(h in -1.0_f64..1.0) {
        let cfg = NetworkConfig::default();
        let once = cfg.clamp_fading(h);
        prop_assert!((cfg.fading_min..=cfg.fading_max).contains(&once));
        prop_assert_eq!(cfg.clamp_fading(once), once);
    }
}
