//! Slot-boundary state snapshots and the engine control hook.
//!
//! The observer/control plane (`mfgcp-ctl`) attaches to a running
//! [`Simulation`](crate::Simulation) through the [`EngineControl`] trait:
//! at every slot boundary the engine hands the controller a fresh
//! [`SimSnapshot`] of the population state *as of the end of the previous
//! slot*, and the controller decides when the engine may proceed (pause /
//! step / resume gating). The contract is strictly one-directional —
//! the controller observes state and gates *when* the next slot runs,
//! but nothing it does can change *what* any slot computes, so an
//! observed, paused, stepped, or forked run stays bit-identical to a
//! free run.
//!
//! Snapshot construction reads engine state only (occupancy column,
//! previous slot's Eq. (5) pricer, audit counters, cached shard gauges)
//! and allocates a handful of small vectors; with no controller attached
//! the engine skips it entirely.

use mfgcp_check::AuditStatus;
use mfgcp_net::ShardStats;

use crate::metrics::SlotMetrics;

/// Bin count used for the occupancy and price histograms.
pub const SNAPSHOT_BINS: usize = 16;

/// A fixed-width histogram over `[lo, hi]` with [`SNAPSHOT_BINS`] bins
/// (degenerate ranges collapse every sample into bin 0).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin (the sample minimum).
    pub lo: f64,
    /// Upper edge of the last bin (the sample maximum).
    pub hi: f64,
    /// Per-bin sample counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Bin `values` into [`SNAPSHOT_BINS`] equal-width bins spanning the
    /// sample range. Returns `None` when `values` is empty or contains a
    /// non-finite sample (a snapshot must never carry NaN edges).
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; SNAPSHOT_BINS];
        let width = (hi - lo) / SNAPSHOT_BINS as f64;
        for &v in values {
            let bin = if width > 0.0 {
                (((v - lo) / width) as usize).min(SNAPSHOT_BINS - 1)
            } else {
                0
            };
            counts[bin] += 1;
        }
        Some(Self { lo, hi, counts })
    }

    /// Total number of binned samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A point-in-time view of a running simulation, published at every slot
/// boundary (and once more with [`finished`](Self::finished) set after
/// the final slot). All state is *as of the end of the previous slot*;
/// `global_slot` counts completed slots, i.e. it is the index of the
/// next slot to run.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    /// Scheme name (from the policy).
    pub scheme: String,
    /// Epoch of the next slot to run (equals `epochs` once finished).
    pub epoch: usize,
    /// Slot-within-epoch of the next slot to run.
    pub slot: usize,
    /// Completed slots so far = index of the next slot to run.
    pub global_slot: u64,
    /// Total slots the run will execute (`epochs * slots_per_epoch`).
    pub total_slots: u64,
    /// Simulated time of the next slot's start.
    pub t: f64,
    /// True only for the final publication after the last slot.
    pub finished: bool,
    /// Population size `M`.
    pub num_edps: usize,
    /// Requester population `J`.
    pub num_requesters: usize,
    /// Catalog size `K`.
    pub num_contents: usize,
    /// Per-EDP remaining space for content 0 (the tracked content).
    pub occupancy: Vec<f64>,
    /// Histogram of [`occupancy`](Self::occupancy).
    pub occupancy_hist: Option<Histogram>,
    /// Histogram of the Eq. (5) per-EDP prices for content 0 from the
    /// previous slot's cleared market (`None` before the first slot).
    pub price_hist: Option<Histogram>,
    /// The previous slot's population aggregates (`None` before the
    /// first slot).
    pub last_slot: Option<SlotMetrics>,
    /// Cumulative conservation-audit counters (`None` when auditing is
    /// off).
    pub audit: Option<AuditStatus>,
    /// Channel shard gauges sampled at the current epoch's start
    /// (`None` under the dense channel representation).
    pub net: Option<ShardStats>,
}

impl SimSnapshot {
    /// Fraction of the run completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_slots == 0 {
            1.0
        } else {
            self.global_slot as f64 / self.total_slots as f64
        }
    }
}

/// The engine-side control hook. The simulation calls
/// [`at_slot_boundary`](Self::at_slot_boundary) before every slot (and
/// once more with `finished = true` after the last); the implementation
/// may block to pause the run. Blocking is the *only* permitted
/// influence: implementations must not mutate anything the engine
/// reads, so gated runs remain bit-identical to free runs.
pub trait EngineControl: Send + Sync {
    /// Called with the freshly built snapshot before each slot executes.
    /// Blocking here pauses the engine between slots.
    fn at_slot_boundary(&self, snapshot: SimSnapshot);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_span_the_range() {
        let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let h = Histogram::from_values(&values).unwrap();
        assert_eq!(h.lo, 0.0);
        assert_eq!(h.hi, 63.0);
        assert_eq!(h.counts.len(), SNAPSHOT_BINS);
        assert_eq!(h.total(), 64);
        // Uniform samples spread evenly: 4 per bin.
        assert!(h.counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn histogram_handles_degenerate_and_empty_input() {
        assert!(Histogram::from_values(&[]).is_none());
        assert!(Histogram::from_values(&[1.0, f64::NAN]).is_none());
        let h = Histogram::from_values(&[2.5, 2.5, 2.5]).unwrap();
        assert_eq!(h.lo, h.hi);
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn progress_is_a_fraction() {
        let snap = SimSnapshot {
            scheme: "RR".into(),
            epoch: 0,
            slot: 5,
            global_slot: 5,
            total_slots: 20,
            t: 0.5,
            finished: false,
            num_edps: 4,
            num_requesters: 16,
            num_contents: 2,
            occupancy: vec![0.0; 4],
            occupancy_hist: None,
            price_hist: None,
            last_slot: None,
            audit: None,
            net: None,
        };
        assert!((snap.progress() - 0.25).abs() < 1e-12);
    }
}
