//! The placement-policy abstraction shared by MFG-CP and the baselines.

use mfgcp_core::{ContentContext, Equilibrium};
use mfgcp_obs::RecorderHandle;
use mfgcp_sde::SimRng;

/// Everything a policy may look at when choosing a caching rate — the
/// EDP's *local* information (the incomplete-information premise of the
/// game: no other EDP's strategy or state appears here; population-level
/// facts arrive only through the policy's own mean-field estimate or, for
/// the overlap-aware UDCS baseline, the center-published neighborhood
/// occupancy).
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext {
    /// Index of the deciding EDP.
    pub edp: usize,
    /// Content being decided.
    pub content: usize,
    /// Time within the current epoch, `[0, T)`.
    pub t_in_epoch: f64,
    /// Own remaining space for this content.
    pub q: f64,
    /// This content's size `Q_k` (content units).
    pub q_size: f64,
    /// Current fading coefficient towards the served requesters (mean).
    pub h: f64,
    /// Current local popularity estimate `Π_k(t)`.
    pub popularity: f64,
    /// Current urgency factor `ξ^{L_k(t)}`.
    pub urgency_factor: f64,
    /// Popularity rank of this content at this EDP (0 = most popular).
    pub rank: usize,
    /// Number of contents in the catalog.
    pub num_contents: usize,
    /// Fraction of neighboring EDPs that already hold this content
    /// (published by the center; used by the overlap-aware UDCS baseline).
    pub neighbor_cached_fraction: f64,
}

/// A content-placement policy: produces the caching rate `x ∈ [0, 1]`.
///
/// Implementations must be `Send + Sync` so per-EDP decision loops can
/// run in parallel against a shared policy. A policy is *shared* across EDPs within a run (symmetric
/// strategies, as in the MFG); per-EDP randomness comes from the per-EDP
/// RNG stream passed to [`CachingPolicy::decide`].
pub trait CachingPolicy: Send + Sync {
    /// Scheme name as used in the paper's figures ("MFG-CP", "RR", …).
    fn name(&self) -> &'static str;

    /// Whether this scheme participates in paid peer sharing (the "MFG"
    /// baseline and UDCS/RR/MPC do not).
    fn allows_sharing(&self) -> bool {
        true
    }

    /// Attach a telemetry recorder. Policies that run a solver (MFG-CP)
    /// propagate it so their per-epoch solves emit `solver.*` and `pde.*`
    /// events; the stateless baselines ignore it (default). Recording
    /// never changes decisions — runs stay bit-identical either way.
    fn set_recorder(&mut self, recorder: RecorderHandle) {
        let _ = recorder;
    }

    /// Called once per optimization epoch with the per-content workload
    /// contexts (popularity, urgency, expected requests) so policies that
    /// precompute — MFG-CP solves its mean-field equilibria here — can do
    /// so. Default: no preparation.
    fn prepare_epoch(&mut self, contexts: &[ContentContext]) {
        let _ = contexts;
    }

    /// The mean-field equilibria the last [`CachingPolicy::prepare_epoch`]
    /// produced, as `(content, equilibrium)` pairs — what the
    /// `mfgcp-check` auditor gates for FPK mass drift and policy range
    /// (invariant I4). Baselines that solve nothing return nothing
    /// (default); MFG-CP returns one entry per successfully solved
    /// content.
    fn prepared_equilibria(&self) -> Vec<(usize, &Equilibrium)> {
        Vec::new()
    }

    /// The caching rate for one (EDP, content) pair at one slot.
    ///
    /// Takes `&self` so the per-EDP decision loop can run in parallel;
    /// per-decision randomness comes from the caller's per-EDP RNG.
    fn decide(&self, ctx: &DecisionContext, rng: &mut SimRng) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    struct Constant(f64);
    impl CachingPolicy for Constant {
        fn name(&self) -> &'static str {
            "CONST"
        }
        fn decide(&self, _ctx: &DecisionContext, _rng: &mut SimRng) -> f64 {
            self.0
        }
    }

    fn ctx() -> DecisionContext {
        DecisionContext {
            edp: 0,
            content: 0,
            t_in_epoch: 0.0,
            q: 0.5,
            q_size: 1.0,
            h: 5.0e-5,
            popularity: 0.3,
            urgency_factor: 0.1,
            rank: 0,
            num_contents: 4,
            neighbor_cached_fraction: 0.0,
        }
    }

    #[test]
    fn trait_object_dispatch_works() {
        let mut p: Box<dyn CachingPolicy> = Box::new(Constant(0.7));
        let mut rng = seeded_rng(1);
        assert_eq!(p.decide(&ctx(), &mut rng), 0.7);
        assert_eq!(p.name(), "CONST");
        assert!(p.allows_sharing());
        p.prepare_epoch(&[]);
    }
}
