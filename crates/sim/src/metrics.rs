//! Per-EDP and per-slot metric accumulation.

/// Accumulated economic outcome for one EDP over a run (all terms of
/// Eq. (10), integrated over time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdpMetrics {
    /// Trading income `∫Φ¹ dt`.
    pub trading_income: f64,
    /// Sharing benefit `∫Φ² dt` (earned as a seller of cached data).
    pub sharing_benefit: f64,
    /// Placement cost `∫C¹ dt`.
    pub placement_cost: f64,
    /// Staleness cost `∫C² dt`.
    pub staleness_cost: f64,
    /// Sharing cost `∫C³ dt` (paid as a buyer of peer data).
    pub sharing_cost: f64,
    /// Number of requests served.
    pub requests_served: u64,
    /// Case tallies: (case 1, case 2, case 3).
    pub case_counts: (u64, u64, u64),
}

impl EdpMetrics {
    /// Net utility (Eq. (10) accumulated).
    pub fn utility(&self) -> f64 {
        self.trading_income + self.sharing_benefit
            - self.placement_cost
            - self.staleness_cost
            - self.sharing_cost
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &EdpMetrics) {
        self.trading_income += other.trading_income;
        self.sharing_benefit += other.sharing_benefit;
        self.placement_cost += other.placement_cost;
        self.staleness_cost += other.staleness_cost;
        self.sharing_cost += other.sharing_cost;
        self.requests_served += other.requests_served;
        self.case_counts.0 += other.case_counts.0;
        self.case_counts.1 += other.case_counts.1;
        self.case_counts.2 += other.case_counts.2;
    }
}

/// Population aggregates sampled once per slot (time series for the
/// evolution figures).
///
/// The `mean_remaining_space`, `mean_caching_rate` and `mean_price`
/// state/price columns track **content `k = 0` only** — the paper's
/// evolution figures (Figs. 4–7, 11) follow a single tagged content, and
/// `k = 0` is the most popular one under the Zipf initial ranking. The
/// `slot_*` flow columns aggregate over the whole catalog and are
/// **Eq. (10)-complete**: every flow the per-EDP accumulators see lands in
/// exactly one slot, so `Σ_slots slot_utility · M = Σ_i utility_i` (and
/// likewise per term) up to floating-point reassociation — the
/// `mfgcp-check` auditor enforces this as invariant I3. In particular
/// `slot_utility` includes the rate-type costs accrued in the parallel
/// EDP phase (Eq. (8) placement and the Eq. (9) center-download term),
/// not just the market-clearing outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotMetrics {
    /// Slot start time within the run.
    pub t: f64,
    /// Population-mean remaining space of content 0 (the tracked content).
    pub mean_remaining_space: f64,
    /// Population-mean caching rate of content 0 (the tracked content).
    pub mean_caching_rate: f64,
    /// Mean Eq. (5) trading price of content 0 across *all* EDPs (idle
    /// requesters included).
    pub mean_price: f64,
    /// Population-mean utility accumulated in this slot (all Eq. (10)
    /// terms: trading income + sharing benefit − placement − staleness −
    /// sharing cost).
    pub slot_utility: f64,
    /// Population-mean trading income accumulated in this slot.
    pub slot_trading_income: f64,
    /// Population-mean sharing benefit accumulated in this slot.
    pub slot_sharing_benefit: f64,
    /// Population-mean staleness cost accumulated in this slot (both
    /// Eq. (9) terms: the center-download rate cost from the parallel
    /// phase and the per-request delay cost from trade resolution).
    pub slot_staleness_cost: f64,
    /// Population-mean Eq. (8) placement cost accrued in this slot.
    pub slot_placement_cost: f64,
    /// Population-mean sharing cost (fees paid to peers) in this slot.
    /// Mirrors `slot_sharing_benefit` exactly — the market neither mints
    /// nor burns money (invariant I1).
    pub slot_sharing_cost: f64,
}

/// Mean of per-EDP utilities.
pub fn mean_utility(metrics: &[EdpMetrics]) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    metrics.iter().map(EdpMetrics::utility).sum::<f64>() / metrics.len() as f64
}

/// Mean of per-EDP trading incomes.
pub fn mean_trading_income(metrics: &[EdpMetrics]) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    metrics.iter().map(|m| m.trading_income).sum::<f64>() / metrics.len() as f64
}

/// Mean of per-EDP staleness costs.
pub fn mean_staleness_cost(metrics: &[EdpMetrics]) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    metrics.iter().map(|m| m.staleness_cost).sum::<f64>() / metrics.len() as f64
}

/// Mean of per-EDP sharing benefits.
pub fn mean_sharing_benefit(metrics: &[EdpMetrics]) -> f64 {
    if metrics.is_empty() {
        return 0.0;
    }
    metrics.iter().map(|m| m.sharing_benefit).sum::<f64>() / metrics.len() as f64
}

/// Standard deviation of per-EDP utilities (population spread — the
/// mean-field prediction is a deterministic value plus idiosyncratic
/// noise, so the spread should stay modest relative to the mean).
pub fn std_utility(metrics: &[EdpMetrics]) -> f64 {
    if metrics.len() < 2 {
        return 0.0;
    }
    let mean = mean_utility(metrics);
    let var = metrics
        .iter()
        .map(|m| {
            let d = m.utility() - mean;
            d * d
        })
        .sum::<f64>()
        / (metrics.len() - 1) as f64;
    var.sqrt()
}

/// Gini coefficient of the per-EDP utilities — a fairness summary of the
/// market outcome. The mean-field prediction is a symmetric equilibrium,
/// so a well-functioning market should show low inequality; 0 = perfectly
/// equal, → 1 = one EDP captures everything. Utilities are shifted to be
/// non-negative before the computation (the Gini coefficient is defined
/// for non-negative quantities).
pub fn gini_utility(metrics: &[EdpMetrics]) -> f64 {
    if metrics.len() < 2 {
        return 0.0;
    }
    let mut xs: Vec<f64> = metrics.iter().map(EdpMetrics::utility).collect();
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    if min < 0.0 {
        for x in &mut xs {
            *x -= min;
        }
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("utilities are finite"));
    let n = xs.len() as f64;
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n with 1-based ranks.
    let weighted: f64 = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_is_income_minus_costs() {
        let m = EdpMetrics {
            trading_income: 10.0,
            sharing_benefit: 2.0,
            placement_cost: 3.0,
            staleness_cost: 1.5,
            sharing_cost: 0.5,
            requests_served: 7,
            case_counts: (5, 1, 1),
        };
        assert!((m.utility() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EdpMetrics {
            trading_income: 1.0,
            case_counts: (1, 0, 0),
            ..Default::default()
        };
        let b = EdpMetrics {
            trading_income: 2.0,
            requests_served: 3,
            case_counts: (0, 2, 1),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.trading_income, 3.0);
        assert_eq!(a.requests_served, 3);
        assert_eq!(a.case_counts, (1, 2, 1));
    }

    #[test]
    fn aggregates_handle_empty_slices() {
        assert_eq!(mean_utility(&[]), 0.0);
        assert_eq!(mean_trading_income(&[]), 0.0);
        assert_eq!(mean_staleness_cost(&[]), 0.0);
        assert_eq!(mean_sharing_benefit(&[]), 0.0);
    }

    #[test]
    fn std_utility_basics() {
        assert_eq!(std_utility(&[]), 0.0);
        let equal = vec![
            EdpMetrics {
                trading_income: 5.0,
                ..Default::default()
            };
            4
        ];
        assert_eq!(std_utility(&equal), 0.0);
        let spread = vec![
            EdpMetrics {
                trading_income: 4.0,
                ..Default::default()
            },
            EdpMetrics {
                trading_income: 6.0,
                ..Default::default()
            },
        ];
        // Sample std dev of {4, 6} = √2.
        assert!((std_utility(&spread) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gini_of_equal_utilities_is_zero() {
        let ms = vec![
            EdpMetrics {
                trading_income: 5.0,
                ..Default::default()
            };
            10
        ];
        assert!(gini_utility(&ms) < 1e-12);
        assert_eq!(gini_utility(&[]), 0.0);
        assert_eq!(gini_utility(&ms[..1]), 0.0);
    }

    #[test]
    fn gini_detects_concentration() {
        // One EDP takes everything.
        let mut ms = vec![EdpMetrics::default(); 10];
        ms[0].trading_income = 100.0;
        let g = gini_utility(&ms);
        assert!(g > 0.85, "gini {g}");
        // A mild spread sits in between.
        let spread: Vec<EdpMetrics> = (0..10)
            .map(|i| EdpMetrics {
                trading_income: 10.0 + i as f64,
                ..Default::default()
            })
            .collect();
        let gs = gini_utility(&spread);
        assert!(gs > 0.0 && gs < g);
    }

    #[test]
    fn gini_handles_negative_utilities() {
        let ms = vec![
            EdpMetrics {
                staleness_cost: 5.0,
                ..Default::default()
            }, // utility -5
            EdpMetrics {
                trading_income: 5.0,
                ..Default::default()
            }, // utility +5
        ];
        let g = gini_utility(&ms);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn aggregates_average_across_edps() {
        let ms = vec![
            EdpMetrics {
                trading_income: 4.0,
                ..Default::default()
            },
            EdpMetrics {
                trading_income: 6.0,
                ..Default::default()
            },
        ];
        assert_eq!(mean_trading_income(&ms), 5.0);
        assert_eq!(mean_utility(&ms), 5.0);
    }
}
