//! Finite-population MEC market simulator for the MFG-CP reproduction.
//!
//! The mean-field solver in `mfgcp-core` reasons about a *generic* EDP
//! against the population distribution. This crate closes the loop with an
//! explicit finite population: `M` EDP agents placed in a disc, `J`
//! requesters associated to their nearest EDP, per-link OU channel fading,
//! trace-driven requests, per-slot trading under the finite-population
//! price of Eq. (5), and paid peer sharing with center-assigned matching
//! (Alg. 1 lines 11–14).
//!
//! The [`CachingPolicy`] trait abstracts the placement decision, with five
//! implementations matching §V-A:
//!
//! * [`baselines::MfgCpPolicy`] — the paper's MFG-CP (Alg. 1 + Alg. 2);
//! * [`baselines::MfgCpPolicy::without_sharing`] — "MFG" \[27\]: MFG-CP without peer
//!   sharing;
//! * [`baselines::RandomReplacement`] — "RR": uniform random caching rates;
//! * [`baselines::MostPopularCaching`] — "MPC" \[18\]: cache the currently
//!   most popular contents at full rate;
//! * [`baselines::Udcs`] — "UDCS" \[28\]: popularity-driven, overlap- and
//!   interference-aware cost minimization, no pricing/sharing.
//!
//! Per-EDP decision and state-integration loops run in parallel (matching
//! "for each EDP in parallel" of Alg. 1 line 2) with deterministic
//! per-EDP RNG streams, so results are reproducible regardless of the
//! thread count.
//!
//! Setting [`SimConfig::audit`] (or `mfgcp simulate --audit`) runs the
//! `mfgcp-check` conservation auditor alongside the simulation: money
//! conservation in the sharing market, case-tally consistency, FPK mass
//! gating of every prepared equilibrium, and the end-of-run Eq. (10)
//! reconciliation of the slot series against the per-EDP accumulators.
//! The report lands in [`SimReport::audit`].
//!
//! # Example
//!
//! ```
//! use mfgcp_sim::{baselines::RandomReplacement, SimConfig, Simulation};
//!
//! let mut sim = Simulation::new(SimConfig::small(), Box::new(RandomReplacement)).unwrap();
//! let report = sim.run();
//! assert_eq!(report.scheme, "RR");
//! assert!(report.mean_trading_income() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
mod config;
mod edp;
mod engine;
mod market;
mod metrics;
mod policy;
mod snapshot;
pub mod timing;

pub use config::SimConfig;
pub use edp::Edp;
pub use engine::{SimReport, Simulation};
pub use market::{resolve_trade, MarketOutcome, TradeCase};
pub use metrics::{EdpMetrics, SlotMetrics};
pub use policy::{CachingPolicy, DecisionContext};
pub use snapshot::{EngineControl, Histogram, SimSnapshot, SNAPSHOT_BINS};

/// Errors from simulator construction.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Invalid simulator configuration.
    BadConfig {
        /// Name of the offending field.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
    /// An error bubbled up from the core solver.
    Core(mfgcp_core::CoreError),
    /// An error bubbled up from the workload layer.
    Workload(mfgcp_workload::WorkloadError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::BadConfig { name, message } => {
                write!(f, "invalid simulator config `{name}`: {message}")
            }
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<mfgcp_core::CoreError> for SimError {
    fn from(e: mfgcp_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<mfgcp_workload::WorkloadError> for SimError {
    fn from(e: mfgcp_workload::WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = SimError::BadConfig {
            name: "num_edps",
            message: "must be > 0".into(),
        };
        assert!(e.to_string().contains("num_edps"));
        let e = SimError::Workload(mfgcp_workload::WorkloadError::EmptyCatalog);
        assert!(e.to_string().contains("workload"));
    }
}
