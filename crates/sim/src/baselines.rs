//! The five placement schemes of §V-A: MFG-CP and the four baselines.
//!
//! Existing comparator code is closed-source; RR, MPC \[18\], MFG \[27\]
//! and UDCS \[28\] are re-implemented here from the paper's descriptions
//! ("the RR policy adopts random caching decisions; the MPC method only
//! caches currently most popular contents; the MFG scheme is a downgraded
//! version of MFG-CP, in which the content sharing is not considered; and
//! the UDCS approach takes into account the content overlap and
//! interference, without considering the pricing issue and content
//! sharing").

use rand::RngExt as _;

use mfgcp_core::{ContentContext, Equilibrium, MfgSolver, Params};
use mfgcp_obs::RecorderHandle;
use mfgcp_sde::SimRng;

use crate::policy::{CachingPolicy, DecisionContext};
use crate::SimError;

/// MFG-CP (Alg. 1 + Alg. 2): at each epoch, solve one mean-field
/// equilibrium per demanded content; every EDP then reads its caching rate
/// off the shared equilibrium policy surface at its own local state —
/// no inter-EDP communication, exactly the paper's decentralization claim.
pub struct MfgCpPolicy {
    solver: MfgSolver,
    equilibria: Vec<Option<Equilibrium>>,
    /// Per-content sizes; empty = uniform at the solver's `q_size`.
    content_sizes: Vec<f64>,
    sharing: bool,
    name: &'static str,
    /// Kept alongside the solver so the heterogeneous-size path (which
    /// builds a dedicated solver per odd-sized content) inherits it too.
    recorder: RecorderHandle,
}

impl MfgCpPolicy {
    /// Full MFG-CP with paid peer sharing.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn new(params: Params) -> Result<Self, SimError> {
        Ok(Self {
            solver: MfgSolver::new(params)?,
            equilibria: Vec::new(),
            content_sizes: Vec::new(),
            sharing: true,
            name: "MFG-CP",
            recorder: RecorderHandle::noop(),
        })
    }

    /// The "MFG" baseline \[27\]: identical machinery with content sharing
    /// disabled (no sharing benefit, no peer purchases — case 2 degrades
    /// to case 3 in the market).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn without_sharing(params: Params) -> Result<Self, SimError> {
        let no_share = Params {
            p_bar: 0.0,
            ..params
        };
        Ok(Self {
            solver: MfgSolver::new(no_share)?,
            equilibria: Vec::new(),
            content_sizes: Vec::new(),
            sharing: false,
            name: "MFG",
            recorder: RecorderHandle::noop(),
        })
    }

    /// Use heterogeneous per-content sizes: content `k` is solved at
    /// `Q_k = sizes[k]` (its own state range, threshold and economics).
    #[must_use]
    pub fn with_content_sizes(mut self, sizes: Vec<f64>) -> Self {
        self.content_sizes = sizes;
        self
    }

    /// The equilibrium for `content`, if one was computed this epoch.
    pub fn equilibrium(&self, content: usize) -> Option<&Equilibrium> {
        self.equilibria.get(content).and_then(Option::as_ref)
    }
}

impl CachingPolicy for MfgCpPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn allows_sharing(&self) -> bool {
        self.sharing
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.solver.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    fn prepare_epoch(&mut self, contexts: &[ContentContext]) {
        // One equilibrium per demanded content (the K' filter of Alg. 1
        // line 5); complexity independent of M (Table II).
        self.equilibria = contexts
            .iter()
            .enumerate()
            .map(|(k, ctx)| {
                if ctx.requests <= 0.0 {
                    return None;
                }
                let per_step = vec![*ctx; self.solver.params().time_steps];
                match self.content_sizes.get(k) {
                    Some(&size) if size != self.solver.params().q_size => {
                        // Heterogeneous catalog: a dedicated solve at this
                        // content's own size.
                        let params = Params {
                            q_size: size,
                            ..self.solver.params().clone()
                        };
                        MfgSolver::new(params)
                            .ok()
                            .map(|solver| solver.with_recorder(self.recorder.clone()))
                            .map(|solver| solver.solve_with(&per_step, None))
                    }
                    _ => Some(self.solver.solve_with(&per_step, None)),
                }
            })
            .collect();
    }

    fn prepared_equilibria(&self) -> Vec<(usize, &Equilibrium)> {
        self.equilibria
            .iter()
            .enumerate()
            .filter_map(|(k, eq)| eq.as_ref().map(|e| (k, e)))
            .collect()
    }

    fn decide(&self, ctx: &DecisionContext, _rng: &mut SimRng) -> f64 {
        match self.equilibria.get(ctx.content).and_then(Option::as_ref) {
            Some(eq) => eq.policy_at(ctx.t_in_epoch, ctx.h, ctx.q),
            None => 0.0,
        }
    }
}

/// "RR": a uniform random caching rate per decision. The paper notes its
/// cost grows with `M` ("the RR scheme requires M iterations of random
/// number generation operations").
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomReplacement;

impl CachingPolicy for RandomReplacement {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn allows_sharing(&self) -> bool {
        false
    }

    fn decide(&self, _ctx: &DecisionContext, rng: &mut SimRng) -> f64 {
        rng.random_range(0.0..=1.0)
    }
}

/// "MPC" \[18\]: cache the currently most popular contents at full rate,
/// nothing else. `top_k` controls how many of the popularity ranks are
/// cached (storage budget).
#[derive(Debug, Clone, Copy)]
pub struct MostPopularCaching {
    /// How many top-ranked contents are cached at full rate.
    pub top_k: usize,
}

impl Default for MostPopularCaching {
    fn default() -> Self {
        Self { top_k: 4 }
    }
}

impl CachingPolicy for MostPopularCaching {
    fn name(&self) -> &'static str {
        "MPC"
    }

    fn allows_sharing(&self) -> bool {
        false
    }

    fn decide(&self, ctx: &DecisionContext, _rng: &mut SimRng) -> f64 {
        if ctx.rank < self.top_k {
            1.0
        } else {
            0.0
        }
    }
}

/// "UDCS" \[28\]: long-run average-cost minimization aware of content
/// overlap and aggregate interference, with no pricing and no sharing.
///
/// Re-implemented from the description: the caching rate follows local
/// popularity, discounted by (a) the fraction of neighboring EDPs already
/// holding the content (overlap avoidance) and (b) poor channel conditions
/// (interference awareness — serving over a bad channel is costly, so the
/// content is less valuable to cache).
#[derive(Debug, Clone, Copy)]
pub struct Udcs {
    /// Popularity-to-rate gain.
    pub gain: f64,
    /// Strength of the overlap discount in `[0, 1]`.
    pub overlap_discount: f64,
    /// Fading coefficient at which the channel factor reaches 1.
    pub h_ref: f64,
}

impl Default for Udcs {
    fn default() -> Self {
        Self {
            gain: 3.0,
            overlap_discount: 0.8,
            h_ref: 10.0e-5,
        }
    }
}

impl CachingPolicy for Udcs {
    fn name(&self) -> &'static str {
        "UDCS"
    }

    fn allows_sharing(&self) -> bool {
        false
    }

    fn decide(&self, ctx: &DecisionContext, _rng: &mut SimRng) -> f64 {
        let overlap = 1.0 - self.overlap_discount * ctx.neighbor_cached_fraction;
        let channel = (ctx.h / self.h_ref).clamp(0.0, 1.0);
        (self.gain * ctx.popularity * overlap * channel).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    fn ctx(rank: usize, q: f64) -> DecisionContext {
        DecisionContext {
            edp: 0,
            content: 0,
            t_in_epoch: 0.1,
            q,
            q_size: 1.0,
            h: 5.0e-5,
            popularity: 0.3,
            urgency_factor: 0.1,
            rank,
            num_contents: 4,
            neighbor_cached_fraction: 0.0,
        }
    }

    fn small_params() -> Params {
        Params {
            time_steps: 12,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        }
    }

    #[test]
    fn rr_is_uniform_in_unit_interval() {
        let rr = RandomReplacement;
        let mut rng = seeded_rng(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rr.decide(&ctx(0, 0.5), &mut rng);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        assert!(!rr.allows_sharing());
    }

    #[test]
    fn mpc_caches_only_top_ranks() {
        let mpc = MostPopularCaching { top_k: 2 };
        let mut rng = seeded_rng(3);
        assert_eq!(mpc.decide(&ctx(0, 0.5), &mut rng), 1.0);
        assert_eq!(mpc.decide(&ctx(1, 0.5), &mut rng), 1.0);
        assert_eq!(mpc.decide(&ctx(2, 0.5), &mut rng), 0.0);
        assert_eq!(mpc.name(), "MPC");
    }

    #[test]
    fn udcs_discounts_overlap_and_bad_channels() {
        let udcs = Udcs::default();
        let mut rng = seeded_rng(4);
        let free = udcs.decide(&ctx(0, 0.5), &mut rng);
        let crowded = udcs.decide(
            &DecisionContext {
                neighbor_cached_fraction: 1.0,
                ..ctx(0, 0.5)
            },
            &mut rng,
        );
        assert!(crowded < free);
        let weak = udcs.decide(
            &DecisionContext {
                h: 1.0e-5,
                ..ctx(0, 0.5)
            },
            &mut rng,
        );
        assert!(weak < free);
    }

    #[test]
    fn mfgcp_policy_prepares_and_decides() {
        let mut p = MfgCpPolicy::new(small_params()).unwrap();
        assert_eq!(p.name(), "MFG-CP");
        assert!(p.allows_sharing());
        let contexts = vec![
            ContentContext {
                requests: 10.0,
                popularity: 0.4,
                urgency_factor: 0.05,
            },
            ContentContext {
                requests: 0.0,
                popularity: 0.1,
                urgency_factor: 0.05,
            },
        ];
        p.prepare_epoch(&contexts);
        assert!(p.equilibrium(0).is_some());
        assert!(p.equilibrium(1).is_none());
        let mut rng = seeded_rng(5);
        let x = p.decide(&ctx(0, 0.6), &mut rng);
        assert!((0.0..=1.0).contains(&x));
        // Undemanded content → no caching.
        let x1 = p.decide(
            &DecisionContext {
                content: 1,
                ..ctx(0, 0.6)
            },
            &mut rng,
        );
        assert_eq!(x1, 0.0);
    }

    #[test]
    fn mfg_without_sharing_has_the_right_flags() {
        let p = MfgCpPolicy::without_sharing(small_params()).unwrap();
        assert_eq!(p.name(), "MFG");
        assert!(!p.allows_sharing());
        assert_eq!(p.solver.params().p_bar, 0.0);
    }
}
