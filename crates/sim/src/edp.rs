//! The per-EDP agent state.

use mfgcp_sde::{seeded_rng, SimRng};
use mfgcp_workload::{Popularity, Timeliness, TimelinessConfig, WorkloadError};

use crate::metrics::EdpMetrics;

/// One Edge Data Provider agent: per-content caching state, local
/// popularity/timeliness estimates, its own RNG stream, and accumulated
/// metrics.
#[derive(Debug)]
pub struct Edp {
    /// EDP index.
    pub id: usize,
    /// Remaining space `q_{i,k}` per content (storage units).
    pub q: Vec<f64>,
    /// Current caching rates `x_{i,k}` (decision of the last slot).
    pub x: Vec<f64>,
    /// Local popularity tracker (Def. 1 + Eq. (3)).
    pub popularity: Popularity,
    /// Local timeliness tracker (Def. 2).
    pub timeliness: Timeliness,
    /// Per-EDP deterministic RNG stream.
    pub rng: SimRng,
    /// Accumulated economics.
    pub metrics: EdpMetrics,
}

impl Edp {
    /// Create an EDP with all contents at initial remaining space `q0`.
    ///
    /// The RNG stream is derived from `(master_seed, id)` so simulations
    /// are reproducible independent of scheduling order.
    ///
    /// # Errors
    ///
    /// Propagates workload construction failures.
    pub fn new(
        id: usize,
        num_contents: usize,
        q0: f64,
        zipf_iota: f64,
        timeliness: TimelinessConfig,
        master_seed: u64,
    ) -> Result<Self, WorkloadError> {
        Ok(Self {
            id,
            q: vec![q0; num_contents],
            x: vec![0.0; num_contents],
            popularity: Popularity::zipf(num_contents, zipf_iota)?,
            timeliness: Timeliness::new(num_contents, timeliness),
            rng: seeded_rng(
                master_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id as u64),
            ),
            metrics: EdpMetrics::default(),
        })
    }

    /// Whether this EDP holds enough of `content` to share it
    /// (`q ≤ α·Q_k`).
    pub fn can_share(&self, content: usize, alpha_qk: f64) -> bool {
        self.q[content] <= alpha_qk
    }

    /// Popularity rank of `content` at this EDP (0 = most popular).
    pub fn rank_of(&self, content: usize) -> usize {
        self.popularity
            .ranked()
            .iter()
            .position(|&k| k == content)
            .expect("content is in the catalog")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edp(id: usize) -> Edp {
        Edp::new(id, 4, 0.7, 0.8, TimelinessConfig::default(), 42).unwrap()
    }

    #[test]
    fn construction_initializes_state() {
        let e = edp(3);
        assert_eq!(e.id, 3);
        assert_eq!(e.q, vec![0.7; 4]);
        assert_eq!(e.x, vec![0.0; 4]);
        assert_eq!(e.metrics, EdpMetrics::default());
    }

    #[test]
    fn rng_streams_differ_per_edp_but_are_reproducible() {
        use rand::RngExt as _;
        let mut a1 = edp(1);
        let mut a2 = edp(1);
        let mut b = edp(2);
        let x1: u64 = a1.rng.random();
        let x2: u64 = a2.rng.random();
        let y: u64 = b.rng.random();
        assert_eq!(x1, x2, "same id → same stream");
        assert_ne!(x1, y, "different id → different stream");
    }

    #[test]
    fn sharing_qualification_threshold() {
        let mut e = edp(0);
        e.q[1] = 0.1;
        assert!(e.can_share(1, 0.2));
        assert!(!e.can_share(0, 0.2)); // q = 0.7
    }

    #[test]
    fn rank_follows_popularity() {
        let mut e = edp(0);
        // Zipf prior: content 0 is most popular.
        assert_eq!(e.rank_of(0), 0);
        // Flood content 3 with requests.
        e.popularity.update(&[0, 0, 0, 50]);
        assert_eq!(e.rank_of(3), 0);
    }
}
