//! Computation-time measurement for Table II.
//!
//! The paper's Table II compares the per-epoch *policy computation* time of
//! MFG-CP, RR and MPC as the population grows (`M ∈ {50, 100, 200, 300}`):
//! MFG-CP stays flat because it solves one mean-field problem per content
//! regardless of `M`, while RR and MPC loop over all `M` EDPs ("the RR
//! scheme requires M iterations of random number generation operations").
//! These helpers time exactly that phase in isolation.

use std::time::{Duration, Instant};

use mfgcp_core::{ContentContext, MfgSolver, Params, SolveMethod};
use mfgcp_sde::{seeded_rng, SimRng};
use mfgcp_workload::Popularity;
use rand::RngExt as _;

/// Time MFG-CP's per-epoch policy computation for a population of `m`:
/// one Alg. 2 solve (per tracked content) — independent of `m` by design.
///
/// The solver, contexts, initial density and solve workspace are all built
/// (and warmed with one untimed solve) before the timer starts, so the
/// measurement covers the Picard iteration itself rather than trajectory
/// allocation.
///
/// # Panics
///
/// Panics if `params` fails validation.
pub fn time_mfgcp(params: &Params, m: usize) -> Duration {
    // Single-threaded assembly: Table II compares *algorithmic* scaling in
    // M, and a fixed thread count keeps the measurement insensitive to
    // scheduler contention (e.g. when run alongside other tests).
    let p = Params {
        num_edps: m,
        worker_threads: 1,
        ..params.clone()
    };
    let solver = MfgSolver::new(p.clone()).expect("valid params");
    let ctx = ContentContext::from_params(&p);
    let contexts = vec![ctx; p.time_steps];
    let initial = solver.initial_density();
    let mut ws = solver.workspace();
    // Warm-up: sizes every workspace buffer so the timed run is
    // allocation-free.
    let _ = solver.solve_with_workspace(
        &contexts,
        Some(&initial),
        SolveMethod::PicardRelaxation,
        &mut ws,
    );
    let start = Instant::now();
    let _report = solver.solve_with_workspace(
        &contexts,
        Some(&initial),
        SolveMethod::PicardRelaxation,
        &mut ws,
    );
    start.elapsed()
}

/// Time RR's per-epoch policy computation for `m` EDPs over `k` contents
/// and `slots` decision slots: `m·k·slots` random draws plus per-EDP state
/// bookkeeping.
pub fn time_rr(m: usize, k: usize, slots: usize) -> Duration {
    let mut rngs: Vec<SimRng> = (0..m).map(|i| seeded_rng(1000 + i as u64)).collect();
    let start = Instant::now();
    let mut sink = 0.0;
    for rng in &mut rngs {
        for _ in 0..k {
            for _ in 0..slots {
                sink += rng.random_range(0.0_f64..=1.0);
            }
        }
    }
    std::hint::black_box(sink);
    start.elapsed()
}

/// Time MPC's per-epoch policy computation for `m` EDPs: per-EDP
/// popularity refresh (Eq. (3)) and ranking over `k` contents, once per
/// decision slot.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn time_mpc(m: usize, k: usize, slots: usize) -> Duration {
    let mut pops: Vec<Popularity> = (0..m)
        .map(|_| Popularity::zipf(k, 0.8).expect("k > 0"))
        .collect();
    let mut rng = seeded_rng(7);
    let counts: Vec<usize> = (0..k).map(|_| rng.random_range(0..20)).collect();
    let start = Instant::now();
    let mut sink = 0usize;
    for pop in &mut pops {
        for _ in 0..slots {
            pop.update(&counts);
            sink += pop.ranked()[0];
        }
    }
    std::hint::black_box(sink);
    start.elapsed()
}

/// One Table II row: `(scheme, m, seconds)` for every combination asked.
pub fn table2_rows(
    params: &Params,
    populations: &[usize],
    k: usize,
    slots: usize,
) -> Vec<(String, usize, f64)> {
    let mut rows = Vec::new();
    for &m in populations {
        rows.push(("MFG-CP".to_string(), m, time_mfgcp(params, m).as_secs_f64()));
        rows.push(("RR".to_string(), m, time_rr(m, k, slots).as_secs_f64()));
        rows.push(("MPC".to_string(), m, time_mpc(m, k, slots).as_secs_f64()));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            max_iterations: 20,
            ..Params::default()
        }
    }

    #[test]
    fn mfgcp_time_is_population_independent() {
        let p = small_params();
        let t50 = time_mfgcp(&p, 50).as_secs_f64();
        let t300 = time_mfgcp(&p, 300).as_secs_f64();
        // Allow generous noise; the paper's claim is only that it does not
        // grow with M.
        assert!(t300 < t50 * 3.0 + 0.05, "t50 = {t50}, t300 = {t300}");
    }

    #[test]
    fn rr_and_mpc_scale_with_population() {
        // Use large slot counts so the loop dominates timer noise.
        let t_small = time_rr(50, 20, 2000).as_secs_f64();
        let t_large = time_rr(300, 20, 2000).as_secs_f64();
        assert!(t_large > t_small, "RR: {t_small} vs {t_large}");
        let t_small = time_mpc(50, 20, 500).as_secs_f64();
        let t_large = time_mpc(300, 20, 500).as_secs_f64();
        assert!(t_large > t_small, "MPC: {t_small} vs {t_large}");
    }

    #[test]
    fn table_rows_cover_all_schemes_and_populations() {
        let rows = table2_rows(&small_params(), &[10, 20], 5, 10);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|(_, _, secs)| *secs >= 0.0));
        assert!(rows.iter().any(|(s, m, _)| s == "MFG-CP" && *m == 10));
        assert!(rows.iter().any(|(s, m, _)| s == "MPC" && *m == 20));
    }
}
