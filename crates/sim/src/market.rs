//! Per-slot trade resolution — the concrete counterpart of the smoothed
//! case probabilities of §III-A and of Alg. 1 lines 11–14.
//!
//! Where the mean-field utility uses `P¹, P², P³` against the average peer
//! state, the simulator resolves each request batch against *actual*
//! states: the EDP serves from cache when its remaining space is below
//! `α·Q_k` (case 1), otherwise buys the gap from a center-assigned
//! qualified peer at `p̄_k` (case 2, if the scheme allows sharing and a
//! peer exists), otherwise downloads from the center (case 3).

/// Which of the three response cases a trade resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TradeCase {
    /// Case 1: served from the EDP's own cache.
    OwnCache,
    /// Case 2: gap bought from a peer EDP.
    PeerShare,
    /// Case 3: gap downloaded from the cloud center.
    CenterDownload,
}

/// The economic outcome of one (EDP, content, slot) trade batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketOutcome {
    /// Resolved case.
    pub case: TradeCase,
    /// Trading income earned from requesters (Eq. (6), realized).
    pub income: f64,
    /// Staleness cost η₂ × delivery delay (Eq. (9), per-request part).
    pub staleness_cost: f64,
    /// Sharing fee paid to the peer (case 2 only).
    pub sharing_cost: f64,
    /// The peer that earned the sharing fee, if any.
    pub peer: Option<usize>,
}

/// Resolve one batch of `requests` for a content at one EDP.
///
/// * `q_own` — the EDP's remaining space for the content;
/// * `peer` — a center-assigned qualified peer `(index, q_peer)`, already
///   filtered to `q_peer ≤ α·Q_k` (pass `None` when sharing is disabled or
///   nobody qualifies);
/// * `price` — the Eq. (5) unit price this EDP charges;
/// * `rate_edge` — EDP→requester rate (content units per epoch);
/// * `center_rate` — center→EDP rate `H_c`.
///
/// Delay accounting follows Eq. (9): case 1 transmits the cached
/// `Q_k − q`, case 2 transmits the peer-completed `Q_k − q_peer` (EDP-EDP
/// transfer time neglected, as in the paper), case 3 first pulls the
/// missing `q` from the center then transmits the whole `Q_k`.
#[allow(clippy::too_many_arguments)]
pub fn resolve_trade(
    q_size: f64,
    alpha_qk: f64,
    q_own: f64,
    peer: Option<(usize, f64)>,
    price: f64,
    requests: u64,
    rate_edge: f64,
    center_rate: f64,
    eta2: f64,
    p_bar: f64,
) -> MarketOutcome {
    debug_assert!(rate_edge > 0.0 && center_rate > 0.0);
    let r = requests as f64;
    if requests == 0 {
        return MarketOutcome {
            case: TradeCase::OwnCache,
            income: 0.0,
            staleness_cost: 0.0,
            sharing_cost: 0.0,
            peer: None,
        };
    }
    if q_own <= alpha_qk {
        // Case 1: the cached portion satisfies requesters.
        let sold = (q_size - q_own).max(0.0);
        MarketOutcome {
            case: TradeCase::OwnCache,
            income: r * price * sold,
            staleness_cost: eta2 * r * sold / rate_edge,
            sharing_cost: 0.0,
            peer: None,
        }
    } else if let Some((peer_idx, q_peer)) = peer {
        // Case 2: the peer completes the gap; pay p̄·(q_own − q_peer).
        let sold = (q_size - q_peer).max(0.0);
        MarketOutcome {
            case: TradeCase::PeerShare,
            income: r * price * sold,
            staleness_cost: eta2 * r * sold / rate_edge,
            sharing_cost: p_bar * (q_own - q_peer).max(0.0),
            peer: Some(peer_idx),
        }
    } else {
        // Case 3: fetch the missing part from the center, ship the whole
        // content to requesters.
        MarketOutcome {
            case: TradeCase::CenterDownload,
            income: r * price * q_size,
            staleness_cost: eta2 * r * (q_own / center_rate + q_size / rate_edge),
            sharing_cost: 0.0,
            peer: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QK: f64 = 1.0;
    const ALPHA_QK: f64 = 0.2;

    fn resolve(q_own: f64, peer: Option<(usize, f64)>, requests: u64) -> MarketOutcome {
        resolve_trade(QK, ALPHA_QK, q_own, peer, 4.0, requests, 5.0, 2.5, 1.0, 1.0)
    }

    #[test]
    fn zero_requests_is_a_noop() {
        let out = resolve(0.9, Some((3, 0.1)), 0);
        assert_eq!(out.income, 0.0);
        assert_eq!(out.staleness_cost, 0.0);
        assert_eq!(out.sharing_cost, 0.0);
        assert_eq!(out.peer, None);
    }

    #[test]
    fn well_stocked_edp_serves_from_cache() {
        let out = resolve(0.1, Some((3, 0.05)), 2);
        assert_eq!(out.case, TradeCase::OwnCache);
        // Sold 0.9 per request at price 4: income 2·4·0.9.
        assert!((out.income - 7.2).abs() < 1e-12);
        // Delay 2·0.9/5.
        assert!((out.staleness_cost - 0.36).abs() < 1e-12);
        assert_eq!(out.peer, None);
        assert_eq!(out.sharing_cost, 0.0);
    }

    #[test]
    fn short_edp_with_peer_shares() {
        let out = resolve(0.8, Some((7, 0.1)), 1);
        assert_eq!(out.case, TradeCase::PeerShare);
        assert_eq!(out.peer, Some(7));
        // Peer completes to 0.9 sold; fee p̄·(0.8 − 0.1).
        assert!((out.income - 3.6).abs() < 1e-12);
        assert!((out.sharing_cost - 0.7).abs() < 1e-12);
    }

    #[test]
    fn short_edp_without_peer_downloads() {
        let out = resolve(0.8, None, 1);
        assert_eq!(out.case, TradeCase::CenterDownload);
        // Sells the whole content.
        assert!((out.income - 4.0).abs() < 1e-12);
        // Delay = 0.8/2.5 + 1/5.
        assert!((out.staleness_cost - 0.52).abs() < 1e-12);
    }

    #[test]
    fn case3_is_slower_than_case1() {
        // The staleness ordering that drives the whole game.
        let fast = resolve(0.1, None, 1);
        let slow = resolve(0.9, None, 1);
        assert!(slow.staleness_cost > fast.staleness_cost);
    }

    #[test]
    fn income_scales_linearly_in_requests() {
        let one = resolve(0.1, None, 1);
        let five = resolve(0.1, None, 5);
        assert!((five.income - 5.0 * one.income).abs() < 1e-12);
        assert!((five.staleness_cost - 5.0 * one.staleness_cost).abs() < 1e-12);
    }
}
