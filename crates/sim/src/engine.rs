//! The finite-population simulation engine — Alg. 1 executed literally on
//! `M` explicit agents.
//!
//! Each epoch: refresh the trace-driven request profile, let the policy
//! prepare (MFG-CP solves its equilibria here), then march
//! `slots_per_epoch` trading slots. Each slot:
//!
//! 1. advance every channel link (exact OU transitions);
//! 2. every EDP records its requesters' demands (`I_{i,k}(t)`, Def. 2
//!    urgencies included) — per-EDP RNG streams, parallel;
//! 3. every EDP picks its caching rates via the [`CachingPolicy`] and
//!    integrates its caching state (Eq. (4), Euler–Maruyama) — parallel;
//! 4. the market clears sequentially: per content, Eq. (5) prices from the
//!    realized strategy profile, center-assigned peer matching, trade
//!    resolution and metric accounting (Alg. 1 lines 11–14).
//!
//! Parallel sections split the EDP vector into disjoint chunks with
//! `std::thread::scope`; every random draw comes from the owning EDP's
//! stream, so results are bit-identical regardless of thread count (the
//! count itself is `SimConfig::worker_threads`, 0 = one per core).

use std::sync::Arc;

use mfgcp_check::{
    AuditConfig, AuditReport, Auditor, HandoverStats, PopulationTotals, SlotFlows, TwoSmallest,
};
use mfgcp_core::{ContentContext, Params, RateModel, SharedSupplyPricer};
use mfgcp_net::{ChannelState, MobileRequesters, ShardStats, Topology};
use mfgcp_obs::{RecorderHandle, Value};
use mfgcp_sde::{seeded_rng, SimRng};
use mfgcp_workload::{trace::SyntheticYoutubeTrace, trace::Trace, RequestBatch, RequestProcess};

use crate::config::SimConfig;
use crate::edp::Edp;
use crate::market::{resolve_trade, MarketOutcome, TradeCase};
use crate::metrics::{self, EdpMetrics, SlotMetrics};
use crate::policy::{CachingPolicy, DecisionContext};
use crate::snapshot::{EngineControl, Histogram, SimSnapshot};
use crate::SimError;

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme name (from the policy).
    pub scheme: String,
    /// Final accumulated metrics per EDP.
    pub per_edp: Vec<EdpMetrics>,
    /// Per-slot population time series.
    pub series: Vec<SlotMetrics>,
    /// Number of epochs simulated.
    pub epochs: usize,
    /// Conservation-audit report when `SimConfig::audit` was set
    /// (`None` otherwise). A clean report certifies invariants I1–I4 for
    /// this run; see the `mfgcp-check` crate docs.
    pub audit: Option<AuditReport>,
}

impl SimReport {
    /// Population-mean utility.
    pub fn mean_utility(&self) -> f64 {
        metrics::mean_utility(&self.per_edp)
    }

    /// Population-mean trading income.
    pub fn mean_trading_income(&self) -> f64 {
        metrics::mean_trading_income(&self.per_edp)
    }

    /// Population-mean staleness cost.
    pub fn mean_staleness_cost(&self) -> f64 {
        metrics::mean_staleness_cost(&self.per_edp)
    }

    /// Population-mean sharing benefit.
    pub fn mean_sharing_benefit(&self) -> f64 {
        metrics::mean_sharing_benefit(&self.per_edp)
    }

    /// Gini coefficient of per-EDP utilities (0 = perfectly fair).
    pub fn gini_utility(&self) -> f64 {
        metrics::gini_utility(&self.per_edp)
    }

    /// Standard deviation of per-EDP utilities.
    pub fn std_utility(&self) -> f64 {
        metrics::std_utility(&self.per_edp)
    }

    /// Total case tallies across the population `(case1, case2, case3)`.
    pub fn case_totals(&self) -> (u64, u64, u64) {
        self.per_edp.iter().fold((0, 0, 0), |acc, m| {
            (
                acc.0 + m.case_counts.0,
                acc.1 + m.case_counts.1,
                acc.2 + m.case_counts.2,
            )
        })
    }
}

/// The finite-population simulator.
pub struct Simulation {
    cfg: SimConfig,
    topology: Topology,
    channels: ChannelState,
    edps: Vec<Edp>,
    policy: Box<dyn CachingPolicy>,
    trace: Trace,
    rate_model: RateModel,
    /// Per-content sizes `Q_k` (resolved from the config).
    q_sizes: Vec<f64>,
    /// Moving requester population, if mobility is enabled.
    mobility: Option<MobileRequesters>,
    master_rng: SimRng,
    /// Accumulated wall-clock nanoseconds spent in market clearing
    /// (instrumentation only; never feeds back into the dynamics).
    market_nanos: u128,
    /// Per-slot market workspace, reused across slots.
    market_scratch: MarketScratch,
    recorder: RecorderHandle,
    /// Slot-boundary observer/control hook, when a control plane is
    /// attached ([`Simulation::set_control`]). May block between slots
    /// (pause/step gating) but never changes what a slot computes.
    control: Option<Arc<dyn EngineControl>>,
    /// Channel shard gauges sampled at the current epoch's start, cached
    /// for snapshot publication (only maintained while a controller is
    /// attached; `None` under the dense channel representation).
    shard_sample: Option<ShardStats>,
}

/// Reusable per-slot buffers of [`Simulation::clear_market`]'s fused
/// population pass; allocation-free after the first slot.
#[derive(Debug, Default)]
struct MarketScratch {
    /// `Σ_i x_{i,k}` per content (Eq. (5) shared supply).
    sum_x: Vec<f64>,
    /// Two best-stocked qualified sharers per content (best + runner-up,
    /// for when the best is the buyer) — the `mfgcp-check` tracker whose
    /// equivalence to a full `min_by` scan is property-tested there.
    sharers: Vec<TwoSmallest>,
    /// Contiguous k = 0 strategy column for the mean-price statistic.
    x0: Vec<f64>,
    /// Sharing thresholds `α·Q_k`, hoisted out of the population loop.
    alpha_qks: Vec<f64>,
    /// Per-content `(edp, requests)` lists, `i` ascending.
    requesters: Vec<Vec<(usize, u64)>>,
    /// Per-content Eq. (5) pricers built once per slot from `sum_x`.
    pricers: Vec<SharedSupplyPricer>,
    /// Flattened `(content, edp, requests)` trade entries in fold order
    /// (`k` outer, `i` ascending) — the sharded trade loop's work list.
    entries: Vec<(u32, u32, u64)>,
    /// Sharded precompute results, `(outcome, unit price)` per entry.
    outcomes: Vec<(MarketOutcome, f64)>,
}

impl Simulation {
    /// Build a simulation with a synthetic YouTube-like trace.
    ///
    /// # Errors
    ///
    /// Returns configuration or workload errors.
    pub fn new(cfg: SimConfig, policy: Box<dyn CachingPolicy>) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut master_rng = seeded_rng(cfg.seed);
        let trace = SyntheticYoutubeTrace {
            categories: cfg.num_contents,
            epochs: cfg.epochs.max(2),
            ..SyntheticYoutubeTrace::default()
        }
        .generate(&mut master_rng)?;
        Self::with_trace(cfg, policy, trace)
    }

    /// Build a simulation from an explicit trace (e.g. the real Kaggle CSV
    /// loaded with `mfgcp_workload::trace::parse_kaggle_csv`).
    ///
    /// # Errors
    ///
    /// Returns configuration or workload errors.
    pub fn with_trace(
        cfg: SimConfig,
        policy: Box<dyn CachingPolicy>,
        trace: Trace,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if trace.num_categories() != cfg.num_contents {
            return Err(SimError::BadConfig {
                name: "trace",
                message: format!(
                    "trace has {} categories, config expects {}",
                    trace.num_categories(),
                    cfg.num_contents
                ),
            });
        }
        let mut master_rng = seeded_rng(cfg.seed);
        let topology = Topology::random(
            cfg.num_edps,
            cfg.num_requesters,
            &cfg.network,
            &mut master_rng,
        );
        let channels = ChannelState::init(&topology, &cfg.network, &mut master_rng);
        let q_sizes = cfg.resolved_sizes();
        // λ(0) is specified as a fraction of each content's own size.
        let frac_dist = mfgcp_sde::Normal::new(cfg.params.lambda0_mean, cfg.params.lambda0_std)
            .expect("validated initial distribution");
        let mut edps = Vec::with_capacity(cfg.num_edps);
        for id in 0..cfg.num_edps {
            let mut e = Edp::new(
                id,
                cfg.num_contents,
                0.0,
                cfg.zipf_iota,
                cfg.timeliness,
                cfg.seed,
            )?;
            for (q, &size) in e.q.iter_mut().zip(&q_sizes) {
                *q = (frac_dist.sample(&mut master_rng) * size).clamp(0.0, size);
            }
            edps.push(e);
        }
        let rate_model = RateModel::from_params(&cfg.params);
        let mobility = cfg.mobility.map(|model| {
            let positions = (0..topology.num_requesters())
                .map(|j| topology.requester(j))
                .collect();
            MobileRequesters::new(positions, cfg.network.area_radius, model, &mut master_rng)
        });
        Ok(Self {
            cfg,
            topology,
            channels,
            edps,
            policy,
            trace,
            rate_model,
            q_sizes,
            mobility,
            master_rng,
            market_nanos: 0,
            market_scratch: MarketScratch::default(),
            recorder: RecorderHandle::noop(),
            control: None,
            shard_sample: None,
        })
    }

    /// Attach a telemetry recorder to the whole simulation: per-slot
    /// `market.slot` events, a `sim.prepare_epoch` span around the policy's
    /// epoch preparation (where MFG-CP's `solver.*` events nest), and the
    /// `net.*` events of topology re-association and requester mobility
    /// (including the `net.shard.*` channel-occupancy gauges).
    /// Telemetry reads state only — runs are bit-identical with recording
    /// on or off.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.topology.set_recorder(recorder.clone());
        self.channels.set_recorder(recorder.clone());
        if let Some(mob) = &mut self.mobility {
            mob.set_recorder(recorder.clone());
        }
        self.policy.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Attach a slot-boundary control hook. The engine calls
    /// [`EngineControl::at_slot_boundary`] with a fresh [`SimSnapshot`]
    /// before every slot (and once more with `finished = true` after the
    /// last). The hook may block — that is how the control plane pauses
    /// and single-steps the run — but it only ever gates *when* the next
    /// slot executes, never *what* it computes, so controlled runs stay
    /// bit-identical to free runs.
    pub fn set_control(&mut self, control: Arc<dyn EngineControl>) {
        self.control = Some(control);
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current remaining-space states of every EDP for one content —
    /// after [`Simulation::run`], the end-of-run empirical distribution
    /// (used by the propagation-of-chaos ablation).
    pub fn final_states(&self, content: usize) -> Vec<f64> {
        self.edps.iter().map(|e| e.q[content]).collect()
    }

    /// Per-content epoch contexts for the policy's `prepare_epoch`:
    /// expected per-EDP requests and population-mean popularity/urgency.
    fn epoch_contexts(&self, weights: &[f64]) -> Vec<ContentContext> {
        let m = self.cfg.num_edps as f64;
        let requesters_per_edp = self.cfg.num_requesters as f64 / m;
        let requests_per_epoch =
            self.cfg.request_prob * requesters_per_edp * self.cfg.slots_per_epoch as f64;
        (0..self.cfg.num_contents)
            .map(|k| {
                let pop: f64 = self.edps.iter().map(|e| e.popularity.get(k)).sum::<f64>() / m;
                let urg: f64 = self
                    .edps
                    .iter()
                    .map(|e| e.timeliness.factor(k))
                    .sum::<f64>()
                    / m;
                ContentContext {
                    requests: requests_per_epoch * weights[k],
                    popularity: pop,
                    urgency_factor: urg,
                }
            })
            .collect()
    }

    /// Mean fading coefficient from EDP `i` towards its served requesters
    /// (falls back to the long-term mean when it serves nobody).
    fn mean_fading(&self, i: usize) -> f64 {
        let served = self.topology.served_by(i);
        if served.is_empty() {
            return self.cfg.params.upsilon_h;
        }
        served
            .iter()
            .map(|&j| self.channels.fading(i, j))
            .sum::<f64>()
            / served.len() as f64
    }

    /// Run the configured number of epochs, consuming per-slot dynamics.
    pub fn run(&mut self) -> SimReport {
        let mut series = Vec::with_capacity(self.cfg.epochs * self.cfg.slots_per_epoch);
        let mut auditor = self.cfg.audit.then(|| {
            Auditor::new(
                AuditConfig {
                    sample_every: self.cfg.audit_sample,
                    ..AuditConfig::default()
                },
                self.policy.allows_sharing(),
                self.recorder.clone(),
            )
        });
        for epoch in 0..self.cfg.epochs {
            self.run_epoch(epoch, &mut series, &mut auditor);
        }
        // Final publication: same snapshot shape, `finished` set, so an
        // attached observer learns the run is over even if it never
        // resumed a paused run until now.
        if let Some(ctl) = self.control.clone() {
            ctl.at_slot_boundary(self.build_snapshot(
                self.cfg.epochs,
                0,
                &series,
                auditor.as_ref(),
                true,
            ));
        }
        let per_edp: Vec<EdpMetrics> = self.edps.iter().map(|e| e.metrics).collect();
        let audit = auditor.map(|a| a.finish(&population_totals(&self.edps)));
        SimReport {
            scheme: self.policy.name().to_string(),
            per_edp,
            series,
            epochs: self.cfg.epochs,
            audit,
        }
    }

    fn run_epoch(
        &mut self,
        epoch: usize,
        series: &mut Vec<SlotMetrics>,
        auditor: &mut Option<Auditor>,
    ) {
        // Mobility: re-associate requesters to their nearest EDP at the
        // epoch boundary ("default serving EDP that is nearest
        // geographically", §II). Epoch 0 starts from the association the
        // topology was just built with — nobody has moved yet, so the
        // pass would be a no-op.
        if epoch > 0 {
            if let Some(mob) = &self.mobility {
                let before = auditor.as_ref().map(|_| self.handover_snapshot());
                self.topology.update_requesters(mob.positions());
                self.channels.refresh_distances(&self.topology);
                if let (Some(aud), Some(before)) = (auditor.as_mut(), before) {
                    // I6: the migration must re-partition the population
                    // without duplicating or dropping a requester, and the
                    // per-EDP money/case accumulators must reconcile
                    // exactly across the boundary (association moves
                    // requesters, never economics).
                    let after = handover_stats(&self.topology, &before.serving);
                    aud.check_handover(
                        epoch,
                        &after,
                        &before.totals,
                        &population_totals(&self.edps),
                    );
                }
            }
        }
        // Shard gauges cost O(J·k_int) to aggregate, so snapshots carry a
        // once-per-epoch sample (taken right after re-association, where
        // the gauges change) instead of recomputing them every slot.
        if self.control.is_some() {
            self.shard_sample = self.channels.shard_stats();
        }
        let weights = self.trace.normalized_weights(epoch);
        let contexts = self.epoch_contexts(&weights);
        let prep = self.recorder.span_with(
            "sim.prepare_epoch",
            &[("epoch", epoch.into()), ("contents", contexts.len().into())],
        );
        self.policy.prepare_epoch(&contexts);
        prep.close(&[]);
        if let Some(aud) = auditor.as_mut() {
            // I4: gate every freshly solved equilibrium before it steers
            // a single decision.
            for (k, eq) in self.policy.prepared_equilibria() {
                aud.check_equilibrium(epoch, k, eq);
            }
        }
        let process = RequestProcess::new(self.cfg.request_prob, weights, self.cfg.timeliness)
            .expect("validated request parameters");

        let dt = self.cfg.slot_dt();
        let k_contents = self.cfg.num_contents;
        // Per-epoch request tallies for the Eq. (3) popularity update.
        let mut epoch_counts: Vec<Vec<usize>> = vec![vec![0; k_contents]; self.cfg.num_edps];

        for slot in 0..self.cfg.slots_per_epoch {
            // Slot boundary: publish the end-of-previous-slot state and
            // let the control plane gate when (never how) this slot runs.
            if let Some(ctl) = self.control.clone() {
                ctl.at_slot_boundary(self.build_snapshot(
                    epoch,
                    slot,
                    series,
                    auditor.as_ref(),
                    false,
                ));
            }
            let t_in_epoch = slot as f64 * dt;
            let t_global = (epoch * self.cfg.slots_per_epoch + slot) as f64 * dt;
            self.channels.advance(dt);
            if let Some(mob) = &mut self.mobility {
                mob.step(dt, &mut self.master_rng);
                // Distances track the walkers continuously; association
                // only changes at epoch boundaries, so refresh straight
                // from the walker positions instead of cloning and
                // re-associating the whole topology every slot.
                self.channels
                    .refresh_distances_from_positions(&self.topology, mob.positions());
            }

            // Center-published occupancy per content (for UDCS overlap).
            let cached_fraction: Vec<f64> = (0..k_contents)
                .map(|k| {
                    let thr = self.cfg.params.alpha * self.q_sizes[k];
                    self.edps.iter().filter(|e| e.can_share(k, thr)).count() as f64
                        / self.cfg.num_edps as f64
                })
                .collect();
            let mean_fadings: Vec<f64> = (0..self.cfg.num_edps)
                .map(|i| self.mean_fading(i))
                .collect();

            // ---- Parallel phase: requests, decisions, state integration.
            let global_slot = (epoch * self.cfg.slots_per_epoch + slot) as u64;
            let (batches, phase_costs) = self.parallel_edp_phase(
                &process,
                &mean_fadings,
                &cached_fraction,
                t_in_epoch,
                global_slot,
                dt,
            );

            // ---- Sequential phase: market clearing per content.
            let mut slot_stats = self.clear_market(&batches, &mean_fadings, dt);
            // Fold the parallel phase's rate-type costs (Eq. (8) placement,
            // Eq. (9) center-download term) into the slot aggregates so the
            // series carries every Eq. (10) term the per-EDP accumulators
            // do. Summed sequentially in `i` order — the per-EDP buffer is
            // written by whichever thread owns the chunk, but each entry is
            // that EDP's alone, so this sum is bit-identical for any
            // thread count.
            for c in &phase_costs {
                slot_stats.placement += c.placement;
                slot_stats.staleness += c.rate_staleness;
                slot_stats.utility -= c.placement + c.rate_staleness;
            }
            if self.recorder.enabled() {
                self.recorder
                    .event("market.slot", &slot_event_fields(epoch, slot, &slot_stats));
            }
            if let Some(aud) = auditor.as_mut() {
                aud.observe_slot(&SlotFlows {
                    epoch,
                    slot,
                    trading_income: slot_stats.income,
                    sharing_earned: slot_stats.share_benefit,
                    sharing_paid: slot_stats.sharing_cost,
                    placement_cost: slot_stats.placement,
                    staleness_cost: slot_stats.staleness,
                    utility: slot_stats.utility,
                    volume: slot_stats.volume,
                    cases: (slot_stats.case1, slot_stats.case2, slot_stats.case3),
                });
            }

            for (e, batch) in self.edps.iter().zip(&batches) {
                for (k, &c) in batch.counts.iter().enumerate() {
                    epoch_counts[e.id][k] += c;
                }
            }

            let m = self.cfg.num_edps as f64;
            series.push(SlotMetrics {
                t: t_global,
                mean_remaining_space: self.edps.iter().map(|e| e.q[0]).sum::<f64>() / m,
                mean_caching_rate: self.edps.iter().map(|e| e.x[0]).sum::<f64>() / m,
                mean_price: slot_stats.mean_price,
                slot_utility: slot_stats.utility / m,
                slot_trading_income: slot_stats.income / m,
                slot_sharing_benefit: slot_stats.share_benefit / m,
                slot_staleness_cost: slot_stats.staleness / m,
                slot_placement_cost: slot_stats.placement / m,
                slot_sharing_cost: slot_stats.sharing_cost / m,
            });
        }

        // Eq. (3): popularity refresh from the epoch's realized requests.
        for e in &mut self.edps {
            e.popularity.update(&epoch_counts[e.id]);
        }
    }

    /// Requests + decisions + Eq. (4) integration, parallel over disjoint
    /// EDP chunks. Returns each EDP's request batch and the rate-type
    /// costs it accrued this slot (one entry per EDP, written only by the
    /// thread owning that EDP's chunk, so downstream sequential sums are
    /// thread-count-independent).
    fn parallel_edp_phase(
        &mut self,
        process: &RequestProcess,
        mean_fadings: &[f64],
        cached_fraction: &[f64],
        t_in_epoch: f64,
        global_slot: u64,
        dt: f64,
    ) -> (Vec<RequestBatch>, Vec<PhaseCost>) {
        let cfg = &self.cfg;
        // Requests draw from per-requester counter streams keyed by the
        // requester's identity and the global slot, so a batch depends
        // only on *who* an EDP serves — not on the EDP's own stream, not
        // on the thread schedule, and not on past handovers. The constant
        // detunes the request-stream key space from the per-link channel
        // streams that also derive from `cfg.seed`.
        let request_seed = cfg.seed ^ 0xA076_1D64_78BD_642F;
        let policy = &*self.policy;
        let topology = &self.topology;
        let q_sizes = &self.q_sizes;
        let n_threads = thread_count(cfg.worker_threads);
        let chunk_size = self.edps.len().div_ceil(n_threads).max(1);
        let mut batches: Vec<RequestBatch> =
            vec![RequestBatch::empty(cfg.num_contents); self.edps.len()];
        let mut costs: Vec<PhaseCost> = vec![PhaseCost::default(); self.edps.len()];

        std::thread::scope(|scope| {
            let mut edp_chunks: Vec<&mut [Edp]> = self.edps.chunks_mut(chunk_size).collect();
            let batch_chunks: Vec<&mut [RequestBatch]> = batches.chunks_mut(chunk_size).collect();
            let cost_chunks: Vec<&mut [PhaseCost]> = costs.chunks_mut(chunk_size).collect();
            for ((edp_chunk, batch_chunk), cost_chunk) in
                edp_chunks.drain(..).zip(batch_chunks).zip(cost_chunks)
            {
                scope.spawn(move || {
                    for ((e, batch), cost) in edp_chunk
                        .iter_mut()
                        .zip(batch_chunk.iter_mut())
                        .zip(cost_chunk.iter_mut())
                    {
                        let served = topology.served_by(e.id);
                        *batch = process.generate_batched(served, request_seed, global_slot);
                        // Timeliness observations (Def. 2).
                        for k in 0..cfg.num_contents {
                            e.timeliness.observe(k, &batch.urgencies[k]);
                        }
                        // Decisions + Eq. (4) Euler–Maruyama integration.
                        let ranked = e.popularity.ranked();
                        let mut rank_of = vec![0usize; cfg.num_contents];
                        for (r, &k) in ranked.iter().enumerate() {
                            rank_of[k] = r;
                        }
                        for k in 0..cfg.num_contents {
                            let q_size = q_sizes[k];
                            let ctx = DecisionContext {
                                edp: e.id,
                                content: k,
                                t_in_epoch,
                                q: e.q[k],
                                q_size,
                                h: mean_fadings[e.id],
                                popularity: e.popularity.get(k),
                                urgency_factor: e.timeliness.factor(k),
                                rank: rank_of[k],
                                num_contents: cfg.num_contents,
                                neighbor_cached_fraction: cached_fraction[k],
                            };
                            let raw = policy.decide(&ctx, &mut e.rng);
                            // Defensive: a buggy policy returning NaN/∞ must
                            // not poison the market state.
                            let x = if raw.is_finite() {
                                raw.clamp(0.0, 1.0)
                            } else {
                                0.0
                            };
                            e.x[k] = x;
                            let drift = cfg.params.drift_q(x, ctx.popularity, ctx.urgency_factor);
                            let noise = cfg.params.varrho_q
                                * dt.sqrt()
                                * mfgcp_sde::StandardNormal.sample(&mut e.rng);
                            e.q[k] = (e.q[k] + drift * dt + noise).clamp(0.0, q_size);
                            // Rate-type costs: placement (Eq. (8)) and the
                            // center download of the caching rate (Eq. (9),
                            // first term), both × dt. Accrued on the EDP's
                            // accumulator *and* reported per slot so the
                            // slot series stays Eq. (10)-complete.
                            let placement = (cfg.params.w4 * x + cfg.params.w5 * x * x) * dt;
                            let rate_staleness =
                                cfg.params.eta2 * q_size * x / cfg.params.center_rate * dt;
                            e.metrics.placement_cost += placement;
                            e.metrics.staleness_cost += rate_staleness;
                            cost.placement += placement;
                            cost.rate_staleness += rate_staleness;
                        }
                    }
                });
            }
        });
        (batches, costs)
    }

    /// Sequential market clearing; returns slot-level aggregates.
    ///
    /// Pricing uses the shared-supply form of Eq. (5): one O(M) pass per
    /// content accumulates `Σ_i x_i`, then each requesting EDP's price is
    /// the O(1) total-minus-own identity — O(M·K) per slot overall, versus
    /// the O(M²·K) of calling [`finite_population_price`] per EDP. The
    /// center's best-stocked-peer assignment likewise precomputes the two
    /// lowest-remaining-space qualified sharers per content once, so each
    /// request resolves its peer in O(1) instead of scanning all sharers.
    fn clear_market(
        &mut self,
        batches: &[RequestBatch],
        mean_fadings: &[f64],
        _dt: f64,
    ) -> SlotAggregates {
        let start = std::time::Instant::now();
        let cfg = &self.cfg;
        let sharing_allowed = self.policy.allows_sharing();
        let m = self.edps.len();
        let kk = cfg.num_contents;
        let mut agg = SlotAggregates::default();

        // One fused pass over the population gathers everything the
        // per-content phases need: the Eq. (5) supply sums, the two
        // best-stocked qualified sharers per content, the k = 0 strategy
        // column (for the mean-price statistic) and each content's
        // requester list. Interleaving per-content scans the other way
        // (content-outer, population-inner) re-reads every EDP's heap state
        // `K` times per slot, which dominates the market wall time once
        // `M` outgrows the cache. All per-content accumulation orders stay
        // `i` ascending, so sums are bit-identical to the separate passes.
        let s = &mut self.market_scratch;
        s.sum_x.clear();
        s.sum_x.resize(kk, 0.0);
        s.sharers.clear();
        s.sharers.resize(kk, TwoSmallest::new());
        s.x0.clear();
        s.x0.resize(m, 0.0);
        s.alpha_qks.clear();
        s.alpha_qks
            .extend(self.q_sizes.iter().map(|&q| cfg.params.alpha * q));
        s.requesters.resize_with(kk, Vec::new);
        for r in &mut s.requesters {
            r.clear();
        }
        for (i, e) in self.edps.iter().enumerate() {
            s.x0[i] = e.x[0];
            for k in 0..kk {
                s.sum_x[k] += e.x[k];
                // Center's peer assignment: the best-stocked qualified
                // sharer has the smallest remaining space. The two-smallest
                // tracker (first-minimal on ties, matching a `min_by` scan
                // in id order — property-tested against that scan in
                // `mfgcp-check`) answers every "minimum excluding EDP i"
                // query in O(1).
                if e.can_share(k, s.alpha_qks[k]) {
                    s.sharers[k].offer(e.id, e.q[k]);
                }
                let requests = batches[i].counts[k] as u64;
                if requests > 0 {
                    s.requesters[k].push((i, requests));
                }
            }
        }

        // Per-content Eq. (5) pricers, built once from the supply sums and
        // shared by the sharded precompute, the sequential oracle, and the
        // k = 0 mean-price statistic.
        s.pricers.clear();
        for k in 0..kk {
            s.pricers.push(SharedSupplyPricer::from_sum(
                cfg.params.p_hat,
                cfg.params.eta1,
                self.q_sizes[k],
                m,
                s.sum_x[k],
            ));
        }

        // Sharded trade precompute. Every (EDP, content) trade entry is a
        // pure function of frozen slot state — the strategy profile `x`,
        // the caching states `q`, the mean fadings, the pricer, and the
        // sharer tracker; the fold below only mutates metrics
        // accumulators. So the entries can be flattened in fold order
        // (`k` outer, `i` ascending) and resolved on scoped threads, and
        // the sequential fold that consumes them is bit-identical to the
        // unsharded loop for any thread count: each entry's outcome comes
        // from the same pure call with the same inputs, folded in the same
        // order. `unsharded_market` keeps the inline oracle reachable.
        if !cfg.unsharded_market {
            s.entries.clear();
            for k in 0..kk {
                for &(i, requests) in &s.requesters[k] {
                    s.entries.push((k as u32, i as u32, requests));
                }
            }
            let idle = (
                resolve_trade(1.0, 1.0, 0.0, None, 0.0, 0, 1.0, 1.0, 0.0, 0.0),
                0.0,
            );
            s.outcomes.clear();
            s.outcomes.resize(s.entries.len(), idle);
            let edps = &self.edps;
            let rate_model = &self.rate_model;
            let q_sizes = &self.q_sizes;
            let params = &cfg.params;
            let (entries, pricers, sharer_list, alpha_qks) =
                (&s.entries, &s.pricers, &s.sharers, &s.alpha_qks);
            let fill = |outs: &mut [(MarketOutcome, f64)], ents: &[(u32, u32, u64)]| {
                for (out, &(k, i, requests)) in outs.iter_mut().zip(ents) {
                    let (k, i) = (k as usize, i as usize);
                    let rate_edge = rate_model.rate(mean_fadings[i]).max(1e-9);
                    *out = trade_entry(
                        &edps[i],
                        k,
                        requests,
                        q_sizes[k],
                        alpha_qks[k],
                        &pricers[k],
                        &sharer_list[k],
                        sharing_allowed,
                        rate_edge,
                        params,
                    );
                }
            };
            let n_threads = thread_count(cfg.worker_threads)
                .min(entries.len() / MIN_TRADE_ENTRIES_PER_THREAD)
                .max(1);
            if n_threads <= 1 {
                fill(&mut s.outcomes, entries);
            } else {
                let chunk = entries.len().div_ceil(n_threads);
                let fill = &fill;
                std::thread::scope(|scope| {
                    for (outs, ents) in s.outcomes.chunks_mut(chunk).zip(entries.chunks(chunk)) {
                        scope.spawn(move || fill(outs, ents));
                    }
                });
            }
        }

        let mut cursor = 0usize;
        for k in 0..kk {
            let q_size = self.q_sizes[k];
            let alpha_qk = s.alpha_qks[k];
            let pricer = s.pricers[k];
            // The k = 0 mean-price series averages over *every* EDP
            // (idle ones included), exactly like the per-EDP pricing
            // loop it replaces — now a dedicated O(M) pass over the
            // contiguous strategy column.
            if k == 0 {
                agg.mean_price = s.x0.iter().map(|&x| pricer.price(x)).sum::<f64>() / m as f64;
            }
            let sharers = s.sharers[k];

            for &(i, requests) in &s.requesters[k] {
                let (out, price) = if cfg.unsharded_market {
                    // Oracle: resolve the entry inline, exactly where the
                    // pre-sharding loop did.
                    let rate_edge = self.rate_model.rate(mean_fadings[i]).max(1e-9);
                    trade_entry(
                        &self.edps[i],
                        k,
                        requests,
                        q_size,
                        alpha_qk,
                        &pricer,
                        &sharers,
                        sharing_allowed,
                        rate_edge,
                        &cfg.params,
                    )
                } else {
                    let r = s.outcomes[cursor];
                    cursor += 1;
                    r
                };
                agg.min_price = agg.min_price.min(price);
                agg.max_price = agg.max_price.max(price);
                let m = &mut self.edps[i].metrics;
                m.trading_income += out.income;
                m.staleness_cost += out.staleness_cost;
                m.sharing_cost += out.sharing_cost;
                m.requests_served += requests;
                match out.case {
                    TradeCase::OwnCache => {
                        m.case_counts.0 += 1;
                        agg.case1 += 1;
                    }
                    TradeCase::PeerShare => {
                        m.case_counts.1 += 1;
                        agg.case2 += 1;
                    }
                    TradeCase::CenterDownload => {
                        m.case_counts.2 += 1;
                        agg.case3 += 1;
                    }
                }
                agg.volume += requests;
                agg.income += out.income;
                agg.staleness += out.staleness_cost;
                agg.sharing_cost += out.sharing_cost;
                agg.utility += out.income - out.staleness_cost - out.sharing_cost;
                if let Some(peer_idx) = out.peer {
                    // Eq. (7): the fee is the peer's sharing benefit.
                    self.edps[peer_idx].metrics.sharing_benefit += out.sharing_cost;
                    agg.share_benefit += out.sharing_cost;
                    agg.utility += out.sharing_cost;
                }
            }
        }
        let elapsed = start.elapsed().as_nanos();
        self.market_nanos += elapsed;
        agg.nanos = u64::try_from(elapsed).unwrap_or(u64::MAX);
        agg
    }

    /// Total wall-clock time spent inside market clearing so far, in
    /// nanoseconds (instrumentation for the `BENCH_market.json` sweep; has
    /// no effect on simulation results).
    pub fn market_clearing_nanos(&self) -> u128 {
        self.market_nanos
    }

    /// Build the slot-boundary snapshot handed to the attached
    /// [`EngineControl`]. `epoch`/`slot` index the *next* slot to run
    /// (`epoch == cfg.epochs` with `finished` for the final publication);
    /// every field reads end-of-previous-slot state only.
    fn build_snapshot(
        &self,
        epoch: usize,
        slot: usize,
        series: &[SlotMetrics],
        auditor: Option<&Auditor>,
        finished: bool,
    ) -> SimSnapshot {
        let global_slot = (epoch * self.cfg.slots_per_epoch + slot) as u64;
        let total_slots = (self.cfg.epochs * self.cfg.slots_per_epoch) as u64;
        let occupancy: Vec<f64> = self.edps.iter().map(|e| e.q[0]).collect();
        let occupancy_hist = Histogram::from_values(&occupancy);
        // The previous slot's cleared market leaves its Eq. (5) pricers
        // and k = 0 strategy column in the scratch; before the first slot
        // the scratch is empty and there is no price distribution yet.
        let s = &self.market_scratch;
        let price_hist = (!s.pricers.is_empty() && !s.x0.is_empty())
            .then(|| {
                let prices: Vec<f64> = s.x0.iter().map(|&x| s.pricers[0].price(x)).collect();
                Histogram::from_values(&prices)
            })
            .flatten();
        SimSnapshot {
            scheme: self.policy.name().to_string(),
            epoch,
            slot,
            global_slot,
            total_slots,
            t: global_slot as f64 * self.cfg.slot_dt(),
            finished,
            num_edps: self.cfg.num_edps,
            num_requesters: self.cfg.num_requesters,
            num_contents: self.cfg.num_contents,
            occupancy,
            occupancy_hist,
            price_hist,
            last_slot: series.last().copied(),
            audit: auditor.map(|a| a.status()),
            net: self.shard_sample,
        }
    }

    /// Pre-handover state for the I6 gate: the serving map and the per-EDP
    /// accumulator totals as they stand immediately before an
    /// epoch-boundary re-association.
    fn handover_snapshot(&self) -> HandoverSnapshot {
        HandoverSnapshot {
            serving: (0..self.topology.num_requesters())
                .map(|j| self.topology.serving(j))
                .collect(),
            totals: population_totals(&self.edps),
        }
    }
}

/// Pre-handover state captured for the I6 audit gate.
struct HandoverSnapshot {
    /// `serving[j]` before the re-association.
    serving: Vec<usize>,
    /// Population accumulator totals before the re-association.
    totals: PopulationTotals,
}

/// Σ over the population of each [`EdpMetrics`] field, shaped for the
/// auditor's end-of-run (I1–I3) and handover (I6) comparisons.
fn population_totals(edps: &[Edp]) -> PopulationTotals {
    let mut totals = PopulationTotals::default();
    for e in edps {
        let m = &e.metrics;
        totals.trading_income += m.trading_income;
        totals.sharing_benefit += m.sharing_benefit;
        totals.placement_cost += m.placement_cost;
        totals.staleness_cost += m.staleness_cost;
        totals.sharing_cost += m.sharing_cost;
        totals.requests_served += m.requests_served;
        totals.case_counts.0 += m.case_counts.0;
        totals.case_counts.1 += m.case_counts.1;
        totals.case_counts.2 += m.case_counts.2;
    }
    totals
}

/// Audit the served-by partition immediately after a handover: walk every
/// served list once, counting requesters that land in exactly one list
/// whose EDP matches their own serving pointer, and requesters that were
/// double-counted. O(M + J) with one reusable byte per requester.
fn handover_stats(topology: &Topology, before_serving: &[usize]) -> HandoverStats {
    let j = topology.num_requesters();
    let mut seen = vec![false; j];
    let mut assigned = 0u64;
    let mut duplicates = 0u64;
    for i in 0..topology.num_edps() {
        for &r in topology.served_by(i) {
            if seen[r] {
                duplicates += 1;
            } else {
                seen[r] = true;
                if topology.serving(r) == i {
                    assigned += 1;
                }
            }
        }
    }
    let moved = (0..j)
        .filter(|&r| topology.serving(r) != before_serving[r])
        .count() as u64;
    HandoverStats {
        requesters: j as u64,
        assigned,
        duplicates,
        moved,
    }
}

/// Resolve the configured worker-thread count (`0` = one per core).
fn thread_count(worker_threads: usize) -> usize {
    if worker_threads > 0 {
        worker_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Minimum flattened trade entries per worker before the sharded market
/// precompute spawns threads; below this the inline fill beats the
/// thread-spawn overhead (the result is identical either way — every
/// entry is an independent pure call).
const MIN_TRADE_ENTRIES_PER_THREAD: usize = 256;

/// Resolve one trade entry against frozen slot state: the Eq. (5) price
/// for the buyer's strategy, the center's best-stocked qualified peer
/// ("a suitable EDP", §IV-B — smallest remaining space, which both
/// completes the most data and minimizes the buyer's fee), and the
/// case-1/2/3 outcome. Pure in its inputs; shared verbatim by the sharded
/// precompute and the `unsharded_market` oracle, which is what makes the
/// two paths bit-identical by construction.
#[allow(clippy::too_many_arguments)]
fn trade_entry(
    e: &Edp,
    k: usize,
    requests: u64,
    q_size: f64,
    alpha_qk: f64,
    pricer: &SharedSupplyPricer,
    sharers: &TwoSmallest,
    sharing_allowed: bool,
    rate_edge: f64,
    params: &Params,
) -> (MarketOutcome, f64) {
    let price = pricer.price(e.x[k]);
    let peer = if sharing_allowed && e.q[k] > alpha_qk {
        sharers.min_excluding(e.id)
    } else {
        None
    };
    let out = resolve_trade(
        q_size,
        alpha_qk,
        e.q[k],
        peer,
        price,
        requests,
        rate_edge,
        params.center_rate,
        params.eta2,
        params.p_bar,
    );
    (out, price)
}

/// Rate-type costs one EDP accrues during the parallel phase of one slot
/// (Eq. (8) placement and the Eq. (9) center-download term). Collected
/// per EDP so the sequential slot aggregation is independent of how the
/// population was chunked across threads.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseCost {
    placement: f64,
    rate_staleness: f64,
}

/// The `market.slot` telemetry payload for one cleared slot. The price
/// extremes are omitted on zero-volume slots: nobody was charged, so the
/// `±inf` tracker sentinels are not observations and would only pollute
/// downstream aggregations (JSON renders them as strings).
fn slot_event_fields(
    epoch: usize,
    slot: usize,
    agg: &SlotAggregates,
) -> Vec<(&'static str, Value)> {
    let mut fields: Vec<(&'static str, Value)> = vec![
        ("epoch", epoch.into()),
        ("slot", slot.into()),
        ("nanos", agg.nanos.into()),
        ("volume", agg.volume.into()),
        ("case1", agg.case1.into()),
        ("case2", agg.case2.into()),
        ("case3", agg.case3.into()),
        ("mean_price", agg.mean_price.into()),
    ];
    if agg.volume > 0 {
        fields.push(("min_price", agg.min_price.into()));
        fields.push(("max_price", agg.max_price.into()));
    }
    fields
}

#[derive(Debug, Clone, Copy)]
struct SlotAggregates {
    income: f64,
    staleness: f64,
    share_benefit: f64,
    /// Sharing fees paid by buyers this slot (mirror of `share_benefit`).
    sharing_cost: f64,
    /// Eq. (8) placement cost accrued in the parallel phase this slot.
    placement: f64,
    utility: f64,
    mean_price: f64,
    /// Wall-clock nanoseconds this slot's clearing took.
    nanos: u64,
    /// Requests served across the population this slot.
    volume: u64,
    /// Per-case trade tallies (own cache / peer share / center download).
    case1: u64,
    case2: u64,
    case3: u64,
    /// Extremes of the Eq. (5) prices actually charged to requesting EDPs
    /// this slot (±∞ when nobody requested anything).
    min_price: f64,
    max_price: f64,
}

impl Default for SlotAggregates {
    fn default() -> Self {
        Self {
            income: 0.0,
            staleness: 0.0,
            share_benefit: 0.0,
            sharing_cost: 0.0,
            placement: 0.0,
            utility: 0.0,
            mean_price: 0.0,
            nanos: 0,
            volume: 0,
            case1: 0,
            case2: 0,
            case3: 0,
            min_price: f64::INFINITY,
            max_price: f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{MostPopularCaching, RandomReplacement};

    fn small_sim(policy: Box<dyn CachingPolicy>) -> Simulation {
        Simulation::new(SimConfig::small(), policy).unwrap()
    }

    #[test]
    fn rr_simulation_runs_and_accumulates() {
        let mut sim = small_sim(Box::new(RandomReplacement));
        let report = sim.run();
        assert_eq!(report.scheme, "RR");
        assert_eq!(report.per_edp.len(), 12);
        assert_eq!(report.series.len(), 20);
        let total_requests: u64 = report.per_edp.iter().map(|m| m.requests_served).sum();
        assert!(total_requests > 0, "no requests were served");
        assert!(report.mean_trading_income() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let r1 = small_sim(Box::new(RandomReplacement)).run();
        let r2 = small_sim(Box::new(RandomReplacement)).run();
        assert_eq!(r1.per_edp, r2.per_edp);
        for (a, b) in r1.series.iter().zip(&r2.series) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn states_remain_in_bounds() {
        // The bound is per content: q_k ∈ [0, Q_k], with Q_k from the
        // resolved (possibly heterogeneous) sizes — checking the global
        // `params.q_size` would miss violations whenever Q_k < q_size.
        let check = |sim: &Simulation| {
            for e in &sim.edps {
                for (k, &q) in e.q.iter().enumerate() {
                    assert!(
                        (0.0..=sim.q_sizes[k]).contains(&q),
                        "content {k}: q = {q} outside [0, {}]",
                        sim.q_sizes[k]
                    );
                }
                for &x in &e.x {
                    assert!((0.0..=1.0).contains(&x));
                }
            }
        };
        let mut sim = small_sim(Box::new(MostPopularCaching::default()));
        let _ = sim.run();
        check(&sim);
        // Heterogeneous catalog: contents strictly smaller than the global
        // q_size would previously slip through the global bound.
        let mut cfg = SimConfig::small();
        cfg.content_sizes = vec![0.3, 1.0, 0.15, 0.6];
        let mut sim = Simulation::new(cfg, Box::new(MostPopularCaching::default())).unwrap();
        let _ = sim.run();
        check(&sim);
    }

    #[test]
    fn run_is_bit_identical_across_thread_counts() {
        let report = |threads: usize| {
            let mut cfg = SimConfig::small();
            cfg.worker_threads = threads;
            Simulation::new(cfg, Box::new(MostPopularCaching::default()))
                .unwrap()
                .run()
        };
        let baseline = report(1);
        for threads in [2, 8] {
            let r = report(threads);
            assert_eq!(baseline.per_edp, r.per_edp, "with {threads} threads");
            assert_eq!(baseline.series.len(), r.series.len());
            for (a, b) in baseline.series.iter().zip(&r.series) {
                assert_eq!(a, b, "with {threads} threads");
            }
        }
    }

    #[test]
    fn attached_control_observes_every_slot_without_perturbing_the_run() {
        use crate::snapshot::{EngineControl, SimSnapshot};
        use std::sync::Mutex;

        struct Probe {
            snaps: Mutex<Vec<SimSnapshot>>,
        }
        impl EngineControl for Probe {
            fn at_slot_boundary(&self, snapshot: SimSnapshot) {
                self.snaps.lock().unwrap().push(snapshot);
            }
        }

        let run = |control: Option<Arc<Probe>>| {
            let mut cfg = SimConfig::small();
            cfg.audit = true;
            let mut sim = Simulation::new(cfg, Box::new(MostPopularCaching::default())).unwrap();
            if let Some(ctl) = control {
                sim.set_control(ctl);
            }
            sim.run()
        };
        let free = run(None);
        let probe = Arc::new(Probe {
            snaps: Mutex::new(Vec::new()),
        });
        let observed = run(Some(Arc::clone(&probe)));

        // Observation never perturbs: bit-identical reports.
        assert_eq!(free.per_edp, observed.per_edp);
        assert_eq!(free.series, observed.series);

        // One snapshot per slot boundary plus the final publication.
        let snaps = probe.snaps.lock().unwrap();
        let total = SimConfig::small().epochs * SimConfig::small().slots_per_epoch;
        assert_eq!(snaps.len(), total + 1);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.global_slot, i as u64);
            assert_eq!(s.total_slots, total as u64);
            assert_eq!(s.occupancy.len(), s.num_edps);
            assert_eq!(s.finished, i == total);
            // Audit counters track completed slots.
            assert_eq!(s.audit.unwrap().slots_checked, i);
        }
        // The first boundary precedes any cleared market; afterwards the
        // previous slot's price distribution is always available.
        assert!(snaps[0].price_hist.is_none());
        assert!(snaps[0].last_slot.is_none());
        assert!(snaps[1..].iter().all(|s| s.price_hist.is_some()));
        let last = snaps.last().unwrap();
        assert!(last.finished);
        assert_eq!(last.last_slot, free.series.last().copied());
        assert!((last.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sharded_market_matches_the_unsharded_oracle_bit_for_bit() {
        // The tentpole differential: the sharded trade loop (flattened
        // entries precomputed on scoped threads) against the sequential
        // oracle it replaced, across thread counts, with mobility so
        // epoch-boundary handovers reshuffle the shards mid-run. The
        // population is sized so per-slot trade entries exceed
        // 2 × MIN_TRADE_ENTRIES_PER_THREAD and the multi-thread fill path
        // genuinely spawns.
        let report = |threads: usize, unsharded: bool| {
            let mut cfg = SimConfig::small();
            cfg.epochs = 2;
            cfg.slots_per_epoch = 6;
            cfg.num_edps = 96;
            cfg.params.num_edps = 96;
            cfg.num_contents = 8;
            cfg.num_requesters = 2000;
            cfg.request_prob = 0.9;
            cfg.mobility = Some(mfgcp_net::RandomWaypoint::default());
            cfg.worker_threads = threads;
            cfg.unsharded_market = unsharded;
            Simulation::new(cfg, Box::new(RandomReplacement))
                .unwrap()
                .run()
        };
        let oracle = report(1, true);
        for threads in [1, 2, 8] {
            let sharded = report(threads, false);
            assert_eq!(oracle.per_edp, sharded.per_edp, "with {threads} threads");
            assert_eq!(oracle.series.len(), sharded.series.len());
            for (a, b) in oracle.series.iter().zip(&sharded.series) {
                assert_eq!(a, b, "with {threads} threads");
            }
        }
    }

    #[test]
    fn telemetry_neither_perturbs_the_run_nor_breaks_the_schema() {
        use mfgcp_obs::{schema, Kind, MemorySink, RecorderHandle};
        let reference = small_sim(Box::new(MostPopularCaching::default())).run();
        let mut sim = small_sim(Box::new(MostPopularCaching::default()));
        let sink = std::sync::Arc::new(MemorySink::new());
        sim.set_recorder(RecorderHandle::new(sink.clone()));
        let recorded = sim.run();
        // Bit-identical with recording on.
        assert_eq!(reference.per_edp, recorded.per_edp);
        assert_eq!(reference.series.len(), recorded.series.len());
        for (a, b) in reference.series.iter().zip(&recorded.series) {
            assert_eq!(a, b);
        }
        // The emitted stream passes the JSONL schema validator.
        let events = sink.events();
        let text: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        assert_eq!(schema::validate_str(&text).unwrap(), events.len());
        // One market.slot event per simulated slot, volumes consistent
        // with the per-EDP served-request tallies.
        let slots: Vec<_> = events.iter().filter(|e| e.name == "market.slot").collect();
        assert_eq!(slots.len(), recorded.series.len());
        let volume: u64 = slots
            .iter()
            .map(|e| match e.field("volume") {
                Some(&mfgcp_obs::Value::U64(v)) => v,
                other => panic!("bad volume field: {other:?}"),
            })
            .sum();
        let served: u64 = recorded.per_edp.iter().map(|m| m.requests_served).sum();
        assert_eq!(volume, served);
        // One prepare-epoch span per epoch.
        let preps = events
            .iter()
            .filter(|e| e.name == "sim.prepare_epoch" && e.kind == Kind::SpanOpen)
            .count();
        assert_eq!(preps, recorded.epochs);
    }

    #[test]
    fn mobility_emits_net_events_through_the_sim_recorder() {
        use mfgcp_obs::{schema, MemorySink, RecorderHandle};
        let mut cfg = SimConfig::small();
        cfg.epochs = 2; // epoch 0 skips the no-op re-association
        cfg.mobility = Some(mfgcp_net::RandomWaypoint::default());
        let mut sim = Simulation::new(cfg, Box::new(RandomReplacement)).unwrap();
        let sink = std::sync::Arc::new(MemorySink::new());
        sim.set_recorder(RecorderHandle::new(sink.clone()));
        let _ = sim.run();
        let events = sink.events();
        let text: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        assert_eq!(schema::validate_str(&text).unwrap(), events.len());
        // Exactly epochs − 1 re-associations: the epoch-0 boundary starts
        // from the association the topology was just built with, so the
        // engine must not burn an update (and its shard-gauge emission) on
        // a pass that cannot move anybody.
        let reassociations = events
            .iter()
            .filter(|e| e.name == "net.reassociation")
            .count();
        assert_eq!(reassociations, 1, "one re-association per later epoch");
        assert!(
            events.iter().any(|e| e.name == "net.mobility.step"),
            "no mobility arrivals in a 20-slot walk"
        );
        assert!(
            events.iter().any(|e| e.name == "net.shard.occupancy"),
            "no shard gauges from the epoch-boundary reassociation"
        );
    }

    #[test]
    fn epoch_zero_association_is_untouched() {
        // The skip is provably a no-op — same positions, same grid, same
        // association — so a single-epoch mobile run must serve exactly
        // the partition the topology was built with, and a static run must
        // be bit-identical whether or not mobility is configured with a
        // zero-speed... (zero speed is rejected, so compare the serving
        // map directly instead).
        let mut cfg = SimConfig::small();
        cfg.mobility = Some(mfgcp_net::RandomWaypoint::default());
        let sim = Simulation::new(cfg.clone(), Box::new(RandomReplacement)).unwrap();
        let initial: Vec<usize> = (0..cfg.num_requesters)
            .map(|j| sim.topology.serving(j))
            .collect();
        let mut sim = sim;
        let _ = sim.run();
        // One epoch: no boundary was crossed, so the serving map at the
        // end is still the initial association (mobility moved positions
        // every slot, but association only changes at epoch boundaries).
        let after: Vec<usize> = (0..cfg.num_requesters)
            .map(|j| sim.topology.serving(j))
            .collect();
        assert_eq!(initial, after, "epoch-0 association was disturbed");
    }

    #[test]
    fn dense_channel_fallback_is_bit_identical_on_static_runs() {
        // The engine consumes only serving-link fading, and both channel
        // layouts drive serving links from the same per-link counter
        // streams, so a static-topology run must not depend on the layout.
        let sharded = small_sim(Box::new(MostPopularCaching::default())).run();
        let mut cfg = SimConfig::small();
        cfg.network.dense_channel = true;
        let dense = Simulation::new(cfg, Box::new(MostPopularCaching::default()))
            .unwrap()
            .run();
        assert_eq!(sharded.per_edp, dense.per_edp);
        assert_eq!(sharded.series.len(), dense.series.len());
        for (a, b) in sharded.series.iter().zip(&dense.series) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn k0_mean_price_matches_the_per_edp_reference() {
        // Regression for the shared-sum rewrite: the k = 0 mean-price
        // statistic must equal the mean of per-EDP Eq. (5) prices from the
        // O(M) reference, averaged over every EDP — idle ones included
        // (the seed implementation priced before its requests == 0
        // early-continue).
        use mfgcp_core::finite_population_price;
        let mut sim = small_sim(Box::new(MostPopularCaching::default()));
        for (i, e) in sim.edps.iter_mut().enumerate() {
            e.x[0] = 0.05 + 0.9 * (i as f64) / 11.0;
        }
        let m = sim.edps.len();
        let batches = vec![RequestBatch::empty(sim.cfg.num_contents); m];
        let mean_fadings = vec![sim.cfg.params.upsilon_h; m];
        let agg = sim.clear_market(&batches, &mean_fadings, 0.1);
        let strategies: Vec<f64> = sim.edps.iter().map(|e| e.x[0]).collect();
        let oracle = (0..m)
            .map(|i| {
                finite_population_price(
                    sim.cfg.params.p_hat,
                    sim.cfg.params.eta1,
                    sim.q_sizes[0],
                    &strategies,
                    i,
                )
            })
            .sum::<f64>()
            / m as f64;
        assert!(
            (agg.mean_price - oracle).abs() < 1e-9,
            "{} vs oracle {oracle}",
            agg.mean_price
        );
    }

    #[test]
    fn non_sharing_policy_records_no_sharing_flows() {
        let mut sim = small_sim(Box::new(RandomReplacement));
        let report = sim.run();
        assert_eq!(report.mean_sharing_benefit(), 0.0);
        let (_, case2, _) = report.case_totals();
        assert_eq!(case2, 0, "sharing-disabled scheme must never hit case 2");
    }

    #[test]
    fn symmetric_market_has_low_inequality() {
        // The mean-field equilibrium is symmetric; the finite market's
        // utility inequality should be modest.
        let mut sim = small_sim(Box::new(MostPopularCaching::default()));
        let report = sim.run();
        let g = report.gini_utility();
        assert!((0.0..=1.0).contains(&g));
        assert!(g < 0.5, "suspiciously unequal market: gini {g}");
    }

    #[test]
    fn non_finite_policy_decisions_are_neutralized() {
        struct Poison;
        impl CachingPolicy for Poison {
            fn name(&self) -> &'static str {
                "POISON"
            }
            fn allows_sharing(&self) -> bool {
                false
            }
            fn decide(&self, ctx: &DecisionContext, _rng: &mut mfgcp_sde::SimRng) -> f64 {
                if ctx.content == 0 {
                    f64::NAN
                } else {
                    f64::INFINITY
                }
            }
        }
        let mut sim = small_sim(Box::new(Poison));
        let report = sim.run();
        assert!(report.mean_utility().is_finite());
        for e in &sim.edps {
            assert!(e.q.iter().all(|q| q.is_finite()));
            assert!(e.x.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    #[test]
    fn slot_series_reconciles_with_per_edp_eq10() {
        // Invariant I3: summing the slot series over the whole run must
        // reproduce the per-EDP accumulated totals for every Eq. (10)
        // term — the series previously dropped the Eq. (8) placement cost
        // and the Eq. (9) center-download term (both accrued only on the
        // per-EDP side), so its utility overstated the market's.
        let policy = crate::baselines::MfgCpPolicy::new(SimConfig::small().params).unwrap();
        let mut sim = small_sim(Box::new(policy));
        let report = sim.run();
        let m = report.per_edp.len() as f64;
        let series_sum =
            |f: fn(&SlotMetrics) -> f64| -> f64 { report.series.iter().map(f).sum::<f64>() * m };
        let edp_sum = |f: fn(&EdpMetrics) -> f64| -> f64 { report.per_edp.iter().map(f).sum() };
        let pairs = [
            (
                "utility",
                series_sum(|s| s.slot_utility),
                edp_sum(EdpMetrics::utility),
            ),
            (
                "trading_income",
                series_sum(|s| s.slot_trading_income),
                edp_sum(|e| e.trading_income),
            ),
            (
                "sharing_benefit",
                series_sum(|s| s.slot_sharing_benefit),
                edp_sum(|e| e.sharing_benefit),
            ),
            (
                "staleness_cost",
                series_sum(|s| s.slot_staleness_cost),
                edp_sum(|e| e.staleness_cost),
            ),
            (
                "placement_cost",
                series_sum(|s| s.slot_placement_cost),
                edp_sum(|e| e.placement_cost),
            ),
            (
                "sharing_cost",
                series_sum(|s| s.slot_sharing_cost),
                edp_sum(|e| e.sharing_cost),
            ),
        ];
        for (what, series, per_edp) in pairs {
            assert!(
                (series - per_edp).abs() <= 1e-9 * per_edp.abs().max(1.0),
                "{what}: slot series {series} vs per-EDP {per_edp}"
            );
        }
        // The fix must not have turned the flows trivial.
        assert!(edp_sum(|e| e.placement_cost) > 0.0);
    }

    #[test]
    fn audited_run_is_clean_and_reported() {
        let cfg = SimConfig {
            audit: true,
            ..SimConfig::small()
        };
        let policy = crate::baselines::MfgCpPolicy::new(cfg.params.clone()).unwrap();
        let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
        let report = sim.run();
        let audit = report.audit.expect("audit was requested");
        assert!(audit.is_clean(), "{:?}", audit.violations);
        assert_eq!(audit.slots_checked, report.series.len());
        assert!(audit.equilibria_checked > 0, "no equilibria were gated");
        // Audit off ⇒ no report, and the run itself is unperturbed.
        let policy = crate::baselines::MfgCpPolicy::new(SimConfig::small().params).unwrap();
        let plain = small_sim(Box::new(policy)).run();
        assert!(plain.audit.is_none());
        assert_eq!(plain.per_edp, report.per_edp);
    }

    #[test]
    fn sampled_audit_stays_clean_and_observes_every_slot() {
        let cfg = SimConfig {
            audit: true,
            audit_sample: 4,
            ..SimConfig::small()
        };
        let policy = crate::baselines::MfgCpPolicy::new(cfg.params.clone()).unwrap();
        let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
        let report = sim.run();
        let audit = report.audit.expect("audit was requested");
        assert!(audit.is_clean(), "{:?}", audit.violations);
        // The cumulative I1–I3 accumulators still see every slot even
        // though only every 4th runs the per-slot checks.
        assert_eq!(audit.slots_checked, report.series.len());
    }

    #[test]
    fn idle_slot_event_omits_price_extremes() {
        // A zero-volume slot used to emit `min_price = inf` /
        // `max_price = -inf` sentinels (serialized as JSON strings); the
        // two fields are now simply absent.
        let idle = SlotAggregates::default();
        let fields = slot_event_fields(3, 7, &idle);
        assert!(fields
            .iter()
            .all(|(k, _)| *k != "min_price" && *k != "max_price"));
        assert!(fields.iter().any(|(k, _)| *k == "mean_price"));
        // A slot with volume carries both extremes as finite gauges.
        let busy = SlotAggregates {
            volume: 5,
            min_price: 1.25,
            max_price: 4.5,
            ..SlotAggregates::default()
        };
        let fields = slot_event_fields(0, 0, &busy);
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("min_price"), Some(mfgcp_obs::Value::F64(1.25)));
        assert_eq!(get("max_price"), Some(mfgcp_obs::Value::F64(4.5)));
        // End-to-end: clearing a slot where nobody requests anything
        // produces the idle shape straight from the engine's aggregates.
        let mut sim = small_sim(Box::new(MostPopularCaching::default()));
        let m = sim.edps.len();
        let batches = vec![RequestBatch::empty(sim.cfg.num_contents); m];
        let mean_fadings = vec![sim.cfg.params.upsilon_h; m];
        let agg = sim.clear_market(&batches, &mean_fadings, 0.1);
        assert_eq!(agg.volume, 0);
        let fields = slot_event_fields(0, 0, &agg);
        assert!(fields
            .iter()
            .all(|(k, _)| *k != "min_price" && *k != "max_price"));
    }

    #[test]
    fn sharing_money_is_conserved() {
        // Every sharing fee paid by a buyer lands as exactly one peer's
        // sharing benefit — the market neither mints nor burns money.
        let cfg = SimConfig {
            epochs: 2,
            slots_per_epoch: 30,
            ..SimConfig::small()
        };
        let policy = crate::baselines::MfgCpPolicy::new(cfg.params.clone()).unwrap();
        let mut sim = Simulation::new(cfg, Box::new(policy)).unwrap();
        let report = sim.run();
        let paid: f64 = report.per_edp.iter().map(|m| m.sharing_cost).sum();
        let earned: f64 = report.per_edp.iter().map(|m| m.sharing_benefit).sum();
        assert!(
            (paid - earned).abs() < 1e-9,
            "paid {paid} vs earned {earned}"
        );
    }

    #[test]
    fn mobile_requesters_change_the_market_but_not_its_validity() {
        // Two epochs so the walkers cross at least one epoch boundary:
        // with per-link counter-based fading streams, mobility reaches the
        // market through real handovers (re-association changes which
        // serving links feed `mean_fading`), not through RNG interleaving
        // as in the dense-matrix days.
        let mut cfg = SimConfig::small();
        cfg.epochs = 2;
        cfg.mobility = Some(mfgcp_net::RandomWaypoint::default());
        let mut sim = Simulation::new(cfg, Box::new(RandomReplacement)).unwrap();
        let mobile = sim.run();
        let mut static_cfg = SimConfig::small();
        static_cfg.epochs = 2;
        let static_report = Simulation::new(static_cfg, Box::new(RandomReplacement))
            .unwrap()
            .run();
        assert!(mobile.mean_trading_income() > 0.0);
        // The handovers reroute serving links, so the two runs diverge
        // (same seed otherwise).
        assert!(
            (mobile.mean_utility() - static_report.mean_utility()).abs() > 1e-9,
            "mobility had no effect"
        );
        for s in &mobile.series {
            assert!(s.mean_remaining_space.is_finite());
        }
    }

    #[test]
    fn heterogeneous_content_sizes_respected() {
        let mut cfg = SimConfig::small();
        cfg.content_sizes = vec![0.5, 1.0, 0.25, 0.8];
        let mut sim = Simulation::new(cfg, Box::new(RandomReplacement)).unwrap();
        let report = sim.run();
        assert!(report.mean_trading_income() > 0.0);
        for e in &sim.edps {
            for (k, &q) in e.q.iter().enumerate() {
                assert!(
                    (0.0..=sim.q_sizes[k]).contains(&q),
                    "content {k}: q = {q} outside [0, {}]",
                    sim.q_sizes[k]
                );
            }
        }
    }

    #[test]
    fn invalid_content_sizes_rejected() {
        let mut cfg = SimConfig::small();
        cfg.content_sizes = vec![0.5]; // wrong length
        assert!(Simulation::new(cfg, Box::new(RandomReplacement)).is_err());
        let mut cfg = SimConfig::small();
        cfg.content_sizes = vec![0.5, 1.5, 0.5, 0.5]; // out of range
        assert!(Simulation::new(cfg, Box::new(RandomReplacement)).is_err());
    }

    #[test]
    fn trace_category_mismatch_is_rejected() {
        let cfg = SimConfig::small();
        let trace = Trace::new(2, vec![1.0, 1.0]).unwrap();
        let err = Simulation::with_trace(cfg, Box::new(RandomReplacement), trace);
        assert!(matches!(
            err,
            Err(SimError::BadConfig { name: "trace", .. })
        ));
    }
}
