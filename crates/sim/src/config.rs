//! Simulator configuration with the paper's §V-A defaults.

use mfgcp_core::Params;
use mfgcp_net::{NetworkConfig, RandomWaypoint};
use mfgcp_workload::Catalog;
use mfgcp_workload::TimelinessConfig;

use crate::SimError;

/// Configuration of one finite-population simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of EDPs `M` (paper: 300).
    pub num_edps: usize,
    /// Number of requesters `J`.
    pub num_requesters: usize,
    /// Number of contents `K` (paper: 20).
    pub num_contents: usize,
    /// Optimization epochs to simulate (`σ_max` of Alg. 1).
    pub epochs: usize,
    /// Trading/integration slots per epoch.
    pub slots_per_epoch: usize,
    /// Probability a requester issues a request in one slot.
    pub request_prob: f64,
    /// Zipf steepness `ι` of the initial popularity (Def. 1).
    pub zipf_iota: f64,
    /// Per-content sizes `Q_k` in content units (empty = every content at
    /// `params.q_size`). Enables heterogeneous catalogs: each content gets
    /// its own storage range `[0, Q_k]`, sharing threshold `α·Q_k`, and —
    /// under MFG-CP — its own mean-field equilibrium at that size.
    pub content_sizes: Vec<f64>,
    /// Game/model parameters shared with the mean-field solver.
    pub params: Params,
    /// Wireless network parameters.
    pub network: NetworkConfig,
    /// Requester mobility (random waypoint); `None` = static requesters.
    /// Moving requesters change their link distances every slot and are
    /// re-associated to their nearest EDP at every epoch boundary (§II-A).
    pub mobility: Option<RandomWaypoint>,
    /// Timeliness generation parameters.
    pub timeliness: TimelinessConfig,
    /// Run the `mfgcp-check` conservation auditor alongside the
    /// simulation: per-slot money conservation and case-tally checks,
    /// FPK mass/policy gating of every prepared equilibrium, and the
    /// end-of-run Eq. (10) reconciliation of the slot series against the
    /// per-EDP accumulators. The auditor reads flows the engine computes
    /// anyway, so enabling it never perturbs the run; the report lands in
    /// `SimReport::audit`.
    pub audit: bool,
    /// Audit sampling stride: the auditor's per-slot checks run on every
    /// `audit_sample`-th slot, while the cumulative I1–I3 accumulators
    /// still see every slot (the end-of-run reconciliation stays exact).
    /// `1` checks every slot; larger strides keep the `mfgcp-check` gate
    /// affordable at production scale. Must be at least 1.
    pub audit_sample: usize,
    /// Master RNG seed (per-EDP streams derive from it).
    pub seed: u64,
    /// Worker threads for the parallel per-EDP phase; `0` = one per
    /// available core. Results are bit-identical for any value — every
    /// random draw comes from the owning EDP's private stream.
    pub worker_threads: usize,
    /// Force the sequential (unsharded) trade-resolution loop inside
    /// market clearing instead of the sharded parallel precompute. The
    /// unsharded loop is the bit-parity oracle the sharded path is
    /// differential-tested against; both resolve the exact same pure
    /// per-entry trades in the same fold order, so results are identical
    /// either way — this flag only exists so the oracle stays reachable
    /// from the CLI and the differential tests.
    pub unsharded_market: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_edps: 300,
            num_requesters: 900,
            num_contents: 20,
            epochs: 1,
            slots_per_epoch: 40,
            request_prob: 0.3,
            zipf_iota: 0.8,
            content_sizes: Vec::new(),
            params: Params::default(),
            network: NetworkConfig::default(),
            mobility: None,
            timeliness: TimelinessConfig::default(),
            audit: false,
            audit_sample: 1,
            seed: 42,
            worker_threads: 0,
            unsharded_market: false,
        }
    }
}

impl SimConfig {
    /// A small configuration for unit tests and quick examples.
    pub fn small() -> Self {
        Self {
            num_edps: 12,
            num_requesters: 48,
            num_contents: 4,
            epochs: 1,
            slots_per_epoch: 20,
            params: Params {
                time_steps: 16,
                grid_h: 8,
                grid_q: 32,
                num_edps: 12,
                ..Params::default()
            },
            ..Self::default()
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |name: &'static str, message: &str| SimError::BadConfig {
            name,
            message: message.to_string(),
        };
        if self.num_edps < 2 {
            return Err(bad("num_edps", "need at least 2 EDPs"));
        }
        if self.num_requesters == 0 {
            return Err(bad("num_requesters", "need at least 1 requester"));
        }
        if self.num_contents == 0 {
            return Err(bad("num_contents", "need at least 1 content"));
        }
        if self.epochs == 0 {
            return Err(bad("epochs", "need at least 1 epoch"));
        }
        if self.slots_per_epoch == 0 {
            return Err(bad("slots_per_epoch", "need at least 1 slot"));
        }
        if self.audit_sample == 0 {
            return Err(bad(
                "audit_sample",
                "must be at least 1 (audit every slot); use a larger stride to sample",
            ));
        }
        if self.request_prob.is_nan() || self.request_prob <= 0.0 || self.request_prob > 1.0 {
            return Err(bad("request_prob", "must be in (0, 1]"));
        }
        if self.zipf_iota.is_nan() || self.zipf_iota <= 0.0 {
            return Err(bad("zipf_iota", "must be > 0"));
        }
        if !self.content_sizes.is_empty() {
            if self.content_sizes.len() != self.num_contents {
                return Err(bad(
                    "content_sizes",
                    "must be empty or have one entry per content",
                ));
            }
            if self
                .content_sizes
                .iter()
                .any(|&s| s.is_nan() || s <= 0.0 || s > 1.0)
            {
                return Err(bad("content_sizes", "every size must be in (0, 1]"));
            }
        }
        if self.params.num_edps != self.num_edps {
            return Err(bad(
                "params.num_edps",
                "must equal the simulator population (keeps Eq. (5) and the estimator consistent)",
            ));
        }
        self.params.validate()?;
        Ok(())
    }

    /// Slot duration in epoch time units.
    pub fn slot_dt(&self) -> f64 {
        self.params.t_horizon / self.slots_per_epoch as f64
    }

    /// Derive `num_contents` and `content_sizes` from a workload
    /// [`Catalog`]: each content's size in bytes is normalized by
    /// `reference_bytes` (the storage unit — the paper's 100 MB) and
    /// clamped into `(0, 1]`.
    #[must_use]
    pub fn with_catalog(mut self, catalog: &Catalog, reference_bytes: f64) -> Self {
        assert!(reference_bytes > 0.0, "reference size must be > 0");
        self.num_contents = catalog.len();
        self.content_sizes = catalog
            .iter()
            .map(|(_, c)| (c.size / reference_bytes).clamp(1e-6, 1.0))
            .collect();
        self
    }

    /// The resolved per-content sizes (uniform `params.q_size` fallback).
    pub fn resolved_sizes(&self) -> Vec<f64> {
        if self.content_sizes.is_empty() {
            vec![self.params.q_size; self.num_contents]
        } else {
            self.content_sizes.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_and_validate() {
        let c = SimConfig {
            params: Params {
                num_edps: 300,
                ..Params::default()
            },
            ..SimConfig::default()
        };
        assert_eq!(c.num_edps, 300);
        assert_eq!(c.num_contents, 20);
        c.validate().unwrap();
    }

    #[test]
    fn small_config_validates() {
        SimConfig::small().validate().unwrap();
    }

    #[test]
    fn population_mismatch_is_caught() {
        let mut c = SimConfig::small();
        c.params.num_edps = 99;
        match c.validate() {
            Err(SimError::BadConfig { name, .. }) => assert_eq!(name, "params.num_edps"),
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn bad_fields_are_caught() {
        let base = SimConfig::small();
        let mut c = base.clone();
        c.num_edps = 1;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.request_prob = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.slots_per_epoch = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_audit_sample_is_rejected_with_a_typed_error() {
        let mut c = SimConfig::small();
        c.audit_sample = 0;
        match c.validate() {
            Err(SimError::BadConfig { name, .. }) => assert_eq!(name, "audit_sample"),
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn with_catalog_normalizes_sizes() {
        use mfgcp_workload::Content;
        let catalog = Catalog::new(vec![
            Content::new(100e6, 3600.0).unwrap(),
            Content::new(50e6, 3600.0).unwrap(),
            Content::new(250e6, 3600.0).unwrap(), // clamped to the unit
        ])
        .unwrap();
        let cfg = SimConfig::small().with_catalog(&catalog, 100e6);
        assert_eq!(cfg.num_contents, 3);
        assert_eq!(cfg.content_sizes, vec![1.0, 0.5, 1.0]);
    }

    #[test]
    fn slot_dt_divides_the_horizon() {
        let c = SimConfig::small();
        assert!((c.slot_dt() * c.slots_per_epoch as f64 - c.params.t_horizon).abs() < 1e-12);
    }
}
