//! Property tests for the per-slot trade resolution (`resolve_trade`) —
//! the Alg. 1 lines 11–14 economics that every scheme's metrics flow
//! through. The conservation auditor (`mfgcp-check`) enforces the same
//! facts at run time; these tests pin them at the unit level.

use mfgcp_sim::{resolve_trade, TradeCase};
use proptest::{prop_assert, proptest};

/// Common strategy space: a content in `(0, 1]` units, a sharing
/// threshold strictly inside it, and economically sane coefficients.
fn scale(q_size: f64, frac: f64) -> f64 {
    q_size * frac
}

proptest! {
    #[test]
    fn income_is_nonnegative_finite_and_linear_in_requests(
        (q_size, alpha, q_frac, peer_frac) in (0.2f64..=1.0, 0.05f64..=0.5, 0.0f64..=1.0, 0.0f64..=1.0),
        (price, rate_edge, center_rate) in (0.0f64..=5.0, 0.5f64..=10.0, 0.5f64..=10.0),
        (eta2, p_bar, requests, with_peer) in (0.1f64..=2.0, 0.1f64..=2.0, 1u64..=20, 0u8..=1),
    ) {
        let alpha_qk = scale(q_size, alpha);
        let q_own = scale(q_size, q_frac);
        // A qualified peer holds q_peer ≤ α·Q_k.
        let peer = (with_peer == 1).then(|| (7usize, scale(alpha_qk, peer_frac)));
        let resolve = |r: u64| {
            resolve_trade(
                q_size, alpha_qk, q_own, peer, price, r, rate_edge, center_rate, eta2, p_bar,
            )
        };
        let one = resolve(1);
        let many = resolve(requests);
        prop_assert!(one.income >= 0.0 && one.income.is_finite());
        prop_assert!(many.income >= 0.0 && many.income.is_finite());
        prop_assert!(many.staleness_cost >= 0.0 && many.staleness_cost.is_finite());
        // Income and per-request delay scale linearly in the batch size
        // (each request sells and ships the same completed portion).
        let r = requests as f64;
        prop_assert!(
            (many.income - r * one.income).abs() <= 1e-12 * (r * one.income).abs().max(1.0),
            "income not linear: {} vs {} × {}", many.income, r, one.income
        );
        prop_assert!(
            (many.staleness_cost - r * one.staleness_cost).abs()
                <= 1e-12 * (r * one.staleness_cost).abs().max(1.0),
            "staleness not linear: {} vs {} × {}", many.staleness_cost, r, one.staleness_cost
        );
        // The sharing fee is per batch, not per request, and never negative.
        prop_assert!(many.sharing_cost >= 0.0 && many.sharing_cost.is_finite());
        prop_assert!(many.sharing_cost.to_bits() == one.sharing_cost.to_bits());
    }

    #[test]
    fn peer_share_requires_a_short_buyer_and_an_offered_peer(
        (q_size, alpha, q_frac, peer_frac) in (0.2f64..=1.0, 0.05f64..=0.5, 0.0f64..=1.0, 0.0f64..=1.0),
        (requests, with_peer) in (0u64..=10, 0u8..=1),
    ) {
        let alpha_qk = scale(q_size, alpha);
        let q_own = scale(q_size, q_frac);
        let peer = (with_peer == 1).then(|| (3usize, scale(alpha_qk, peer_frac)));
        let out = resolve_trade(
            q_size, alpha_qk, q_own, peer, 4.0, requests, 5.0, 2.5, 1.0, 1.0,
        );
        // Case 2 fires exactly when: some requests, the buyer is above the
        // sharing threshold, and a peer was offered.
        let expect_share = requests > 0 && q_own > alpha_qk && peer.is_some();
        prop_assert!(
            (out.case == TradeCase::PeerShare) == expect_share,
            "case {:?} with q_own {q_own}, threshold {alpha_qk}, peer {peer:?}, r {requests}",
            out.case
        );
        // The peer and the fee travel together: both present in case 2,
        // both absent otherwise.
        prop_assert!(out.peer.is_some() == expect_share);
        if !expect_share {
            prop_assert!(out.sharing_cost == 0.0);
        }
        prop_assert!(out.sharing_cost >= 0.0);
    }

    #[test]
    fn center_download_is_never_fresher_than_own_cache(
        (q_size, alpha, low_frac, high_frac) in (0.2f64..=1.0, 0.05f64..=0.5, 0.0f64..=1.0, 0.0f64..=1.0),
        (requests, rate_edge, center_rate, eta2) in (1u64..=10, 0.5f64..=10.0, 0.5f64..=10.0, 0.1f64..=2.0),
    ) {
        // The staleness ordering that drives the whole game (§III-A): for
        // any well-stocked state q_low ≤ α·Q_k (case 1) and any
        // under-stocked state q_high > α·Q_k (case 3), the center route
        // ships the whole content plus a center fetch, so it is at least
        // as stale as serving from cache.
        let alpha_qk = scale(q_size, alpha);
        let q_low = scale(alpha_qk, low_frac);
        let q_high = alpha_qk + (q_size - alpha_qk) * high_frac.max(1e-6);
        let resolve = |q_own: f64| {
            resolve_trade(
                q_size, alpha_qk, q_own, None, 4.0, requests, rate_edge, center_rate, eta2, 1.0,
            )
        };
        let cached = resolve(q_low);
        let center = resolve(q_high);
        prop_assert!(cached.case == TradeCase::OwnCache);
        prop_assert!(center.case == TradeCase::CenterDownload);
        prop_assert!(
            center.staleness_cost >= cached.staleness_cost,
            "center {} fresher than cache {}",
            center.staleness_cost,
            cached.staleness_cost
        );
    }
}
