//! The content catalog `K = {1, …, K}` held by the cloud center (§II-B).

use crate::WorkloadError;

/// Identifier of a content category (index into the catalog).
pub type ContentId = usize;

/// One content: its data size `Q_k` (bytes) and center update period
/// (seconds) — "each of which will be updated at different frequencies"
/// (§II-B, e.g. traffic data hourly, financial news daily).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Content {
    /// Data size `Q_k` in bytes.
    pub size: f64,
    /// How often the center refreshes this content, in seconds.
    pub update_period: f64,
}

impl Content {
    /// Create a content description.
    ///
    /// # Errors
    ///
    /// Returns an error if either field is not strictly positive.
    pub fn new(size: f64, update_period: f64) -> Result<Self, WorkloadError> {
        if size.is_nan() || size <= 0.0 || !size.is_finite() {
            return Err(WorkloadError::NonPositive {
                name: "size",
                value: size,
            });
        }
        if update_period.is_nan() || update_period <= 0.0 || !update_period.is_finite() {
            return Err(WorkloadError::NonPositive {
                name: "update_period",
                value: update_period,
            });
        }
        Ok(Self {
            size,
            update_period,
        })
    }
}

/// The full content catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    contents: Vec<Content>,
}

/// One megabyte in bytes; the paper quotes sizes in MB (`Q_k = 100 MB`).
pub const MEGABYTE: f64 = 1_000_000.0;

impl Catalog {
    /// Build a catalog from explicit contents.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyCatalog`] when `contents` is empty.
    pub fn new(contents: Vec<Content>) -> Result<Self, WorkloadError> {
        if contents.is_empty() {
            return Err(WorkloadError::EmptyCatalog);
        }
        Ok(Self { contents })
    }

    /// The paper's default catalog: `K` contents of `size_mb` MB each with
    /// a one-hour update period.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0` or `size_mb <= 0`.
    pub fn uniform(k: usize, size_mb: f64) -> Result<Self, WorkloadError> {
        if k == 0 {
            return Err(WorkloadError::EmptyCatalog);
        }
        let c = Content::new(size_mb * MEGABYTE, 3600.0)?;
        Ok(Self {
            contents: vec![c; k],
        })
    }

    /// Number of contents `K`.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// Whether the catalog is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The content with id `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn content(&self, k: ContentId) -> &Content {
        &self.contents[k]
    }

    /// Size `Q_k` in bytes.
    pub fn size(&self, k: ContentId) -> f64 {
        self.contents[k].size
    }

    /// Iterate over `(id, content)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ContentId, &Content)> {
        self.contents.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_matches_paper_defaults() {
        let cat = Catalog::uniform(20, 100.0).unwrap();
        assert_eq!(cat.len(), 20);
        assert_eq!(cat.size(0), 100.0 * MEGABYTE);
        assert_eq!(cat.content(19).update_period, 3600.0);
    }

    #[test]
    fn empty_catalog_rejected() {
        assert_eq!(Catalog::new(vec![]), Err(WorkloadError::EmptyCatalog));
        assert!(Catalog::uniform(0, 100.0).is_err());
    }

    #[test]
    fn bad_content_rejected() {
        assert!(Content::new(0.0, 1.0).is_err());
        assert!(Content::new(1.0, -5.0).is_err());
        assert!(Content::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn iter_enumerates_in_order() {
        let cat = Catalog::uniform(3, 10.0).unwrap();
        let ids: Vec<usize> = cat.iter().map(|(k, _)| k).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
