//! Content/workload substrate for the MFG-CP reproduction.
//!
//! Implements the edge-caching workload model of §II-B:
//!
//! * a [`Catalog`] of `K` contents with sizes `Q_k` and update frequencies;
//! * [`Zipf`] initial content popularity (Def. 1:
//!   `Π_k(t₀) = k^{−ι} / Σ k^{−ι}`);
//! * the request-driven popularity update of Eq. (3) in [`Popularity`];
//! * content timeliness `L_k` (Def. 2) aggregated from per-requester
//!   requirements in [`Timeliness`];
//! * per-slot request generation ([`RequestProcess`]), either synthetic or
//!   trace-driven;
//! * the trace layer ([`trace`]): a synthetic YouTube-like category trace
//!   (the substitution for the Kaggle "Trending YouTube Video Statistics"
//!   dataset — see `DESIGN.md` §3) plus a CSV loader accepting the real
//!   Kaggle schema so the genuine dataset can be dropped in.
//!
//! # Example
//!
//! ```
//! use mfgcp_workload::{Popularity, RequestProcess, TimelinessConfig};
//!
//! // Zipf prior over 5 contents (Def. 1), updated by a slot of requests
//! // (Eq. (3)) generated from a trace-weighted request process.
//! let process = RequestProcess::new(
//!     0.5,
//!     vec![4.0, 2.0, 1.0, 1.0, 1.0],
//!     TimelinessConfig::default(),
//! ).unwrap();
//! let mut rng = mfgcp_sde::seeded_rng(7);
//! let batch = process.generate(100, &mut rng);
//! let mut popularity = Popularity::zipf(5, 0.8).unwrap();
//! popularity.update(&batch.counts);
//! let total: f64 = popularity.all().iter().sum();
//! assert!((total - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod popularity;
mod requests;
mod timeliness;
pub mod trace;
mod zipf;

pub use catalog::{Catalog, Content, ContentId};
pub use popularity::Popularity;
pub use requests::{RequestBatch, RequestProcess};
pub use timeliness::{Timeliness, TimelinessConfig};
pub use zipf::Zipf;

/// Errors from workload construction and trace parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
    /// The catalog must contain at least one content.
    EmptyCatalog,
    /// A CSV trace line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
            WorkloadError::EmptyCatalog => write!(f, "catalog must contain at least one content"),
            WorkloadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(WorkloadError::EmptyCatalog.to_string().contains("catalog"));
        assert!(WorkloadError::NonPositive {
            name: "iota",
            value: 0.0
        }
        .to_string()
        .contains("iota"));
        assert!(WorkloadError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
