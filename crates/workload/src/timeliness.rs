//! Content timeliness (Def. 2): each requester `j ∈ I_k(t)` attaches an
//! urgency `L_{k,j} ∈ [0, L_max]`; the EDP tracks the running average
//! `L_k(t) = Σ_j L_{k,j} / |I_k(t)|`. Larger `L` means the content is
//! wanted sooner; in Eq. (4) the factor `ξ^{L_k(t)}`, `ξ ∈ (0, 1)`, shrinks
//! the discard rate for urgent contents.

use rand::{Rng, RngExt as _};

use crate::WorkloadError;

/// Parameters controlling requester urgency generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinessConfig {
    /// Maximum urgency `L_max`.
    pub l_max: f64,
    /// Pre-fixed steepness parameter `ξ ∈ (0, 1)` of Eq. (4).
    pub xi: f64,
    /// Exponential-smoothing weight `α ∈ (0, 1]` of the running average:
    /// `L_k ← (1−α)·L_k + α·(batch mean)`. Def. 2 averages over `I_k(t)`;
    /// when a slot carries only a handful of requests the raw batch mean
    /// fluctuates so hard that `E[ξ^L] ≫ ξ^{E[L]}` (Jensen), biasing the
    /// Eq. (4) discard drift — smoothing across slots recovers the
    /// population average Def. 2 intends. `α = 1` reproduces the raw
    /// per-slot estimator.
    pub smoothing: f64,
}

impl Default for TimelinessConfig {
    fn default() -> Self {
        // ξ = 0.1 is the paper's §V-A setting; L_max = 5 gives ξ^L a
        // dynamic range of 1 … 1e-5, plenty to differentiate urgencies.
        Self {
            l_max: 5.0,
            xi: 0.1,
            smoothing: 0.2,
        }
    }
}

impl TimelinessConfig {
    /// Validate a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns an error unless `l_max > 0` and `0 < ξ < 1`.
    pub fn new(l_max: f64, xi: f64) -> Result<Self, WorkloadError> {
        Self::with_smoothing(l_max, xi, 0.2)
    }

    /// Validate a configuration with an explicit smoothing weight.
    ///
    /// # Errors
    ///
    /// Returns an error unless `l_max > 0`, `0 < ξ < 1`, `0 < α <= 1`.
    pub fn with_smoothing(l_max: f64, xi: f64, smoothing: f64) -> Result<Self, WorkloadError> {
        if l_max.is_nan() || l_max <= 0.0 || !l_max.is_finite() {
            return Err(WorkloadError::NonPositive {
                name: "l_max",
                value: l_max,
            });
        }
        if xi.is_nan() || xi <= 0.0 || xi >= 1.0 {
            return Err(WorkloadError::NonPositive {
                name: "xi",
                value: xi,
            });
        }
        if smoothing.is_nan() || smoothing <= 0.0 || smoothing > 1.0 {
            return Err(WorkloadError::NonPositive {
                name: "smoothing",
                value: smoothing,
            });
        }
        Ok(Self {
            l_max,
            xi,
            smoothing,
        })
    }

    /// The urgency factor `ξ^L` appearing in the caching dynamics (Eq. (4)).
    pub fn urgency_factor(&self, l: f64) -> f64 {
        self.xi.powf(l.clamp(0.0, self.l_max))
    }
}

/// Per-content running-average timeliness for one EDP.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeliness {
    config: TimelinessConfig,
    current: Vec<f64>,
}

impl Timeliness {
    /// Start with all contents at half of `L_max` (no information yet).
    pub fn new(k: usize, config: TimelinessConfig) -> Self {
        Self {
            current: vec![config.l_max / 2.0; k],
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimelinessConfig {
        &self.config
    }

    /// Current average urgency `L_k(t)`.
    pub fn get(&self, k: usize) -> f64 {
        self.current[k]
    }

    /// The urgency factor `ξ^{L_k(t)}` for content `k`.
    pub fn factor(&self, k: usize) -> f64 {
        self.config.urgency_factor(self.current[k])
    }

    /// Record the per-request urgencies for content `k` in this slot and
    /// update the running average (Def. 2 with exponential smoothing —
    /// see [`TimelinessConfig::smoothing`]). Empty slices leave the
    /// average unchanged (no requesters expressed a requirement).
    pub fn observe(&mut self, k: usize, urgencies: &[f64]) {
        if urgencies.is_empty() {
            return;
        }
        let sum: f64 = urgencies
            .iter()
            .map(|l| l.clamp(0.0, self.config.l_max))
            .sum();
        let batch_mean = sum / urgencies.len() as f64;
        let alpha = self.config.smoothing;
        self.current[k] = (1.0 - alpha) * self.current[k] + alpha * batch_mean;
    }

    /// Draw a requester urgency uniformly in `[0, L_max]`.
    pub fn sample_requirement<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.random_range(0.0..self.config.l_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    #[test]
    fn observe_blends_towards_the_batch_average() {
        let mut t = Timeliness::new(2, TimelinessConfig::default());
        // Start at L_max/2 = 2.5; batch mean 2.0; α = 0.2.
        t.observe(0, &[1.0, 3.0]);
        assert!((t.get(0) - (0.8 * 2.5 + 0.2 * 2.0)).abs() < 1e-12);
        // Content 1 untouched.
        assert_eq!(t.get(1), 2.5);
        // Repeated identical batches converge to the batch mean.
        for _ in 0..200 {
            t.observe(0, &[1.0, 3.0]);
        }
        assert!((t.get(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_reproduces_the_raw_estimator() {
        let cfg = TimelinessConfig::with_smoothing(5.0, 0.1, 1.0).unwrap();
        let mut t = Timeliness::new(1, cfg);
        t.observe(0, &[1.0, 3.0]);
        assert_eq!(t.get(0), 2.0);
    }

    #[test]
    fn observe_clamps_out_of_range_urgencies() {
        let cfg = TimelinessConfig::with_smoothing(5.0, 0.1, 1.0).unwrap();
        let mut t = Timeliness::new(1, cfg);
        t.observe(0, &[-1.0, 99.0]);
        assert_eq!(t.get(0), 2.5); // (0 + 5) / 2
    }

    #[test]
    fn empty_observation_is_a_noop() {
        let mut t = Timeliness::new(1, TimelinessConfig::default());
        let before = t.get(0);
        t.observe(0, &[]);
        assert_eq!(t.get(0), before);
    }

    #[test]
    fn urgency_factor_decreases_with_urgency() {
        let cfg = TimelinessConfig::default();
        assert_eq!(cfg.urgency_factor(0.0), 1.0);
        assert!(cfg.urgency_factor(1.0) < 1.0);
        assert!(cfg.urgency_factor(2.0) < cfg.urgency_factor(1.0));
        // ξ = 0.1 → factor(1) = 0.1 exactly.
        assert!((cfg.urgency_factor(1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert!(TimelinessConfig::new(0.0, 0.1).is_err());
        assert!(TimelinessConfig::new(5.0, 0.0).is_err());
        assert!(TimelinessConfig::new(5.0, 1.0).is_err());
        assert!(TimelinessConfig::new(5.0, 0.5).is_ok());
        assert!(TimelinessConfig::with_smoothing(5.0, 0.1, 0.0).is_err());
        assert!(TimelinessConfig::with_smoothing(5.0, 0.1, 1.1).is_err());
        assert!(TimelinessConfig::with_smoothing(5.0, 0.1, 1.0).is_ok());
    }

    #[test]
    fn sampled_requirements_stay_in_range() {
        let t = Timeliness::new(1, TimelinessConfig::default());
        let mut rng = seeded_rng(15);
        for _ in 0..1_000 {
            let l = t.sample_requirement(&mut rng);
            assert!((0.0..5.0).contains(&l));
        }
    }
}
