//! Trace layer: per-category request intensities over epochs.
//!
//! The paper's simulations are "trace-driven": "the number of requests for
//! each category is obtained from real-world YouTube Data" (§V-A, the
//! Kaggle *Trending YouTube Video Statistics* dataset). That dataset cannot
//! be redistributed here, so this module provides two sources with the same
//! interface:
//!
//! * [`SyntheticYoutubeTrace`] — a generator reproducing the statistical
//!   features the paper extracts from the trace: `K` categories with
//!   Zipf-distributed base popularity, heavy-tailed (log-normal) per-epoch
//!   view volumes, day-scale periodicity and slow trend drift. Any request
//!   process with these marginals exercises exactly the same code paths
//!   (the trace only ever enters through the counts `|I_k(t)|`).
//! * [`parse_kaggle_csv`] — a loader for the genuine Kaggle schema
//!   (`video_id, trending_date, …, category_id, …, views, …`), so the real
//!   dataset can be dropped in unchanged.

use std::collections::BTreeMap;

use rand::{Rng, RngExt as _};

use mfgcp_sde::StandardNormal;

use crate::zipf::Zipf;
use crate::WorkloadError;

/// A per-category intensity matrix: `epochs × categories` non-negative
/// weights proportional to the expected request volume.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    categories: usize,
    /// Row-major `[epoch][category]` weights.
    weights: Vec<f64>,
}

impl Trace {
    /// Build a trace from row-major weights.
    ///
    /// # Errors
    ///
    /// Returns an error if `categories == 0` or the weight vector is not a
    /// whole number of epochs.
    pub fn new(categories: usize, weights: Vec<f64>) -> Result<Self, WorkloadError> {
        if categories == 0 || weights.is_empty() {
            return Err(WorkloadError::EmptyCatalog);
        }
        if weights.len() % categories != 0 {
            return Err(WorkloadError::Parse {
                line: 0,
                message: format!(
                    "weight vector length {} is not a multiple of {categories}",
                    weights.len()
                ),
            });
        }
        Ok(Self {
            categories,
            weights,
        })
    }

    /// Number of categories `K`.
    pub fn num_categories(&self) -> usize {
        self.categories
    }

    /// Number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.weights.len() / self.categories
    }

    /// Raw weights for one epoch (clamped to the last epoch when `epoch`
    /// runs past the trace, so simulations may outlive the trace).
    pub fn weights(&self, epoch: usize) -> &[f64] {
        let e = epoch.min(self.num_epochs() - 1);
        &self.weights[e * self.categories..(e + 1) * self.categories]
    }

    /// Weights for one epoch normalized into a probability vector
    /// (uniform when the epoch is all zeros).
    pub fn normalized_weights(&self, epoch: usize) -> Vec<f64> {
        let w = self.weights(epoch);
        let total: f64 = w.iter().sum();
        if total > 0.0 {
            w.iter().map(|x| x / total).collect()
        } else {
            vec![1.0 / self.categories as f64; self.categories]
        }
    }

    /// Average weight of each category across all epochs (a long-run
    /// popularity prior).
    pub fn mean_weights(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.categories];
        for e in 0..self.num_epochs() {
            for (a, w) in acc.iter_mut().zip(self.weights(e)) {
                *a += w;
            }
        }
        let inv = 1.0 / self.num_epochs() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }
}

/// Generator configuration for the synthetic YouTube-like trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticYoutubeTrace {
    /// Number of categories `K` (paper: 20).
    pub categories: usize,
    /// Number of epochs to generate.
    pub epochs: usize,
    /// Zipf steepness of the base category popularity.
    pub zipf_iota: f64,
    /// Epochs per diurnal cycle (day-scale periodicity of trending data).
    pub period: usize,
    /// Amplitude of the diurnal modulation in `[0, 1)`.
    pub seasonal_amplitude: f64,
    /// Standard deviation of the per-epoch log-normal volume noise.
    pub volume_sigma: f64,
    /// Per-epoch standard deviation of the slow log-popularity drift
    /// ("cocktail" trends: categories rise and fall over the trace).
    pub drift_sigma: f64,
}

impl Default for SyntheticYoutubeTrace {
    fn default() -> Self {
        Self {
            categories: 20,
            epochs: 200,
            // ι ≈ 0.9 reproduces the skew of trending-video categories:
            // a few categories (music, entertainment) dominate.
            zipf_iota: 0.9,
            period: 24,
            seasonal_amplitude: 0.3,
            volume_sigma: 0.35,
            drift_sigma: 0.05,
        }
    }
}

impl SyntheticYoutubeTrace {
    /// Generate the trace.
    ///
    /// # Errors
    ///
    /// Returns an error if `categories == 0`, `epochs == 0` or the Zipf
    /// parameter is invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Trace, WorkloadError> {
        if self.epochs == 0 {
            return Err(WorkloadError::EmptyCatalog);
        }
        let zipf = Zipf::new(self.categories, self.zipf_iota)?;
        // Slowly drifting log-popularity per category.
        let mut log_pop: Vec<f64> = zipf.probabilities().iter().map(|p| p.ln()).collect();
        let mut weights = Vec::with_capacity(self.categories * self.epochs);
        // Random phase per category so diurnal peaks are not synchronized.
        let phases: Vec<f64> = (0..self.categories)
            .map(|_| rng.random_range(0.0..core::f64::consts::TAU))
            .collect();
        for e in 0..self.epochs {
            let t = e as f64 / self.period.max(1) as f64 * core::f64::consts::TAU;
            for k in 0..self.categories {
                // Trend drift (random walk in log space).
                log_pop[k] += self.drift_sigma * StandardNormal.sample(rng);
                let seasonal = 1.0 + self.seasonal_amplitude * (t + phases[k]).sin();
                let volume = (self.volume_sigma * StandardNormal.sample(rng)).exp();
                weights.push(log_pop[k].exp() * seasonal.max(0.05) * volume);
            }
        }
        Trace::new(self.categories, weights)
    }
}

/// Minimal CSV field splitter handling RFC-4180 quoting (titles and tags in
/// the Kaggle dump contain commas and escaped quotes).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Parse a Kaggle *Trending YouTube Video Statistics* CSV into a [`Trace`].
///
/// Epochs are the distinct `trending_date` values in order of first
/// appearance; the weight of a category in an epoch is the sum of `views`
/// of its rows on that date. Category ids are remapped densely in order of
/// first appearance; `num_categories` pads/limits the output (the paper
/// uses `K = 20` categories).
///
/// # Errors
///
/// Returns a parse error when required columns are missing or numeric
/// fields are malformed.
pub fn parse_kaggle_csv(text: &str, num_categories: usize) -> Result<Trace, WorkloadError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(WorkloadError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let cols = split_csv_line(header);
    let find = |name: &str| -> Result<usize, WorkloadError> {
        cols.iter()
            .position(|c| c.trim() == name)
            .ok_or_else(|| WorkloadError::Parse {
                line: 1,
                message: format!("missing column `{name}`"),
            })
    };
    let date_col = find("trending_date")?;
    let cat_col = find("category_id")?;
    let views_col = find("views")?;

    let mut date_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut date_order: Vec<String> = Vec::new();
    let mut cat_index: BTreeMap<String, usize> = BTreeMap::new();
    // (epoch, category) -> views
    let mut cells: BTreeMap<(usize, usize), f64> = BTreeMap::new();

    for (line_no, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line);
        let needed = date_col.max(cat_col).max(views_col);
        if fields.len() <= needed {
            return Err(WorkloadError::Parse {
                line: line_no + 1,
                message: format!(
                    "expected at least {} fields, got {}",
                    needed + 1,
                    fields.len()
                ),
            });
        }
        let date = fields[date_col].trim().to_owned();
        let epoch = *date_index.entry(date.clone()).or_insert_with(|| {
            date_order.push(date);
            date_order.len() - 1
        });
        let cat_key = fields[cat_col].trim().to_owned();
        let next_cat = cat_index.len();
        let cat = *cat_index.entry(cat_key).or_insert(next_cat);
        if cat >= num_categories {
            continue; // beyond the K categories the experiment keeps
        }
        let views: f64 = fields[views_col]
            .trim()
            .parse()
            .map_err(|e| WorkloadError::Parse {
                line: line_no + 1,
                message: format!("bad views value: {e}"),
            })?;
        *cells.entry((epoch, cat)).or_insert(0.0) += views;
    }

    if date_order.is_empty() {
        return Err(WorkloadError::Parse {
            line: 2,
            message: "no data rows".into(),
        });
    }
    let epochs = date_order.len();
    let mut weights = vec![0.0; epochs * num_categories];
    for ((e, k), v) in cells {
        weights[e * num_categories + k] = v;
    }
    Trace::new(num_categories, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    #[test]
    fn synthetic_trace_has_requested_shape() {
        let mut rng = seeded_rng(19);
        let cfg = SyntheticYoutubeTrace {
            categories: 20,
            epochs: 50,
            ..Default::default()
        };
        let t = cfg.generate(&mut rng).unwrap();
        assert_eq!(t.num_categories(), 20);
        assert_eq!(t.num_epochs(), 50);
        assert!(t.weights(0).iter().all(|&w| w > 0.0));
    }

    #[test]
    fn synthetic_trace_is_zipf_skewed_on_average() {
        let mut rng = seeded_rng(20);
        let cfg = SyntheticYoutubeTrace {
            epochs: 400,
            drift_sigma: 0.0,
            ..Default::default()
        };
        let t = cfg.generate(&mut rng).unwrap();
        let means = t.mean_weights();
        // Head categories should dominate tail categories on average.
        assert!(
            means[0] > means[19] * 2.0,
            "head {} tail {}",
            means[0],
            means[19]
        );
    }

    #[test]
    fn normalized_weights_sum_to_one() {
        let mut rng = seeded_rng(21);
        let t = SyntheticYoutubeTrace::default().generate(&mut rng).unwrap();
        for e in [0, 10, 199] {
            let w = t.normalized_weights(e);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "epoch {e}");
        }
    }

    #[test]
    fn epoch_clamping_allows_long_simulations() {
        let t = Trace::new(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.weights(0), &[1.0, 2.0]);
        assert_eq!(t.weights(1), &[3.0, 4.0]);
        assert_eq!(t.weights(99), &[3.0, 4.0]);
    }

    #[test]
    fn trace_shape_validation() {
        assert!(Trace::new(0, vec![1.0]).is_err());
        assert!(Trace::new(2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Trace::new(2, vec![]).is_err());
    }

    const SAMPLE_CSV: &str = "\
video_id,trending_date,title,channel_title,category_id,publish_time,tags,views,likes
a1,17.14.11,\"Song, the \"\"Best\"\"\",Ch1,10,2017-11-13,music,1000,10
a2,17.14.11,Plain title,Ch2,24,2017-11-13,fun,500,5
a3,17.15.11,Another,Ch1,10,2017-11-14,music,2000,20
a4,17.15.11,More,Ch3,24,2017-11-14,fun,100,1
";

    #[test]
    fn kaggle_csv_parses_with_quoted_titles() {
        let t = parse_kaggle_csv(SAMPLE_CSV, 20).unwrap();
        assert_eq!(t.num_epochs(), 2);
        assert_eq!(t.num_categories(), 20);
        // Category 10 → dense index 0, category 24 → dense index 1.
        assert_eq!(t.weights(0)[0], 1000.0);
        assert_eq!(t.weights(0)[1], 500.0);
        assert_eq!(t.weights(1)[0], 2000.0);
        assert_eq!(t.weights(1)[1], 100.0);
    }

    #[test]
    fn kaggle_csv_missing_column_is_reported() {
        let err = parse_kaggle_csv("a,b,c\n1,2,3\n", 5).unwrap_err();
        match err {
            WorkloadError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("trending_date"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn kaggle_csv_bad_views_is_reported_with_line() {
        let bad = "trending_date,category_id,views\nd1,10,notanumber\n";
        let err = parse_kaggle_csv(bad, 5).unwrap_err();
        match err {
            WorkloadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn csv_splitter_handles_escaped_quotes() {
        let fields = split_csv_line("a,\"b,\"\"c\"\"\",d");
        assert_eq!(fields, vec!["a", "b,\"c\"", "d"]);
    }
}
