//! The Zipf distribution of Def. 1:
//! `Π_k(t₀) = (1/k^ι) / Σ_{k'=1}^{K} 1/k'^ι` for ranks `k = 1..K`.
//!
//! Implemented in-tree (the approved dependency list has no `rand_distr`):
//! probabilities are precomputed and sampling uses inverse-CDF binary search.

use rand::{Rng, RngExt as _};

use crate::WorkloadError;

/// A Zipf distribution over ranks `0..K` (0-based indices; the paper's rank
/// `k` is `index + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    probabilities: Vec<f64>,
    cumulative: Vec<f64>,
    iota: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `k` ranks with steepness `ι > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0` or `ι <= 0`.
    pub fn new(k: usize, iota: f64) -> Result<Self, WorkloadError> {
        if k == 0 {
            return Err(WorkloadError::EmptyCatalog);
        }
        if iota.is_nan() || iota <= 0.0 || !iota.is_finite() {
            return Err(WorkloadError::NonPositive {
                name: "iota",
                value: iota,
            });
        }
        let mut probabilities: Vec<f64> = (1..=k).map(|rank| (rank as f64).powf(-iota)).collect();
        let total: f64 = probabilities.iter().sum();
        for p in &mut probabilities {
            *p /= total;
        }
        let mut cumulative = Vec::with_capacity(k);
        let mut acc = 0.0;
        for &p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall in the last bucket.
        *cumulative.last_mut().expect("k >= 1") = 1.0;
        Ok(Self {
            probabilities,
            cumulative,
            iota,
        })
    }

    /// The steepness parameter `ι`.
    pub fn iota(&self) -> f64 {
        self.iota
    }

    /// Number of ranks `K`.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        self.probabilities[k]
    }

    /// All probabilities, most popular first.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Sample a rank (0-based) by inverse-CDF binary search.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(20, 0.8).unwrap();
        let sum: f64 = z.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for w in z.probabilities().windows(2) {
            assert!(w[0] > w[1], "Zipf pmf must be strictly decreasing");
        }
    }

    #[test]
    fn matches_the_paper_formula() {
        let iota = 1.2;
        let k = 5;
        let z = Zipf::new(k, iota).unwrap();
        let norm: f64 = (1..=k).map(|r| (r as f64).powf(-iota)).sum();
        for r in 1..=k {
            let expected = (r as f64).powf(-iota) / norm;
            assert!((z.pmf(r - 1) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(4, 1.0).unwrap();
        let mut rng = seeded_rng(13);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: {freq} vs {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn degenerate_and_invalid_inputs() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, 0.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        let z = Zipf::new(1, 1.0).unwrap();
        assert_eq!(z.pmf(0), 1.0);
        let mut rng = seeded_rng(14);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn steeper_iota_concentrates_mass() {
        let flat = Zipf::new(10, 0.5).unwrap();
        let steep = Zipf::new(10, 2.0).unwrap();
        assert!(steep.pmf(0) > flat.pmf(0));
        assert!(steep.pmf(9) < flat.pmf(9));
    }
}
