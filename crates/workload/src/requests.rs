//! Per-slot request generation: the requester population asks for contents
//! according to a (possibly trace-driven) popularity profile, producing the
//! request sets `I_k(t)` with per-request timeliness requirements (Def. 2).

use mfgcp_sde::{seeded_rng, SimRng};
use rand::{Rng, RngExt as _};

use crate::timeliness::TimelinessConfig;
use crate::WorkloadError;

/// SplitMix64 finalizer: the bijective avalanche mix used to derive
/// per-requester request-stream keys (same idiom as the per-link channel
/// streams in `mfgcp-net`).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fresh single-use RNG for requester `requester`'s draws in global slot
/// `slot` under `seed`. One stream per (requester, slot) pair: the gate,
/// content-choice, and urgency draws all come from it, so a requester's
/// demand is a pure function of its identity and the slot — independent
/// of which host EDP (or thread) generates it.
#[inline]
fn requester_rng(seed: u64, requester: usize, slot: u64) -> SimRng {
    let a = mix(seed ^ (requester as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    seeded_rng(mix(a ^ slot.wrapping_mul(0x2545_F491_4F6C_DD1D)))
}

/// The outcome of one slot of requests at one EDP: per-content counts
/// `|I_k(t)|` and the per-request urgencies `L_{k,j}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestBatch {
    /// `counts[k] = |I_k(t)|`.
    pub counts: Vec<usize>,
    /// `urgencies[k]` = the urgency each requester in `I_k(t)` declared.
    pub urgencies: Vec<Vec<f64>>,
}

impl RequestBatch {
    /// An empty batch over `k` contents.
    pub fn empty(k: usize) -> Self {
        Self {
            counts: vec![0; k],
            urgencies: vec![Vec::new(); k],
        }
    }

    /// Total number of requests in the slot, `Σ_k |I_k(t)|`.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Generates request batches from a per-requester request probability and a
/// content-choice weight profile (updatable each epoch, e.g. from a trace).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProcess {
    /// Probability that a given requester issues a request in one slot.
    request_prob: f64,
    /// Content-choice weights (renormalized on set).
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    timeliness: TimelinessConfig,
}

impl RequestProcess {
    /// Create a process over `weights.len()` contents.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty or `request_prob` is outside
    /// `(0, 1]`.
    pub fn new(
        request_prob: f64,
        weights: Vec<f64>,
        timeliness: TimelinessConfig,
    ) -> Result<Self, WorkloadError> {
        if weights.is_empty() {
            return Err(WorkloadError::EmptyCatalog);
        }
        if request_prob.is_nan() || request_prob <= 0.0 || request_prob > 1.0 {
            return Err(WorkloadError::NonPositive {
                name: "request_prob",
                value: request_prob,
            });
        }
        let mut p = Self {
            request_prob,
            weights: Vec::new(),
            cumulative: Vec::new(),
            timeliness,
        };
        p.set_weights(weights);
        Ok(p)
    }

    /// Number of contents.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the catalog is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replace the content-choice weights (e.g. when a trace advances to
    /// the next epoch). Non-positive totals fall back to uniform.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the current catalog size,
    /// unless the process is still empty (first call from `new`).
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        if !self.weights.is_empty() {
            assert_eq!(weights.len(), self.weights.len(), "weight length mismatch");
        }
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        let k = weights.len();
        self.weights = if total > 0.0 {
            weights
                .into_iter()
                .map(|w| {
                    if w.is_finite() && w > 0.0 {
                        w / total
                    } else {
                        0.0
                    }
                })
                .collect()
        } else {
            vec![1.0 / k as f64; k]
        };
        self.cumulative.clear();
        let mut acc = 0.0;
        for &w in &self.weights {
            acc += w;
            self.cumulative.push(acc);
        }
        *self.cumulative.last_mut().expect("k >= 1") = 1.0;
    }

    /// Generate one slot of requests from `num_requesters` requesters.
    pub fn generate<R: Rng + ?Sized>(&self, num_requesters: usize, rng: &mut R) -> RequestBatch {
        let mut batch = RequestBatch::empty(self.len());
        for _ in 0..num_requesters {
            if rng.random_range(0.0_f64..1.0) < self.request_prob {
                let u: f64 = rng.random_range(0.0..1.0);
                let k = self
                    .cumulative
                    .partition_point(|&c| c < u)
                    .min(self.len() - 1);
                batch.counts[k] += 1;
                batch.urgencies[k].push(rng.random_range(0.0..self.timeliness.l_max));
            }
        }
        batch
    }

    /// Expected number of requests for content `k` from `n` requesters.
    pub fn expected_count(&self, k: usize, n: usize) -> f64 {
        self.request_prob * self.weights[k] * n as f64
    }

    /// Generate one slot of requests from an explicit requester set, each
    /// requester drawing from its own counter-based stream keyed
    /// `(seed, requester, slot)`.
    ///
    /// Unlike [`RequestProcess::generate`], which consumes a shared
    /// sequential RNG, the batch here is a pure function of *which*
    /// requesters are in `served` (and their order, for the urgency
    /// lists): a requester's demand does not change when its neighbours
    /// migrate to another host EDP, and disjoint shards can generate their
    /// batches on different threads with bit-identical results.
    pub fn generate_batched(&self, served: &[usize], seed: u64, slot: u64) -> RequestBatch {
        let mut batch = RequestBatch::empty(self.len());
        for &j in served {
            let mut rng = requester_rng(seed, j, slot);
            if rng.random_range(0.0_f64..1.0) < self.request_prob {
                let u: f64 = rng.random_range(0.0..1.0);
                let k = self
                    .cumulative
                    .partition_point(|&c| c < u)
                    .min(self.len() - 1);
                batch.counts[k] += 1;
                batch.urgencies[k].push(rng.random_range(0.0..self.timeliness.l_max));
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_sde::seeded_rng;

    fn process(weights: Vec<f64>) -> RequestProcess {
        RequestProcess::new(0.5, weights, TimelinessConfig::default()).unwrap()
    }

    #[test]
    fn batch_counts_match_urgency_lists() {
        let p = process(vec![3.0, 1.0]);
        let mut rng = seeded_rng(16);
        let b = p.generate(200, &mut rng);
        for k in 0..2 {
            assert_eq!(b.counts[k], b.urgencies[k].len());
        }
        assert_eq!(b.total(), b.counts.iter().sum::<usize>());
    }

    #[test]
    fn request_volume_matches_probability() {
        let p = process(vec![1.0, 1.0]);
        let mut rng = seeded_rng(17);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            total += p.generate(100, &mut rng).total();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean requests {mean}");
    }

    #[test]
    fn weights_bias_content_choice() {
        let p = process(vec![9.0, 1.0]);
        let mut rng = seeded_rng(18);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            let b = p.generate(100, &mut rng);
            counts[0] += b.counts[0];
            counts[1] += b.counts[1];
        }
        let frac = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((frac - 0.9).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn set_weights_renormalizes_and_handles_garbage() {
        let mut p = process(vec![1.0, 1.0]);
        p.set_weights(vec![2.0, 6.0]);
        assert!((p.weights()[0] - 0.25).abs() < 1e-12);
        p.set_weights(vec![f64::NAN, 4.0]);
        assert_eq!(p.weights()[0], 0.0);
        assert_eq!(p.weights()[1], 1.0);
        p.set_weights(vec![0.0, 0.0]);
        assert_eq!(p.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(RequestProcess::new(0.5, vec![], TimelinessConfig::default()).is_err());
        assert!(RequestProcess::new(0.0, vec![1.0], TimelinessConfig::default()).is_err());
        assert!(RequestProcess::new(1.5, vec![1.0], TimelinessConfig::default()).is_err());
    }

    #[test]
    fn expected_count_formula() {
        let p = process(vec![3.0, 1.0]);
        assert!((p.expected_count(0, 100) - 0.5 * 0.75 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn batched_generation_is_deterministic_and_slot_dependent() {
        let p = process(vec![3.0, 1.0]);
        let served: Vec<usize> = (0..200).collect();
        let a = p.generate_batched(&served, 9, 4);
        let b = p.generate_batched(&served, 9, 4);
        assert_eq!(a, b, "same (seed, served, slot) must reproduce");
        let c = p.generate_batched(&served, 9, 5);
        assert_ne!(a, c, "a new slot draws fresh demand");
        let d = p.generate_batched(&served, 10, 4);
        assert_ne!(a, d, "a new seed draws fresh demand");
    }

    #[test]
    fn batched_generation_is_partition_invariant() {
        // A requester's demand is keyed by its identity, not its host:
        // generating for any partition of the population and summing the
        // shard batches reproduces the whole-population batch exactly.
        let p = process(vec![3.0, 1.0, 2.0]);
        let all: Vec<usize> = (0..300).collect();
        let whole = p.generate_batched(&all, 21, 7);
        for split in [1usize, 37, 150, 299] {
            let (left, right) = all.split_at(split);
            let a = p.generate_batched(left, 21, 7);
            let b = p.generate_batched(right, 21, 7);
            let counts: Vec<usize> = a.counts.iter().zip(&b.counts).map(|(x, y)| x + y).collect();
            assert_eq!(counts, whole.counts, "split at {split}");
            for k in 0..3 {
                let merged: Vec<f64> = a.urgencies[k]
                    .iter()
                    .chain(&b.urgencies[k])
                    .copied()
                    .collect();
                // Ascending split point: concatenation preserves the
                // served-order urgency lists bit for bit.
                assert_eq!(merged, whole.urgencies[k], "split at {split}, k {k}");
            }
        }
    }

    #[test]
    fn batched_volume_matches_probability() {
        let p = process(vec![1.0, 1.0]);
        let served: Vec<usize> = (0..100).collect();
        let mut total = 0usize;
        let trials = 200;
        for slot in 0..trials {
            total += p.generate_batched(&served, 23, slot).total();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean requests {mean}");
    }
}
