//! Content popularity: Zipf initialization (Def. 1) and the request-driven
//! update of Eq. (3):
//!
//! `Π_k(t) = (K·Π_k(t₀) + |I_k(t)|) / (K + Σ_k |I_k(t)|)`.

use crate::zipf::Zipf;
use crate::WorkloadError;

/// Tracks per-content popularity for one EDP.
#[derive(Debug, Clone, PartialEq)]
pub struct Popularity {
    /// `Π_k(t₀)` — the Zipf prior.
    initial: Vec<f64>,
    /// `Π_k(t)` — the current posterior.
    current: Vec<f64>,
}

impl Popularity {
    /// Initialize from the Zipf prior of Def. 1.
    ///
    /// # Errors
    ///
    /// Propagates invalid Zipf parameters.
    pub fn zipf(k: usize, iota: f64) -> Result<Self, WorkloadError> {
        let z = Zipf::new(k, iota)?;
        let initial = z.probabilities().to_vec();
        Ok(Self {
            current: initial.clone(),
            initial,
        })
    }

    /// Initialize from explicit prior probabilities (used by trace-driven
    /// workloads where the prior comes from historical counts).
    ///
    /// # Errors
    ///
    /// Returns an error if `prior` is empty; the prior is renormalized.
    pub fn from_prior(prior: Vec<f64>) -> Result<Self, WorkloadError> {
        if prior.is_empty() {
            return Err(WorkloadError::EmptyCatalog);
        }
        let total: f64 = prior.iter().sum();
        let initial: Vec<f64> = if total > 0.0 {
            prior.iter().map(|p| p / total).collect()
        } else {
            vec![1.0 / prior.len() as f64; prior.len()]
        };
        Ok(Self {
            current: initial.clone(),
            initial,
        })
    }

    /// Number of contents `K`.
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// Whether the catalog is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current popularity `Π_k(t)`.
    pub fn get(&self, k: usize) -> f64 {
        self.current[k]
    }

    /// The full current popularity vector.
    pub fn all(&self) -> &[f64] {
        &self.current
    }

    /// The Zipf prior `Π_k(t₀)`.
    pub fn prior(&self, k: usize) -> f64 {
        self.initial[k]
    }

    /// Apply Eq. (3) given the per-content request counts `|I_k(t)|`.
    ///
    /// # Panics
    ///
    /// Panics if `request_counts.len() != K`.
    pub fn update(&mut self, request_counts: &[usize]) {
        let k = self.len();
        assert_eq!(request_counts.len(), k, "request count length mismatch");
        let total: usize = request_counts.iter().sum();
        let denom = k as f64 + total as f64;
        for (idx, cur) in self.current.iter_mut().enumerate() {
            *cur = (k as f64 * self.initial[idx] + request_counts[idx] as f64) / denom;
        }
    }

    /// Index of the most popular content (ties broken by lowest id) —
    /// what the MPC baseline caches.
    pub fn most_popular(&self) -> usize {
        self.current
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(k, _)| k)
            .expect("non-empty by construction")
    }

    /// Content ids sorted by descending current popularity.
    pub fn ranked(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.len()).collect();
        ids.sort_by(|&a, &b| {
            self.current[b]
                .partial_cmp(&self.current[a])
                .expect("probabilities are finite")
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_follows_eq_3_exactly() {
        let mut p = Popularity::zipf(3, 1.0).unwrap();
        let prior = [p.prior(0), p.prior(1), p.prior(2)];
        let counts = [4usize, 1, 0];
        p.update(&counts);
        let denom = 3.0 + 5.0;
        for k in 0..3 {
            let expected = (3.0 * prior[k] + counts[k] as f64) / denom;
            assert!((p.get(k) - expected).abs() < 1e-12, "content {k}");
        }
    }

    #[test]
    fn updated_popularity_remains_a_distribution() {
        let mut p = Popularity::zipf(5, 0.8).unwrap();
        p.update(&[10, 0, 3, 7, 1]);
        let sum: f64 = p.all().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        assert!(p.all().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zero_requests_recover_the_prior() {
        let mut p = Popularity::zipf(4, 1.2).unwrap();
        p.update(&[0, 0, 0, 0]);
        for k in 0..4 {
            assert!((p.get(k) - p.prior(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn heavy_requests_flip_the_ranking() {
        let mut p = Popularity::zipf(3, 1.0).unwrap();
        assert_eq!(p.most_popular(), 0);
        // Flood the least popular content with requests.
        p.update(&[0, 0, 100]);
        assert_eq!(p.most_popular(), 2);
        assert_eq!(p.ranked()[0], 2);
    }

    #[test]
    fn from_prior_renormalizes() {
        let p = Popularity::from_prior(vec![2.0, 2.0]).unwrap();
        assert_eq!(p.get(0), 0.5);
        let uniform = Popularity::from_prior(vec![0.0, 0.0, 0.0]).unwrap();
        assert!((uniform.get(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!(Popularity::from_prior(vec![]).is_err());
    }
}
