//! Property-based tests for the workload substrate.

use proptest::prelude::*;

use mfgcp_workload::{
    trace::{parse_kaggle_csv, SyntheticYoutubeTrace, Trace},
    Popularity, RequestProcess, Timeliness, TimelinessConfig, Zipf,
};

proptest! {
    /// Zipf: a normalized, strictly decreasing pmf whose cumulative sum
    /// reaches exactly 1, for any size/steepness.
    #[test]
    fn zipf_is_a_decreasing_distribution(k in 1_usize..200, iota in 0.05_f64..4.0) {
        let z = Zipf::new(k, iota).unwrap();
        let sum: f64 = z.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for w in z.probabilities().windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Zipf sampling always lands in range.
    #[test]
    fn zipf_samples_in_range(k in 1_usize..50, iota in 0.1_f64..3.0, seed in 0_u64..500) {
        let z = Zipf::new(k, iota).unwrap();
        let mut rng = mfgcp_sde::seeded_rng(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < k);
        }
    }

    /// Eq. (3): popularity stays a probability vector after any sequence
    /// of updates, and a flood of requests for one content makes it the
    /// most popular.
    #[test]
    fn popularity_update_invariants(
        k in 2_usize..30,
        updates in proptest::collection::vec(
            proptest::collection::vec(0_usize..50, 2..30), 1..5),
        flooded in 0_usize..30,
    ) {
        let mut p = Popularity::zipf(k, 0.8).unwrap();
        for u in &updates {
            let mut counts = vec![0usize; k];
            for (i, &c) in u.iter().enumerate() {
                counts[i % k] += c;
            }
            p.update(&counts);
            let sum: f64 = p.all().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.all().iter().all(|&x| x >= 0.0));
        }
        // Flood one content with overwhelmingly many requests.
        let target = flooded % k;
        let mut counts = vec![0usize; k];
        counts[target] = 1_000_000;
        p.update(&counts);
        prop_assert_eq!(p.most_popular(), target);
    }

    /// Timeliness observations are always clamped into `[0, L_max]` and
    /// the urgency factor into `(0, 1]`.
    #[test]
    fn timeliness_clamps(
        l_max in 0.5_f64..20.0,
        xi in 0.01_f64..0.99,
        urgencies in proptest::collection::vec(-100.0_f64..100.0, 1..20),
    ) {
        let cfg = TimelinessConfig::new(l_max, xi).unwrap();
        let mut t = Timeliness::new(1, cfg);
        t.observe(0, &urgencies);
        prop_assert!((0.0..=l_max).contains(&t.get(0)));
        let f = t.factor(0);
        prop_assert!(f > 0.0 && f <= 1.0);
    }

    /// Request batches: counts match urgency lists, totals bounded by the
    /// requester population.
    #[test]
    fn request_batches_are_consistent(
        weights in proptest::collection::vec(0.0_f64..10.0, 1..20),
        prob in 0.01_f64..1.0,
        requesters in 0_usize..200,
        seed in 0_u64..300,
    ) {
        let p = RequestProcess::new(prob, weights, TimelinessConfig::default()).unwrap();
        let mut rng = mfgcp_sde::seeded_rng(seed);
        let b = p.generate(requesters, &mut rng);
        prop_assert!(b.total() <= requesters);
        for (count, urg) in b.counts.iter().zip(&b.urgencies) {
            prop_assert_eq!(*count, urg.len());
        }
        let wsum: f64 = p.weights().iter().sum();
        prop_assert!((wsum - 1.0).abs() < 1e-9);
    }

    /// Traces: normalized weights are a probability vector for every
    /// epoch, including past the end (clamping).
    #[test]
    fn trace_weights_normalize(
        categories in 1_usize..20,
        epochs in 1_usize..10,
        query in 0_usize..50,
        seed in 0_u64..300,
    ) {
        let mut rng = mfgcp_sde::seeded_rng(seed);
        let t = SyntheticYoutubeTrace {
            categories,
            epochs,
            ..SyntheticYoutubeTrace::default()
        }
        .generate(&mut rng)
        .unwrap();
        let w = t.normalized_weights(query);
        prop_assert_eq!(w.len(), categories);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }

    /// CSV round-trip: a generated trace serialized in Kaggle schema and
    /// re-parsed produces the same per-epoch weights.
    #[test]
    fn kaggle_roundtrip(
        rows in proptest::collection::vec((0_usize..3, 0_usize..4, 1_u32..100_000), 1..40),
    ) {
        // Build a CSV with category ids 100..102 over dates d0..d3.
        let mut csv = String::from("video_id,trending_date,title,category_id,views\n");
        for (i, (cat, date, views)) in rows.iter().enumerate() {
            csv.push_str(&format!("v{i},d{date},\"T, {i}\",{},{views}\n", 100 + cat));
        }
        let t = parse_kaggle_csv(&csv, 3).unwrap();
        // Re-aggregate by hand and compare.
        let mut date_order: Vec<usize> = Vec::new();
        let mut cat_order: Vec<usize> = Vec::new();
        for (cat, date, _) in &rows {
            if !date_order.contains(date) {
                date_order.push(*date);
            }
            if !cat_order.contains(cat) {
                cat_order.push(*cat);
            }
        }
        let mut expected = vec![vec![0.0_f64; 3]; date_order.len()];
        for (cat, date, views) in &rows {
            let e = date_order.iter().position(|d| d == date).unwrap();
            let c = cat_order.iter().position(|c| c == cat).unwrap();
            expected[e][c] += f64::from(*views);
        }
        prop_assert_eq!(t.num_epochs(), date_order.len());
        for (e, exp) in expected.iter().enumerate() {
            for (c, &v) in exp.iter().enumerate() {
                prop_assert_eq!(t.weights(e)[c], v, "epoch {} cat {}", e, c);
            }
        }
    }

    /// Trace construction validates its shape.
    #[test]
    fn trace_shape_validation(categories in 1_usize..10, extra in 1_usize..9) {
        // A weight vector that is NOT a multiple of `categories`, unless
        // extra happens to align.
        let len = categories * 3 + extra;
        let ok = len % categories == 0;
        let result = Trace::new(categories, vec![1.0; len]);
        prop_assert_eq!(result.is_ok(), ok);
    }
}
