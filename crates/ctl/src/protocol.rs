//! Control-plane opcode table over the shared `mfgcp-serve` wire format.
//!
//! Frames are identical to the policy server's: a little-endian `u32`
//! payload length, then an opcode byte plus an opcode-specific body
//! (`mfgcp_serve::wire`). Control opcodes live in the `0x2*` request /
//! `0xA*` reply range so a frame can never be confused with a policy
//! query, and the error reply reuses the policy server's `0xEE` encoding
//! and [`ErrorCode`] table verbatim.
//!
//! Request opcodes (client → server):
//!
//! | opcode | body | meaning |
//! |--------|------|---------|
//! | `0x21` | capacity u32, count u16, count × str | subscribe to streamed events |
//! | `0x22` | — | slot-boundary snapshot (JSON) |
//! | `0x23` | offset u32, len u32 | per-EDP occupancy slice (binary f64) |
//! | `0x24` | — | pause at the next slot boundary |
//! | `0x25` | n u32 | step `n` slots, then stay paused |
//! | `0x26` | — | resume free running |
//! | `0x27` | — | seed-fork a what-if solve from the live density |
//! | `0x28` | id u32 | poll a fork's status |
//! | `0x29` | — | gate/stream status (JSON) |
//! | `0x2A` | — | ping |
//! | `0x2E` | — | detach the gate and shut the control plane down |
//! | `0x2F` | — | detach this client (connection closes cleanly) |
//!
//! Reply opcodes (server → client):
//!
//! | opcode | body | meaning |
//! |--------|------|---------|
//! | `0xA1` | utf8 JSON document | acknowledgement / query answer |
//! | `0xA3` | total u32, offset u32, count u32, count × f64 | occupancy slice |
//! | `0xAA` | — | pong |
//! | `0xC0` | utf8 JSON event line | one streamed telemetry event |
//! | `0xEE` | code u16 + utf8 message | typed error (policy-server encoding) |
//!
//! Subscription filters are *name prefixes*: the body strings of `0x21`
//! select event series by `Event::name` prefix match (`"market."`,
//! `"net.shard."`, `"solver."`, `"audit."`, …); zero strings subscribes
//! to everything. Streamed `0xC0` frames carry the exact
//! `Event::to_json_line` JSONL document of the `mfgcp-obs` schema and
//! keep their recorder-level `seq`, so a bounded subscriber that drops
//! frames still sees a strictly increasing (gapped) sequence.

use mfgcp_serve::wire::{empty_body, push_f64, push_str, Cursor};
use mfgcp_serve::{ErrorCode, WireError};

/// A decoded control-plane request.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlRequest {
    /// Subscribe this connection to streamed telemetry events.
    Subscribe {
        /// Bounded queue capacity; the sink drops (and counts) events
        /// beyond it rather than ever blocking the simulation.
        capacity: u32,
        /// Event-name prefixes to stream; empty = every series.
        filters: Vec<String>,
    },
    /// Ask for the latest slot-boundary snapshot as JSON.
    Snapshot,
    /// Ask for a slice of the per-EDP occupancy column.
    Occupancy {
        /// First EDP index of the slice.
        offset: u32,
        /// Maximum number of entries to return.
        len: u32,
    },
    /// Pause the simulation at the next slot boundary.
    Pause,
    /// Run exactly `n` more slots, then stay paused.
    Step {
        /// Number of slots to execute.
        n: u32,
    },
    /// Resume free running.
    Resume,
    /// Clone the live density into a detached what-if equilibrium solve.
    Fork,
    /// Poll the status of a previously started fork.
    ForkStatus {
        /// The fork id returned by [`CtlRequest::Fork`].
        id: u32,
    },
    /// Gate/stream status as JSON.
    Status,
    /// Liveness probe.
    Ping,
    /// Detach the gate (run freely) and shut the control plane down.
    Shutdown,
    /// Detach this client; the connection closes after the ack.
    Detach,
}

/// A decoded control-plane reply.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlReply {
    /// Acknowledgement / query answer carrying a JSON document.
    Ok(String),
    /// A slice of the per-EDP occupancy column.
    Occupancy {
        /// Population size `M` (slice bounds clamp against it).
        total: u32,
        /// First EDP index of the returned slice.
        offset: u32,
        /// The occupancy values, f64 bit-exact.
        values: Vec<f64>,
    },
    /// Answer to [`CtlRequest::Ping`].
    Pong,
    /// One streamed telemetry event (JSONL document of the obs schema).
    Event(String),
    /// Typed protocol error (same encoding as the policy server).
    Error {
        /// Machine-readable rejection code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const OP_SUBSCRIBE: u8 = 0x21;
const OP_SNAPSHOT: u8 = 0x22;
const OP_OCCUPANCY: u8 = 0x23;
const OP_PAUSE: u8 = 0x24;
const OP_STEP: u8 = 0x25;
const OP_RESUME: u8 = 0x26;
const OP_FORK: u8 = 0x27;
const OP_FORK_STATUS: u8 = 0x28;
const OP_STATUS: u8 = 0x29;
const OP_PING: u8 = 0x2A;
const OP_SHUTDOWN: u8 = 0x2E;
const OP_DETACH: u8 = 0x2F;
const OP_OK: u8 = 0xA1;
const OP_OCCUPANCY_REPLY: u8 = 0xA3;
const OP_PONG: u8 = 0xAA;
const OP_EVENT: u8 = 0xC0;
const OP_ERROR: u8 = 0xEE;

/// Most subscription filters a single subscribe may carry.
pub const MAX_FILTERS: u16 = 64;

impl CtlRequest {
    /// Serializes the request into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CtlRequest::Subscribe { capacity, filters } => {
                let mut out = vec![OP_SUBSCRIBE];
                out.extend_from_slice(&capacity.to_le_bytes());
                out.extend_from_slice(&(filters.len() as u16).to_le_bytes());
                for f in filters {
                    push_str(&mut out, f);
                }
                out
            }
            CtlRequest::Snapshot => vec![OP_SNAPSHOT],
            CtlRequest::Occupancy { offset, len } => {
                let mut out = vec![OP_OCCUPANCY];
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out
            }
            CtlRequest::Pause => vec![OP_PAUSE],
            CtlRequest::Step { n } => {
                let mut out = vec![OP_STEP];
                out.extend_from_slice(&n.to_le_bytes());
                out
            }
            CtlRequest::Resume => vec![OP_RESUME],
            CtlRequest::Fork => vec![OP_FORK],
            CtlRequest::ForkStatus { id } => {
                let mut out = vec![OP_FORK_STATUS];
                out.extend_from_slice(&id.to_le_bytes());
                out
            }
            CtlRequest::Status => vec![OP_STATUS],
            CtlRequest::Ping => vec![OP_PING],
            CtlRequest::Shutdown => vec![OP_SHUTDOWN],
            CtlRequest::Detach => vec![OP_DETACH],
        }
    }

    /// Parses a frame payload into a request, with typed rejection.
    pub fn decode(payload: &[u8]) -> Result<CtlRequest, WireError> {
        let (&op, body) = payload
            .split_first()
            .ok_or_else(|| WireError::new(ErrorCode::Malformed, "empty frame"))?;
        match op {
            OP_SUBSCRIBE => {
                let mut c = Cursor::new(body);
                let capacity = c.u32("subscribe capacity")?;
                let count = c.u16("subscribe filter count")?;
                if count > MAX_FILTERS {
                    return Err(WireError::new(
                        ErrorCode::Malformed,
                        format!("subscribe declares {count} filters, max {MAX_FILTERS}"),
                    ));
                }
                let mut filters = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    filters.push(c.str("subscribe filter")?);
                }
                c.finish("subscribe")?;
                Ok(CtlRequest::Subscribe { capacity, filters })
            }
            OP_SNAPSHOT => empty_body(body, "snapshot").map(|()| CtlRequest::Snapshot),
            OP_OCCUPANCY => {
                let mut c = Cursor::new(body);
                let offset = c.u32("occupancy offset")?;
                let len = c.u32("occupancy len")?;
                c.finish("occupancy")?;
                Ok(CtlRequest::Occupancy { offset, len })
            }
            OP_PAUSE => empty_body(body, "pause").map(|()| CtlRequest::Pause),
            OP_STEP => {
                let mut c = Cursor::new(body);
                let n = c.u32("step count")?;
                c.finish("step")?;
                Ok(CtlRequest::Step { n })
            }
            OP_RESUME => empty_body(body, "resume").map(|()| CtlRequest::Resume),
            OP_FORK => empty_body(body, "fork").map(|()| CtlRequest::Fork),
            OP_FORK_STATUS => {
                let mut c = Cursor::new(body);
                let id = c.u32("fork id")?;
                c.finish("fork-status")?;
                Ok(CtlRequest::ForkStatus { id })
            }
            OP_STATUS => empty_body(body, "status").map(|()| CtlRequest::Status),
            OP_PING => empty_body(body, "ping").map(|()| CtlRequest::Ping),
            OP_SHUTDOWN => empty_body(body, "shutdown").map(|()| CtlRequest::Shutdown),
            OP_DETACH => empty_body(body, "detach").map(|()| CtlRequest::Detach),
            other => Err(WireError::new(
                ErrorCode::UnknownOpcode,
                format!("unknown control opcode 0x{other:02x}"),
            )),
        }
    }
}

impl CtlReply {
    /// Serializes the reply into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CtlReply::Ok(doc) => {
                let mut out = Vec::with_capacity(1 + doc.len());
                out.push(OP_OK);
                out.extend_from_slice(doc.as_bytes());
                out
            }
            CtlReply::Occupancy {
                total,
                offset,
                values,
            } => {
                let mut out = Vec::with_capacity(13 + values.len() * 8);
                out.push(OP_OCCUPANCY_REPLY);
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for &v in values {
                    push_f64(&mut out, v);
                }
                out
            }
            CtlReply::Pong => vec![OP_PONG],
            CtlReply::Event(line) => {
                let mut out = Vec::with_capacity(1 + line.len());
                out.push(OP_EVENT);
                out.extend_from_slice(line.as_bytes());
                out
            }
            CtlReply::Error { code, message } => {
                let mut out = vec![OP_ERROR];
                out.extend_from_slice(&code.as_u16().to_le_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Parses a frame payload into a reply, with typed rejection.
    pub fn decode(payload: &[u8]) -> Result<CtlReply, WireError> {
        let (&op, body) = payload
            .split_first()
            .ok_or_else(|| WireError::new(ErrorCode::Malformed, "empty reply frame"))?;
        let utf8 = |bytes: &[u8], what: &str| {
            String::from_utf8(bytes.to_vec())
                .map_err(|_| WireError::new(ErrorCode::Malformed, format!("{what}: invalid utf8")))
        };
        match op {
            OP_OK => Ok(CtlReply::Ok(utf8(body, "ok body")?)),
            OP_OCCUPANCY_REPLY => {
                let mut c = Cursor::new(body);
                let total = c.u32("occupancy total")?;
                let offset = c.u32("occupancy offset")?;
                let count = c.u32("occupancy count")?;
                let mut values = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    values.push(c.f64("occupancy value")?);
                }
                c.finish("occupancy reply")?;
                Ok(CtlReply::Occupancy {
                    total,
                    offset,
                    values,
                })
            }
            OP_PONG => empty_body(body, "pong").map(|()| CtlReply::Pong),
            OP_EVENT => Ok(CtlReply::Event(utf8(body, "event body")?)),
            OP_ERROR => {
                let mut c = Cursor::new(body);
                let raw = c.u16("error code")?;
                let code = ErrorCode::from_u16(raw).unwrap_or(ErrorCode::Internal);
                let message = utf8(c.rest(), "error message")?;
                Ok(CtlReply::Error { code, message })
            }
            other => Err(WireError::new(
                ErrorCode::UnknownOpcode,
                format!("unknown control reply opcode 0x{other:02x}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            CtlRequest::Subscribe {
                capacity: 256,
                filters: vec!["market.".into(), "net.shard.".into()],
            },
            CtlRequest::Snapshot,
            CtlRequest::Occupancy { offset: 3, len: 7 },
            CtlRequest::Pause,
            CtlRequest::Step { n: 5 },
            CtlRequest::Resume,
            CtlRequest::Fork,
            CtlRequest::ForkStatus { id: 2 },
            CtlRequest::Status,
            CtlRequest::Ping,
            CtlRequest::Shutdown,
            CtlRequest::Detach,
        ];
        for r in reqs {
            assert_eq!(CtlRequest::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn replies_roundtrip_bit_exactly() {
        let replies = [
            CtlReply::Ok("{\"paused\":true}".into()),
            CtlReply::Occupancy {
                total: 30,
                offset: 4,
                values: vec![0.25, f64::NAN, 1.0],
            },
            CtlReply::Pong,
            CtlReply::Event("{\"seq\":7,\"name\":\"market.slot\"}".into()),
            CtlReply::Error {
                code: ErrorCode::Malformed,
                message: "nope".into(),
            },
        ];
        for r in replies {
            let back = CtlReply::decode(&r.encode()).unwrap();
            // NaN-safe comparison: compare through the encoded bytes.
            assert_eq!(back.encode(), r.encode());
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(CtlRequest::decode(&[]).is_err());
        assert!(CtlRequest::decode(&[0x7B]).is_err());
        // Truncated step body.
        assert!(CtlRequest::decode(&[OP_STEP, 1, 0]).is_err());
        // Trailing junk after a full body.
        assert!(CtlRequest::decode(&[OP_PAUSE, 9]).is_err());
        // Filter count over the cap.
        let mut sub = vec![OP_SUBSCRIBE];
        sub.extend_from_slice(&16u32.to_le_bytes());
        sub.extend_from_slice(&(MAX_FILTERS + 1).to_le_bytes());
        assert!(CtlRequest::decode(&sub).is_err());
    }
}
