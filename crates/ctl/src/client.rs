//! Blocking control-plane client.
//!
//! A dedicated reader thread turns the socket into a frame channel, so
//! the caller can interleave request/reply exchanges with streamed
//! `0xC0` event frames without ever losing framing: [`CtlClient::request`]
//! buffers any events that arrive while waiting for its reply, and
//! [`CtlClient::poll_event`] hands them (and newly streamed ones) back
//! in arrival order.

use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::Duration;

use mfgcp_obs::json::{parse, Json};
use mfgcp_serve::wire::{read_frame, write_frame};
use mfgcp_serve::{ClientError, ErrorCode, WireError, MAX_FRAME_LEN};

use crate::protocol::{CtlReply, CtlRequest};

/// A connected control-plane client.
pub struct CtlClient {
    stream: TcpStream,
    frames: Receiver<CtlReply>,
    buffered: std::collections::VecDeque<String>,
    _reader: JoinHandle<()>,
}

impl CtlClient {
    /// Connect to a control-plane server.
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect(addr: &str) -> Result<CtlClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        let rstream = stream.try_clone().map_err(ClientError::Io)?;
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut r = rstream;
            // Clean EOF, a framing-level failure, an undecodable reply,
            // or a dropped receiver all end the reader the same way.
            while let Ok(Some(payload)) = read_frame(&mut r, MAX_FRAME_LEN) {
                let Ok(reply) = CtlReply::decode(&payload) else {
                    break;
                };
                if tx.send(reply).is_err() {
                    break;
                }
            }
        });
        Ok(CtlClient {
            stream,
            frames: rx,
            buffered: std::collections::VecDeque::new(),
            _reader: reader,
        })
    }

    /// Send `req` and wait (up to `timeout`) for its non-event reply,
    /// buffering any stream events that arrive in between.
    ///
    /// # Errors
    ///
    /// Returns I/O, decode, or timeout errors; a server `0xEE` reply
    /// surfaces as [`ClientError::Server`].
    pub fn request(
        &mut self,
        req: &CtlRequest,
        timeout: Duration,
    ) -> Result<CtlReply, ClientError> {
        write_frame(&mut self.stream, &req.encode()).map_err(ClientError::Io)?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match self.frames.recv_timeout(left) {
                Ok(CtlReply::Event(line)) => self.buffered.push_back(line),
                Ok(CtlReply::Error { code, message }) => {
                    return Err(ClientError::Server(WireError::new(code, message)))
                }
                Ok(reply) => return Ok(reply),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for control reply",
                    )))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "control connection closed",
                    )))
                }
            }
        }
    }

    /// Send `req` and parse the expected JSON (`0xA1`) reply.
    ///
    /// # Errors
    ///
    /// As [`CtlClient::request`], plus a typed error when the reply is
    /// not a JSON acknowledgement or fails to parse.
    pub fn request_json(
        &mut self,
        req: &CtlRequest,
        timeout: Duration,
    ) -> Result<Json, ClientError> {
        match self.request(req, timeout)? {
            CtlReply::Ok(doc) => parse(&doc).map_err(|e| {
                ClientError::Server(WireError::new(
                    ErrorCode::Internal,
                    format!("unparseable JSON reply: {e:?}"),
                ))
            }),
            other => Err(ClientError::Server(WireError::new(
                ErrorCode::Internal,
                format!("expected JSON reply, got {other:?}"),
            ))),
        }
    }

    /// Next streamed event line, if one arrives within `timeout`
    /// (buffered events are returned first, instantly).
    pub fn poll_event(&mut self, timeout: Duration) -> Option<String> {
        if let Some(line) = self.buffered.pop_front() {
            return Some(line);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match self.frames.recv_timeout(left) {
                Ok(CtlReply::Event(line)) => return Some(line),
                // Out-of-band non-event frames at poll time are unexpected;
                // drop them rather than desynchronize the stream.
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    /// True when no streamed event is currently pending (more may still
    /// arrive while the connection is open).
    pub fn is_drained(&mut self) -> bool {
        // Pull anything already delivered into the buffer first.
        while let Ok(reply) = self.frames.try_recv() {
            if let CtlReply::Event(line) = reply {
                self.buffered.push_back(line);
            }
        }
        self.buffered.is_empty()
    }
}
