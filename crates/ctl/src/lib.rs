//! Live observer/control plane for running MFG-CP simulations.
//!
//! `mfgcp simulate --observe ADDR` attaches this crate's [`CtlServer`]
//! to a [`Simulation`](mfgcp_sim::Simulation) through the engine's
//! slot-boundary hook (`mfgcp_sim::EngineControl`). A connected client
//! can then, against the *live* run:
//!
//! * **stream** subscribed telemetry series (`market.slot`,
//!   `net.shard.*`, `solver.*`, `audit.*`, …) as length-prefixed frames,
//!   fed by a bounded drop-counting [`BroadcastSink`](mfgcp_obs::BroadcastSink)
//!   that never blocks the simulation;
//! * **snapshot** the slot-boundary state — per-EDP occupancy, the
//!   Eq. (5) price distribution, cumulative audit status, shard gauges,
//!   and the slot clock — from a cell the engine republishes every slot;
//! * **steer** the run's *schedule*: pause, step `n` slots, resume, and
//!   seed-fork a detached what-if solve that re-enters Alg. 2 from the
//!   live empirical density.
//!
//! The non-negotiable invariant, enforced structurally and by the
//! `observe_parity` integration test: control gates *when* slots
//! execute, never *what* they compute. An observed, paused, stepped, or
//! forked run is bit-identical to a free run.
//!
//! Wire format: the shared `mfgcp_serve::wire` frame layer (LE `u32`
//! length + opcode + body), with control opcodes in the `0x2*`/`0xA*`
//! range — see [`protocol`] for the table and the subscription-filter
//! semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod plane;
pub mod protocol;
pub mod server;

pub use client::CtlClient;
pub use plane::{snapshot_json, ControlPlane, ForkOutcome, GateStatus};
pub use protocol::{CtlReply, CtlRequest};
pub use server::CtlServer;
