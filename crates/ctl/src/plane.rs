//! The control plane proper: the slot-boundary gate, the double-buffered
//! snapshot cell, and the seed-fork table.
//!
//! [`ControlPlane`] is the object the simulation engine talks to (via
//! [`EngineControl`]) and the TCP server reads from. Its determinism
//! contract is structural: the gate can only *block* the engine between
//! slots, every snapshot is an owned copy published by the engine itself,
//! and forks run on detached threads against cloned state — no code path
//! writes anything the engine reads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mfgcp_core::{ContentContext, MfgSolver, Params};
use mfgcp_obs::json::Json;
use mfgcp_obs::BroadcastSink;
use mfgcp_pde::Field2d;
use mfgcp_sim::{EngineControl, Histogram, SimSnapshot};

/// Gate flags as seen by [`ControlPlane::gate_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateStatus {
    /// The engine parks at the next slot boundary (unless stepping).
    pub paused: bool,
    /// Slots the engine may still execute while paused.
    pub step_budget: u64,
    /// The gate waves everything through (control plane shut down).
    pub detached: bool,
    /// The run has published its final snapshot.
    pub finished: bool,
}

#[derive(Debug, Default)]
struct GateState {
    paused: bool,
    step_budget: u64,
    detached: bool,
    finished: bool,
}

/// Outcome of a seed-fork solve.
#[derive(Debug, Clone, PartialEq)]
pub enum ForkOutcome {
    /// The what-if solve is still iterating.
    Running,
    /// The solve finished (converged or not — see the flag).
    Done {
        /// Whether the Picard iteration met its tolerance.
        converged: bool,
        /// Iterations performed.
        iterations: usize,
        /// Equilibrium price at `t = 0` under the forked density.
        price0: f64,
        /// Max FPK mass drift `max_n |∫λ(t_n) − 1|` over the solve.
        mass_drift: f64,
    },
    /// The solver could not be built from the run's parameters.
    Failed(
        /// Human-readable reason.
        String,
    ),
}

#[derive(Default)]
struct ForkTable {
    next: AtomicU32,
    entries: Mutex<HashMap<u32, ForkOutcome>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The shared observer/control state: gate + snapshot cell + fork table
/// + the broadcast sink whose drop counters the status query reports.
pub struct ControlPlane {
    state: Mutex<GateState>,
    wake: Condvar,
    cell: Mutex<Option<Arc<SimSnapshot>>>,
    sink: Arc<BroadcastSink>,
    forks: ForkTable,
    params: Params,
}

impl ControlPlane {
    /// Build a plane for a run solved under `params`, publishing stream
    /// frames through `sink`. With `hold` the gate starts paused, so a
    /// client can attach before slot 0 executes.
    pub fn new(params: Params, sink: Arc<BroadcastSink>, hold: bool) -> Self {
        Self {
            state: Mutex::new(GateState {
                paused: hold,
                ..GateState::default()
            }),
            wake: Condvar::new(),
            cell: Mutex::new(None),
            sink,
            forks: ForkTable::default(),
            params,
        }
    }

    /// The broadcast sink streamed events flow through.
    pub fn sink(&self) -> &Arc<BroadcastSink> {
        &self.sink
    }

    /// The latest published slot-boundary snapshot, if any.
    pub fn latest(&self) -> Option<Arc<SimSnapshot>> {
        self.cell.lock().unwrap().clone()
    }

    /// Request a pause at the next slot boundary.
    pub fn pause(&self) {
        let mut st = self.state.lock().unwrap();
        st.paused = true;
        st.step_budget = 0;
        self.wake.notify_all();
    }

    /// Grant `n` more slots, staying paused afterwards.
    pub fn step(&self, n: u64) {
        let mut st = self.state.lock().unwrap();
        st.paused = true;
        st.step_budget = st.step_budget.saturating_add(n);
        self.wake.notify_all();
    }

    /// Resume free running.
    pub fn resume(&self) {
        let mut st = self.state.lock().unwrap();
        st.paused = false;
        st.step_budget = 0;
        self.wake.notify_all();
    }

    /// Permanently wave the engine through (control-plane shutdown).
    pub fn detach(&self) {
        let mut st = self.state.lock().unwrap();
        st.detached = true;
        self.wake.notify_all();
    }

    /// Current gate flags.
    pub fn gate_status(&self) -> GateStatus {
        let st = self.state.lock().unwrap();
        GateStatus {
            paused: st.paused,
            step_budget: st.step_budget,
            detached: st.detached,
            finished: st.finished,
        }
    }

    /// Start a what-if equilibrium solve seeded from the live density:
    /// Alg. 2 re-entered with the §V-A fading marginal crossed with the
    /// *empirical* occupancy distribution of the latest snapshot. Returns
    /// the fork id to poll with [`ControlPlane::fork_outcome`], or `None`
    /// when no snapshot has been published yet.
    pub fn fork(self: &Arc<Self>) -> Option<u32> {
        let snap = self.latest()?;
        let id = self.forks.next.fetch_add(1, Ordering::Relaxed);
        self.forks
            .entries
            .lock()
            .unwrap()
            .insert(id, ForkOutcome::Running);
        let plane = Arc::clone(self);
        let params = self.params.clone();
        let handle = std::thread::spawn(move || {
            let outcome = run_fork(&params, &snap.occupancy);
            plane.forks.entries.lock().unwrap().insert(id, outcome);
        });
        self.forks.threads.lock().unwrap().push(handle);
        Some(id)
    }

    /// The current outcome of fork `id` (`None` for an unknown id).
    pub fn fork_outcome(&self, id: u32) -> Option<ForkOutcome> {
        self.forks.entries.lock().unwrap().get(&id).cloned()
    }

    /// Block until every fork thread has finished (shutdown path).
    pub fn join_forks(&self) {
        let threads: Vec<JoinHandle<()>> = {
            let mut guard = self.forks.threads.lock().unwrap();
            guard.drain(..).collect()
        };
        for t in threads {
            let _ = t.join();
        }
    }

    /// Render the gate/stream status as the JSON document of the `0x29`
    /// status query.
    pub fn status_json(&self) -> Json {
        let gs = self.gate_status();
        let mut fields = vec![
            ("paused".to_string(), Json::Bool(gs.paused)),
            ("step_budget".to_string(), Json::Num(gs.step_budget as f64)),
            ("detached".to_string(), Json::Bool(gs.detached)),
            ("finished".to_string(), Json::Bool(gs.finished)),
            (
                "subscribers".to_string(),
                Json::Num(self.sink.subscriber_count() as f64),
            ),
            (
                "frames_enqueued".to_string(),
                Json::Num(self.sink.frames_enqueued() as f64),
            ),
            (
                "frames_dropped".to_string(),
                Json::Num(self.sink.frames_dropped() as f64),
            ),
        ];
        if let Some(snap) = self.latest() {
            fields.push(("global_slot".into(), Json::Num(snap.global_slot as f64)));
            fields.push(("total_slots".into(), Json::Num(snap.total_slots as f64)));
        }
        Json::Obj(fields)
    }
}

impl EngineControl for ControlPlane {
    fn at_slot_boundary(&self, snapshot: SimSnapshot) {
        let finished = snapshot.finished;
        *self.cell.lock().unwrap() = Some(Arc::new(snapshot));
        let mut st = self.state.lock().unwrap();
        if finished {
            st.finished = true;
            self.wake.notify_all();
            return;
        }
        while st.paused && st.step_budget == 0 && !st.detached {
            st = self.wake.wait(st).unwrap();
        }
        if st.paused && st.step_budget > 0 {
            st.step_budget -= 1;
        }
    }
}

/// The detached what-if solve: §V-A fading marginal × empirical
/// occupancy histogram as the initial density, then Alg. 2 as usual.
fn run_fork(params: &Params, occupancy: &[f64]) -> ForkOutcome {
    let solver = match MfgSolver::new(params.clone()) {
        Ok(s) => s,
        Err(e) => return ForkOutcome::Failed(e.to_string()),
    };
    let contexts = vec![ContentContext::from_params(params); params.time_steps];
    let initial = fork_initial_density(&solver.initial_density(), occupancy);
    let eq = solver.solve_with(&contexts, Some(initial));
    let mass_drift = eq
        .mass_series()
        .iter()
        .map(|m| (m - 1.0).abs())
        .fold(0.0_f64, f64::max);
    ForkOutcome::Done {
        converged: eq.report.converged,
        iterations: eq.report.iterations,
        price0: eq.price_at(0.0),
        mass_drift,
    }
}

/// Product density on the solver grid: the base density's `h`-marginal
/// (the run's fading statistics are stationary, so the §V-A marginal is
/// the right prior) times the empirical distribution of the live per-EDP
/// occupancy column, normalized to unit mass. Falls back to the base
/// density when the occupancy column is empty.
fn fork_initial_density(base: &Field2d, occupancy: &[f64]) -> Field2d {
    if occupancy.is_empty() {
        return base.clone();
    }
    let grid = base.grid().clone();
    let (nx, ny) = (grid.x().len(), grid.y().len());
    // h-marginal of the base density: f(h_i) = Σ_j λ(h_i, q_j) dq.
    let mut fh = vec![0.0; nx];
    for (i, f) in fh.iter_mut().enumerate() {
        for j in 0..ny {
            *f += base.at(i, j);
        }
    }
    // Empirical occupancy mass per q-cell (nearest-node binning).
    let mut gq = vec![0.0; ny];
    for &q in occupancy {
        if q.is_finite() {
            gq[grid.y().nearest(q)] += 1.0;
        }
    }
    let mut out = Field2d::zeros(grid);
    for (i, &f) in fh.iter().enumerate() {
        for (j, &g) in gq.iter().enumerate() {
            out.set(i, j, f * g);
        }
    }
    out.normalize();
    out
}

/// Render a [`SimSnapshot`] as the JSON document of the `0x22` query.
pub fn snapshot_json(s: &SimSnapshot) -> Json {
    let hist = |h: &Histogram| {
        Json::Obj(vec![
            ("lo".to_string(), Json::Num(h.lo)),
            ("hi".to_string(), Json::Num(h.hi)),
            (
                "counts".to_string(),
                Json::Arr(h.counts.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
        ])
    };
    let mut fields = vec![
        ("scheme".to_string(), Json::Str(s.scheme.clone())),
        ("epoch".to_string(), Json::Num(s.epoch as f64)),
        ("slot".to_string(), Json::Num(s.slot as f64)),
        ("global_slot".to_string(), Json::Num(s.global_slot as f64)),
        ("total_slots".to_string(), Json::Num(s.total_slots as f64)),
        ("t".to_string(), Json::Num(s.t)),
        ("finished".to_string(), Json::Bool(s.finished)),
        ("progress".to_string(), Json::Num(s.progress())),
        ("num_edps".to_string(), Json::Num(s.num_edps as f64)),
        (
            "num_requesters".to_string(),
            Json::Num(s.num_requesters as f64),
        ),
        ("num_contents".to_string(), Json::Num(s.num_contents as f64)),
    ];
    if let Some(h) = &s.occupancy_hist {
        fields.push(("occupancy_hist".into(), hist(h)));
    }
    if let Some(h) = &s.price_hist {
        fields.push(("price_hist".into(), hist(h)));
    }
    if let Some(m) = &s.last_slot {
        fields.push((
            "last_slot".into(),
            Json::Obj(vec![
                ("t".to_string(), Json::Num(m.t)),
                ("mean_price".to_string(), Json::Num(m.mean_price)),
                (
                    "mean_remaining_space".to_string(),
                    Json::Num(m.mean_remaining_space),
                ),
                (
                    "mean_caching_rate".to_string(),
                    Json::Num(m.mean_caching_rate),
                ),
                ("slot_utility".to_string(), Json::Num(m.slot_utility)),
                (
                    "slot_trading_income".to_string(),
                    Json::Num(m.slot_trading_income),
                ),
            ]),
        ));
    }
    if let Some(a) = &s.audit {
        fields.push((
            "audit".into(),
            Json::Obj(vec![
                ("clean".to_string(), Json::Bool(a.is_clean())),
                ("violations".to_string(), Json::Num(a.violations as f64)),
                (
                    "slots_checked".to_string(),
                    Json::Num(a.slots_checked as f64),
                ),
                (
                    "equilibria_checked".to_string(),
                    Json::Num(a.equilibria_checked as f64),
                ),
                (
                    "handovers_checked".to_string(),
                    Json::Num(a.handovers_checked as f64),
                ),
            ]),
        ));
    }
    if let Some(n) = &s.net {
        let mut net = vec![
            ("mean_occupancy".to_string(), Json::Num(n.mean_occupancy)),
            (
                "max_occupancy".to_string(),
                Json::Num(n.max_occupancy as f64),
            ),
            (
                "occupied_shards".to_string(),
                Json::Num(n.occupied_shards as f64),
            ),
            ("edps".to_string(), Json::Num(n.edps as f64)),
            ("requesters".to_string(), Json::Num(n.requesters as f64)),
            (
                "mean_interferers".to_string(),
                Json::Num(n.mean_interferers),
            ),
            ("k_int".to_string(), Json::Num(n.k_int as f64)),
        ];
        if let Some((fraction, count)) = n.truncated_power {
            net.push(("truncated_fraction".to_string(), Json::Num(fraction)));
            net.push(("truncated_count".to_string(), Json::Num(count as f64)));
        }
        fields.push(("net".into(), Json::Obj(net)));
    }
    Json::Obj(fields)
}

/// Render a [`ForkOutcome`] as the JSON document of the `0x28` query.
pub fn fork_json(id: u32, outcome: Option<&ForkOutcome>) -> Json {
    let mut fields = vec![("id".to_string(), Json::Num(id as f64))];
    match outcome {
        None => fields.push(("state".into(), Json::Str("unknown".into()))),
        Some(ForkOutcome::Running) => {
            fields.push(("state".into(), Json::Str("running".into())));
        }
        Some(ForkOutcome::Failed(reason)) => {
            fields.push(("state".into(), Json::Str("failed".into())));
            fields.push(("reason".into(), Json::Str(reason.clone())));
        }
        Some(ForkOutcome::Done {
            converged,
            iterations,
            price0,
            mass_drift,
        }) => {
            fields.push(("state".into(), Json::Str("done".into())));
            fields.push(("converged".into(), Json::Bool(*converged)));
            fields.push(("iterations".into(), Json::Num(*iterations as f64)));
            fields.push(("price0".into(), Json::Num(*price0)));
            fields.push(("mass_drift".into(), Json::Num(*mass_drift)));
        }
    }
    Json::Obj(fields)
}
