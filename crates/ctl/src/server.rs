//! The control-plane TCP server.
//!
//! One acceptor thread plus two threads per connection: a *reader* that
//! blocks on frames and forwards decoded requests over a channel, and a
//! *writer* that owns the socket, interleaving request replies with
//! streamed `0xC0` event frames drained from the connection's
//! [`Subscription`]. The writer is the only thread that ever writes, so
//! frames never interleave mid-frame; the reader never writes, so a
//! client pipelining requests while streaming stays coherent.
//!
//! Backpressure never reaches the simulation: the broadcast sink's
//! bounded per-subscriber queues drop (and count) events the writer
//! hasn't drained, and a writer stuck on a full socket simply stops
//! draining its own queue. Shutdown reuses the policy server's drain
//! discipline ([`mfgcp_serve::wire`]): writers flush their queues, then
//! half-close and linger so no delivered frame is ever reset away.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mfgcp_core::Params;
use mfgcp_obs::{BroadcastSink, Subscription, SubscriptionFilter};
use mfgcp_serve::wire::{linger_close, read_frame, write_frame, ConnectionRegistry};
use mfgcp_serve::{ErrorCode, WireError, MAX_FRAME_LEN};

use crate::plane::{fork_json, snapshot_json, ControlPlane};
use crate::protocol::{CtlReply, CtlRequest};

/// How often the writer wakes to drain stream events when idle.
const POLL: Duration = Duration::from_millis(20);
/// Drain window for the half-close handshake on connection teardown.
const LINGER: Duration = Duration::from_millis(500);
/// Write timeout: a peer that stops reading for this long is dropped
/// (its subscription closes; the simulation never notices).
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);
/// Largest subscriber queue a client may request.
const MAX_SUBSCRIBER_CAPACITY: u32 = 65_536;

/// A running control-plane server. Attach its [`plane`](Self::plane) to
/// the simulation with `Simulation::set_control`, run the simulation,
/// then call [`shutdown`](Self::shutdown).
pub struct CtlServer {
    plane: Arc<ControlPlane>,
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
    registry: Arc<ConnectionRegistry>,
    acceptor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl CtlServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    /// `params` seeds what-if forks; `sink` is the broadcast sink the
    /// simulation records through; `hold` parks the gate before slot 0 so
    /// a client can attach first.
    ///
    /// # Errors
    ///
    /// Returns the bind error, if any.
    pub fn spawn(
        addr: &str,
        params: Params,
        sink: Arc<BroadcastSink>,
        hold: bool,
    ) -> std::io::Result<CtlServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let plane = Arc::new(ControlPlane::new(params, sink, hold));
        let closing = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnectionRegistry::new());
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let plane = Arc::clone(&plane);
            let closing = Arc::clone(&closing);
            let registry = Arc::clone(&registry);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if closing.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Some(token) = registry.register(&stream) else {
                        continue;
                    };
                    let plane = Arc::clone(&plane);
                    let closing = Arc::clone(&closing);
                    let registry = Arc::clone(&registry);
                    let addr_for_poke = addr;
                    let worker = std::thread::spawn(move || {
                        serve_connection(stream, token, plane, closing, registry, addr_for_poke);
                    });
                    workers.lock().unwrap().push(worker);
                }
            })
        };

        Ok(CtlServer {
            plane,
            addr,
            closing,
            registry,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared control plane — pass `Arc::clone` of this to
    /// `Simulation::set_control`.
    pub fn plane(&self) -> &Arc<ControlPlane> {
        &self.plane
    }

    /// Stop accepting, flush and close every connection, join every
    /// worker and fork thread. The gate detaches first, so a paused
    /// simulation can never be stranded by an observer going away.
    pub fn shutdown(mut self) {
        self.plane.detach();
        self.closing.store(true, Ordering::SeqCst);
        // Poke the acceptor out of `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Writers notice `closing` within one poll tick, drain their
        // queues, half-close, and exit; join them all.
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap();
            guard.drain(..).collect()
        };
        for w in workers {
            let _ = w.join();
        }
        // Anything still registered (raced the drain) is closed hard.
        self.registry.drain();
        self.plane.sink().close_all();
        self.plane.join_forks();
    }
}

/// What the per-connection writer should do after a handled request.
enum Next {
    /// Keep serving this connection.
    Continue,
    /// Close this connection (detach).
    CloseConnection,
    /// Shut the whole server down.
    CloseServer,
}

fn serve_connection(
    stream: TcpStream,
    token: u64,
    plane: Arc<ControlPlane>,
    closing: Arc<AtomicBool>,
    registry: Arc<ConnectionRegistry>,
    poke_addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let (tx, rx) = mpsc::channel::<Result<CtlRequest, WireError>>();
    let reader = {
        let Ok(mut rstream) = stream.try_clone() else {
            registry.deregister(token);
            return;
        };
        std::thread::spawn(move || {
            // Clean EOF or a framing-level failure: the connection is
            // done reading either way.
            while let Ok(Some(payload)) = read_frame(&mut rstream, MAX_FRAME_LEN) {
                if tx.send(CtlRequest::decode(&payload)).is_err() {
                    break;
                }
            }
        })
    };

    let mut stream = stream;
    let mut sub: Option<Subscription> = None;
    let mut server_shutdown = false;
    loop {
        if closing.load(Ordering::SeqCst) {
            break;
        }
        if !drain_events(&mut stream, &sub) {
            break;
        }
        match rx.recv_timeout(POLL) {
            Ok(decoded) => {
                let (reply, next) = match decoded {
                    Ok(req) => handle_request(req, &plane, &mut sub),
                    Err(e) => (
                        CtlReply::Error {
                            code: e.code,
                            message: e.message,
                        },
                        Next::Continue,
                    ),
                };
                if write_frame(&mut stream, &reply.encode()).is_err() {
                    break;
                }
                match next {
                    Next::Continue => {}
                    Next::CloseConnection => break,
                    Next::CloseServer => {
                        server_shutdown = true;
                        break;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Flush whatever the subscription still holds, then half-close so
    // every delivered frame survives the teardown.
    let _ = drain_events(&mut stream, &sub);
    let _ = stream.flush();
    linger_close(&stream, LINGER);
    // Unblock the reader thread if the peer is holding the (already
    // FIN'd and drained) connection open.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    registry.deregister(token);
    drop(sub);
    let _ = reader.join();
    if server_shutdown {
        plane.detach();
        closing.store(true, Ordering::SeqCst);
        // Poke the acceptor so it observes `closing`.
        let _ = TcpStream::connect(poke_addr);
    }
}

/// Write every queued stream event as an `0xC0` frame. Returns `false`
/// on a write failure (connection considered dead).
fn drain_events(stream: &mut TcpStream, sub: &Option<Subscription>) -> bool {
    let Some(sub) = sub else { return true };
    while let Some(event) = sub.try_recv() {
        let frame = CtlReply::Event(event.to_json_line()).encode();
        if write_frame(stream, &frame).is_err() {
            return false;
        }
    }
    true
}

fn handle_request(
    req: CtlRequest,
    plane: &Arc<ControlPlane>,
    sub: &mut Option<Subscription>,
) -> (CtlReply, Next) {
    let ok = |json: mfgcp_obs::json::Json| CtlReply::Ok(json.to_json_string());
    match req {
        CtlRequest::Subscribe { capacity, filters } => {
            if capacity > MAX_SUBSCRIBER_CAPACITY {
                return (
                    CtlReply::Error {
                        code: ErrorCode::Malformed,
                        message: format!(
                            "capacity {capacity} exceeds max {MAX_SUBSCRIBER_CAPACITY}"
                        ),
                    },
                    Next::Continue,
                );
            }
            // Re-subscribing replaces (and closes) the previous stream.
            if let Some(old) = sub.take() {
                old.close();
            }
            let filter = if filters.is_empty() {
                SubscriptionFilter::all()
            } else {
                SubscriptionFilter::new(filters.clone())
            };
            *sub = Some(plane.sink().subscribe(capacity as usize, filter));
            (
                ok(mfgcp_obs::json::Json::Obj(vec![
                    ("subscribed".to_string(), mfgcp_obs::json::Json::Bool(true)),
                    (
                        "capacity".to_string(),
                        mfgcp_obs::json::Json::Num(capacity as f64),
                    ),
                    (
                        "filters".to_string(),
                        mfgcp_obs::json::Json::Arr(
                            filters
                                .iter()
                                .map(|f| mfgcp_obs::json::Json::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                ])),
                Next::Continue,
            )
        }
        CtlRequest::Snapshot => match plane.latest() {
            Some(snap) => (ok(snapshot_json(&snap)), Next::Continue),
            None => (ok(mfgcp_obs::json::Json::Null), Next::Continue),
        },
        CtlRequest::Occupancy { offset, len } => {
            let (total, offset, values) = match plane.latest() {
                Some(snap) => {
                    let total = snap.occupancy.len() as u32;
                    let start = offset.min(total);
                    let end = start.saturating_add(len).min(total);
                    (
                        total,
                        start,
                        snap.occupancy[start as usize..end as usize].to_vec(),
                    )
                }
                None => (0, 0, Vec::new()),
            };
            (
                CtlReply::Occupancy {
                    total,
                    offset,
                    values,
                },
                Next::Continue,
            )
        }
        CtlRequest::Pause => {
            plane.pause();
            (ok(plane.status_json()), Next::Continue)
        }
        CtlRequest::Step { n } => {
            plane.step(n as u64);
            (ok(plane.status_json()), Next::Continue)
        }
        CtlRequest::Resume => {
            plane.resume();
            (ok(plane.status_json()), Next::Continue)
        }
        CtlRequest::Fork => match plane.fork() {
            Some(id) => (
                ok(fork_json(id, Some(&crate::plane::ForkOutcome::Running))),
                Next::Continue,
            ),
            None => (
                CtlReply::Error {
                    code: ErrorCode::Internal,
                    message: "no snapshot published yet; cannot fork".to_string(),
                },
                Next::Continue,
            ),
        },
        CtlRequest::ForkStatus { id } => (
            ok(fork_json(id, plane.fork_outcome(id).as_ref())),
            Next::Continue,
        ),
        CtlRequest::Status => (ok(plane.status_json()), Next::Continue),
        CtlRequest::Ping => (CtlReply::Pong, Next::Continue),
        CtlRequest::Shutdown => (
            ok(mfgcp_obs::json::Json::Obj(vec![(
                "shutdown".to_string(),
                mfgcp_obs::json::Json::Bool(true),
            )])),
            Next::CloseServer,
        ),
        CtlRequest::Detach => (
            ok(mfgcp_obs::json::Json::Obj(vec![(
                "detached".to_string(),
                mfgcp_obs::json::Json::Bool(true),
            )])),
            Next::CloseConnection,
        ),
    }
}
