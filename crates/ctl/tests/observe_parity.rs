//! The control plane's non-negotiable invariant, end to end: a run that
//! is observed, paused, stepped, forked, and resumed over TCP produces a
//! `SimReport` bit-identical to a free run — and the bounded broadcast
//! sink accounts for every frame a slow subscriber forced it to drop.

use std::sync::Arc;
use std::time::Duration;

use mfgcp_ctl::{CtlClient, CtlReply, CtlRequest, CtlServer};
use mfgcp_obs::{BroadcastSink, RecorderHandle, SubscriptionFilter};
use mfgcp_sim::{baselines::MostPopularCaching, SimConfig, SimReport, Simulation};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.audit = true;
    cfg
}

fn free_run() -> SimReport {
    Simulation::new(test_config(), Box::new(MostPopularCaching::default()))
        .unwrap()
        .run()
}

fn assert_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.per_edp, b.per_edp, "{what}: per-EDP metrics diverged");
    assert_eq!(a.series.len(), b.series.len(), "{what}: series length");
    for (x, y) in a.series.iter().zip(&b.series) {
        assert_eq!(x, y, "{what}: slot series diverged");
    }
}

/// Poll status until `pred` holds (the engine parks asynchronously).
fn wait_status(
    client: &mut CtlClient,
    pred: impl Fn(&mfgcp_obs::json::Json) -> bool,
) -> mfgcp_obs::json::Json {
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        let status = client
            .request_json(&CtlRequest::Status, TIMEOUT)
            .expect("status");
        if pred(&status) {
            return status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "status predicate never held; last: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn observed_run_with_pause_step_fork_is_bit_identical_to_free_run() {
    let baseline = free_run();

    let sink = Arc::new(BroadcastSink::new());
    // A deliberately starved in-process subscriber: capacity 2 against a
    // full run of market.slot events, never drained until the end.
    let starved = sink.subscribe(2, SubscriptionFilter::new(vec!["market.slot".into()]));

    let cfg = test_config();
    let total_slots = (cfg.epochs * cfg.slots_per_epoch) as u64;
    let server = CtlServer::spawn(
        "127.0.0.1:0",
        cfg.params.clone(),
        Arc::clone(&sink),
        true, // hold: park before slot 0 so the client attaches first
    )
    .expect("bind control server");
    let addr = server.local_addr().to_string();

    let mut sim = Simulation::new(cfg, Box::new(MostPopularCaching::default())).unwrap();
    sim.set_recorder(RecorderHandle::new(Arc::clone(&sink)));
    sim.set_control(Arc::clone(server.plane()) as Arc<dyn mfgcp_sim::EngineControl>);
    let sim_thread = std::thread::spawn(move || sim.run());

    let mut client = CtlClient::connect(&addr).expect("connect");

    // Subscribe over the wire too (ample capacity; this one must see
    // every market.slot event exactly once, drops = 0 for it).
    let sub = client
        .request_json(
            &CtlRequest::Subscribe {
                capacity: 4096,
                filters: vec!["market.slot".into()],
            },
            TIMEOUT,
        )
        .expect("subscribe");
    assert_eq!(sub.get("subscribed").and_then(|j| j.as_bool()), Some(true));

    // Held before slot 0: nothing has run.
    let status = wait_status(&mut client, |s| {
        s.get("global_slot").and_then(|j| j.as_u64()) == Some(0)
    });
    assert_eq!(status.get("paused").and_then(|j| j.as_bool()), Some(true));

    // Step exactly 3 slots, wait for the engine to park at boundary 3.
    client
        .request_json(&CtlRequest::Step { n: 3 }, TIMEOUT)
        .expect("step");
    wait_status(&mut client, |s| {
        s.get("global_slot").and_then(|j| j.as_u64()) == Some(3)
            && s.get("step_budget").and_then(|j| j.as_u64()) == Some(0)
    });

    // Snapshot at the parked boundary.
    let snap = client
        .request_json(&CtlRequest::Snapshot, TIMEOUT)
        .expect("snapshot");
    assert_eq!(snap.get("global_slot").and_then(|j| j.as_u64()), Some(3));
    assert_eq!(
        snap.get("total_slots").and_then(|j| j.as_u64()),
        Some(total_slots)
    );
    assert_eq!(snap.get("finished").and_then(|j| j.as_bool()), Some(false));
    // Three slots in, the previous slot's price distribution exists and
    // the audit is clean.
    assert!(snap.get("price_hist").is_some(), "price_hist after 3 slots");
    let audit = snap.get("audit").expect("audit status in snapshot");
    assert_eq!(audit.get("clean").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(audit.get("slots_checked").and_then(|j| j.as_u64()), Some(3));

    // Occupancy slice: bit-exact f64s, bounds clamped.
    let occ = client
        .request(
            &CtlRequest::Occupancy {
                offset: 0,
                len: 1024,
            },
            TIMEOUT,
        )
        .expect("occupancy");
    let CtlReply::Occupancy {
        total,
        offset,
        values,
    } = occ
    else {
        panic!("expected occupancy reply, got {occ:?}");
    };
    assert_eq!(offset, 0);
    assert_eq!(total as usize, values.len());
    assert_eq!(total as usize, test_config().num_edps);
    assert!(values.iter().all(|v| v.is_finite()));

    // Seed-fork a what-if solve from the live density and poll it home.
    let fork = client
        .request_json(&CtlRequest::Fork, TIMEOUT)
        .expect("fork");
    let fork_id = fork.get("id").and_then(|j| j.as_u64()).expect("fork id") as u32;
    let deadline = std::time::Instant::now() + TIMEOUT;
    let done = loop {
        let st = client
            .request_json(&CtlRequest::ForkStatus { id: fork_id }, TIMEOUT)
            .expect("fork status");
        match st.get("state").and_then(|j| j.as_str()) {
            Some("done") => break st,
            Some("failed") => panic!("fork failed: {st:?}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "fork never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    // The forked solve ran the PR 7 batched solver to completion on the
    // live density: finite diagnostics, conserved FPK mass.
    assert!(done.get("iterations").and_then(|j| j.as_u64()).unwrap() > 0);
    let drift = done.get("mass_drift").and_then(|j| j.as_f64()).unwrap();
    assert!(drift.is_finite() && drift < 0.05, "fork mass drift {drift}");
    assert!(done
        .get("price0")
        .and_then(|j| j.as_f64())
        .unwrap()
        .is_finite());

    // Resume and let the run finish.
    client
        .request_json(&CtlRequest::Resume, TIMEOUT)
        .expect("resume");
    let observed = sim_thread.join().expect("simulation thread");

    let status = wait_status(&mut client, |s| {
        s.get("finished").and_then(|j| j.as_bool()) == Some(true)
    });

    // Slow-subscriber accounting: the starved queue (capacity 2) saw
    // every matched event exactly once as enqueued-or-dropped.
    assert_eq!(starved.enqueued() + starved.dropped(), total_slots);
    assert!(
        starved.dropped() >= total_slots - 2,
        "expected most frames dropped, got {}",
        starved.dropped()
    );
    // The sink-level totals the status query reports include them.
    let dropped_total = status
        .get("frames_dropped")
        .and_then(|j| j.as_u64())
        .unwrap();
    assert!(dropped_total >= starved.dropped());

    // The well-provisioned wire subscriber missed nothing: one frame per
    // slot, sequences strictly increasing.
    let mut streamed = 0u64;
    let mut last_seq = None;
    while let Some(line) = client.poll_event(Duration::from_millis(200)) {
        let ev = mfgcp_obs::json::parse(&line).expect("streamed event parses");
        assert_eq!(
            ev.get("name").and_then(|j| j.as_str()),
            Some("market.slot"),
            "filter leaked a foreign series: {line}"
        );
        let seq = ev.get("seq").and_then(|j| j.as_u64()).expect("seq");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "sequence regressed: {prev} -> {seq}");
        }
        last_seq = Some(seq);
        streamed += 1;
    }
    assert_eq!(streamed, total_slots, "one market.slot frame per slot");

    // Clean detach, then full server teardown.
    let detach = client
        .request_json(&CtlRequest::Detach, TIMEOUT)
        .expect("detach");
    assert_eq!(detach.get("detached").and_then(|j| j.as_bool()), Some(true));
    server.shutdown();

    // The invariant: observation, pause, step, fork, resume — all of it
    // — changed nothing about what the run computed.
    assert_bit_identical(&baseline, &observed, "observed vs free");
    let audit = observed.audit.as_ref().expect("audited run");
    assert!(audit.is_clean(), "audit violations: {:?}", audit.violations);
}

#[test]
fn idle_observer_and_client_shutdown_leave_the_run_untouched() {
    let baseline = free_run();

    // Observer attached but no client ever connects; gate never held.
    let sink = Arc::new(BroadcastSink::new());
    let cfg = test_config();
    let server = CtlServer::spawn("127.0.0.1:0", cfg.params.clone(), Arc::clone(&sink), false)
        .expect("bind control server");
    let mut sim = Simulation::new(cfg, Box::new(MostPopularCaching::default())).unwrap();
    sim.set_recorder(RecorderHandle::new(Arc::clone(&sink)));
    sim.set_control(Arc::clone(server.plane()) as Arc<dyn mfgcp_sim::EngineControl>);
    let observed = sim.run();
    server.shutdown();
    assert_bit_identical(&baseline, &observed, "idle observer vs free");

    // Client-driven shutdown mid-run: the gate detaches, the run
    // completes unobserved, still bit-identical.
    let sink = Arc::new(BroadcastSink::new());
    let cfg = test_config();
    let server = CtlServer::spawn("127.0.0.1:0", cfg.params.clone(), Arc::clone(&sink), true)
        .expect("bind control server");
    let addr = server.local_addr().to_string();
    let mut sim = Simulation::new(cfg, Box::new(MostPopularCaching::default())).unwrap();
    sim.set_recorder(RecorderHandle::new(Arc::clone(&sink)));
    sim.set_control(Arc::clone(server.plane()) as Arc<dyn mfgcp_sim::EngineControl>);
    let sim_thread = std::thread::spawn(move || sim.run());

    let mut client = CtlClient::connect(&addr).expect("connect");
    let ack = client
        .request_json(&CtlRequest::Shutdown, TIMEOUT)
        .expect("shutdown");
    assert_eq!(ack.get("shutdown").and_then(|j| j.as_bool()), Some(true));
    let observed = sim_thread.join().expect("simulation thread");
    server.shutdown();
    assert_bit_identical(&baseline, &observed, "client shutdown vs free");
}
