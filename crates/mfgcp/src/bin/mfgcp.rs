//! The `mfgcp` command-line tool: solve mean-field equilibria, run
//! finite-population market simulations (optionally observed live),
//! and serve saved equilibria over TCP from the shell.
//!
//! ```sh
//! mfgcp solve --eta1 2 --salvage 1 --save-equilibrium eq.bin
//! mfgcp simulate --scheme mfg-cp --edps 50 --mobility
//! mfgcp serve --artifact eq.bin --addr 127.0.0.1:7171
//! mfgcp query --t 0.5 --h 1.2 --q 0.3
//! mfgcp simulate --observe 127.0.0.1:7181 &
//! mfgcp watch --filter market.slot
//! mfgcp ctl --pause && mfgcp ctl --step 3 && mfgcp ctl --snapshot
//! ```

use std::sync::Arc;
use std::time::Duration;

use mfgcp::cli::{parse, Command, CtlAction, QueryAction, Scheme, HELP};
use mfgcp::ctl::{CtlClient, CtlRequest, CtlServer};
use mfgcp::obs::{json::Json, BroadcastSink};
use mfgcp::prelude::*;
use mfgcp::serve::{Client, PolicyServer, ServeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            std::process::exit(2);
        }
    };
    match command {
        Command::Help => print!("{HELP}"),
        Command::Version => println!("{}", mfgcp::serve::build_info()),
        Command::Solve {
            params,
            telemetry,
            save_equilibrium,
        } => run_solve(*params, telemetry.as_deref(), save_equilibrium.as_deref()),
        Command::Simulate {
            config,
            scheme,
            mobility,
            telemetry,
            observe,
            observe_hold,
        } => run_simulate(
            *config,
            scheme,
            mobility,
            telemetry.as_deref(),
            observe.as_deref(),
            observe_hold,
        ),
        Command::Serve {
            artifact,
            addr,
            threads,
            read_timeout_secs,
            telemetry,
        } => run_serve(
            &artifact,
            &addr,
            threads,
            read_timeout_secs,
            telemetry.as_deref(),
        ),
        Command::Query { addr, action } => run_query(&addr, action),
        Command::Watch {
            addr,
            filters,
            raw,
            max_events,
        } => run_watch(&addr, filters, raw, max_events),
        Command::Ctl { addr, action } => run_ctl(&addr, action),
    }
}

/// Open the `--telemetry` JSONL sink, exiting with a diagnostic when the
/// path is not writable. `None` stays the no-op recorder.
fn open_recorder(telemetry: Option<&str>) -> RecorderHandle {
    match telemetry {
        None => RecorderHandle::noop(),
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => RecorderHandle::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("error: cannot create telemetry file `{path}`: {e}");
                std::process::exit(1);
            }
        },
    }
}

fn run_solve(params: Params, telemetry: Option<&str>, save_equilibrium: Option<&str>) {
    println!(
        "Solving MFG-CP equilibrium: grid {}x{}, {} steps, eta1 = {}, w5 = {}, salvage = {}",
        params.grid_h,
        params.grid_q,
        params.time_steps,
        params.eta1,
        params.w5,
        params.terminal_value_weight
    );
    let recorder = open_recorder(telemetry);
    let solver = match MfgSolver::new(params) {
        Ok(s) => s.with_recorder(recorder.clone()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let ctx = ContentContext::from_params(solver.params());
    let eq = solver.solve_with(&vec![ctx; solver.params().time_steps], None);
    recorder.flush();
    println!(
        "Converged: {} ({} iterations, final residual {:.2e})",
        eq.report.converged,
        eq.report.iterations,
        eq.report.final_residual()
    );
    let prices = eq.price_series();
    println!(
        "Price p_k(t): {:.3} -> {:.3}  (p_hat = {})",
        prices[0],
        prices[prices.len() - 1],
        eq.params.p_hat
    );
    let means = eq.mean_remaining_space();
    println!(
        "Mean remaining space: {:.3} -> {:.3}",
        means[0],
        means[means.len() - 1]
    );
    println!("Accumulated utility: {:.3}", eq.accumulated_utility());
    println!("Deviation gap (Nash check): {:.4}", eq.deviation_gap(11));
    println!("\nPolicy x*(t, h = mean, q):");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "t", "q=0.1", "q=0.3", "q=0.5", "q=0.7", "q=0.9"
    );
    let h = eq.params.upsilon_h;
    let qk = eq.params.q_size;
    for frac in [0.0, 0.25, 0.5, 0.75] {
        let t = frac * eq.params.t_horizon;
        print!("{t:>6.2}");
        for qf in [0.1, 0.3, 0.5, 0.7, 0.9] {
            print!(" {:>8.3}", eq.policy_at(t, h, qf * qk));
        }
        println!();
    }
    if let Some(path) = save_equilibrium {
        match mfgcp::serve::artifact::save(&eq, std::path::Path::new(path)) {
            Ok(()) => println!("\nSaved equilibrium artifact to {path}"),
            Err(e) => {
                eprintln!("error: cannot save equilibrium to `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_serve(
    artifact: &str,
    addr: &str,
    threads: usize,
    read_timeout_secs: u64,
    telemetry: Option<&str>,
) {
    let loaded = match mfgcp::serve::load(std::path::Path::new(artifact)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot load artifact `{artifact}`: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Loaded artifact {artifact}: format v{}, fingerprint {:016x}, {} steps, grid {}x{}, built by {}",
        loaded.header.format_version,
        loaded.header.fingerprint,
        loaded.header.time_steps,
        loaded.header.grid_h,
        loaded.header.grid_q,
        loaded.header.build_info,
    );
    let recorder = open_recorder(telemetry);
    let config = ServeConfig {
        threads,
        read_timeout: Duration::from_secs(read_timeout_secs.max(1)),
        ..ServeConfig::default()
    };
    let handle = match PolicyServer::start(addr, Arc::new(loaded.equilibrium), config, recorder) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind `{addr}`: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Serving on {} (stop with `mfgcp query --addr {} --shutdown`)",
        handle.local_addr(),
        handle.local_addr()
    );
    handle.join();
    println!("Server stopped.");
}

fn run_query(addr: &str, action: QueryAction) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to `{addr}`: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = client.set_timeout(Some(Duration::from_secs(10))) {
        eprintln!("error: cannot set socket timeout: {e}");
        std::process::exit(1);
    }
    let outcome = match action {
        QueryAction::Point { t, h, q } => client.query(t, h, q).map(|p| {
            println!("x*({t}, {h}, {q}) = {}", p.x);
            println!("p*({t})       = {}", p.price);
            println!("q_bar({t})    = {}", p.q_bar);
        }),
        QueryAction::Ping => client.ping().map(|()| println!("pong from {addr}")),
        QueryAction::Info => client.info().map(|info| {
            println!("fingerprint: {:016x}", info.fingerprint);
            println!("time_steps:  {}", info.time_steps);
            println!("grid:        {}x{}", info.grid_h, info.grid_q);
            println!("build_info:  {}", info.build_info);
        }),
        QueryAction::Shutdown => client
            .shutdown_server()
            .map(|()| println!("server at {addr} acknowledged shutdown")),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run_simulate(
    config: SimConfig,
    scheme: Scheme,
    mobility: bool,
    telemetry: Option<&str>,
    observe: Option<&str>,
    observe_hold: bool,
) {
    let mut config = config;
    if mobility {
        config.mobility = Some(mfgcp::net::RandomWaypoint::default());
    }
    println!(
        "Simulating {}: M = {}, J = {}, K = {}, {} epochs x {} slots, seed {}{}",
        scheme.name(),
        config.num_edps,
        config.num_requesters,
        config.num_contents,
        config.epochs,
        config.slots_per_epoch,
        config.seed,
        if mobility { ", mobile requesters" } else { "" }
    );
    let params = config.params.clone();
    let built = match scheme {
        Scheme::MfgCp => MfgCpPolicy::new(params).map(|p| Box::new(p) as Box<dyn CachingPolicy>),
        Scheme::Mfg => {
            MfgCpPolicy::without_sharing(params).map(|p| Box::new(p) as Box<dyn CachingPolicy>)
        }
        Scheme::Udcs => Ok(Box::new(Udcs::default()) as Box<dyn CachingPolicy>),
        Scheme::Mpc => Ok(Box::new(MostPopularCaching::default()) as Box<dyn CachingPolicy>),
        Scheme::Rr => Ok(Box::new(RandomReplacement) as Box<dyn CachingPolicy>),
    };
    let policy = match built {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // `--observe` swaps the plain recorder for a broadcast sink (still
    // teeing `--telemetry` to disk) and spawns the control server before
    // the run so a held simulation is reachable from slot 0.
    let (recorder, server) = match observe {
        None => (open_recorder(telemetry), None),
        Some(addr) => {
            let sink = Arc::new(match telemetry {
                None => BroadcastSink::new(),
                Some(path) => match JsonlSink::create(path) {
                    Ok(inner) => BroadcastSink::tee(Arc::new(inner)),
                    Err(e) => {
                        eprintln!("error: cannot create telemetry file `{path}`: {e}");
                        std::process::exit(1);
                    }
                },
            });
            let server = match CtlServer::spawn(
                addr,
                config.params.clone(),
                Arc::clone(&sink),
                observe_hold,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind control plane on `{addr}`: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "Control plane on {} ({}; attach with `mfgcp watch` / `mfgcp ctl`)",
                server.local_addr(),
                if observe_hold {
                    "held before slot 0"
                } else {
                    "free-running"
                }
            );
            (RecorderHandle::new(Arc::clone(&sink)), Some(server))
        }
    };
    let mut sim = match Simulation::new(config, policy) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    sim.set_recorder(recorder.clone());
    if let Some(server) = &server {
        sim.set_control(Arc::clone(server.plane()) as Arc<dyn mfgcp::sim::EngineControl>);
    }
    let report = sim.run();
    recorder.flush();
    if let Some(server) = server {
        server.shutdown();
    }
    let (c1, c2, c3) = report.case_totals();
    println!("\n{:<22} {:>12}", "metric", "value");
    println!("{:<22} {:>12.3}", "mean utility", report.mean_utility());
    println!(
        "{:<22} {:>12.3}",
        "mean trading income",
        report.mean_trading_income()
    );
    println!(
        "{:<22} {:>12.3}",
        "mean staleness cost",
        report.mean_staleness_cost()
    );
    println!(
        "{:<22} {:>12.3}",
        "mean sharing benefit",
        report.mean_sharing_benefit()
    );
    println!("{:<22} {:>12}", "cases (1/2/3)", format!("{c1}/{c2}/{c3}"));
    if let Some(audit) = report.audit {
        println!("\n{audit}");
        if !audit.is_clean() {
            for violation in audit.violations.iter().take(10) {
                eprintln!("audit violation [{}]: {violation}", violation.invariant());
            }
            if audit.violations.len() > 10 {
                eprintln!("... and {} more", audit.violations.len() - 10);
            }
            std::process::exit(1);
        }
    }
}

/// Request timeout for `watch` / `ctl` exchanges.
const CTL_TIMEOUT: Duration = Duration::from_secs(10);

/// Wire-subscriber queue depth for `watch` (frames beyond it are
/// dropped and counted, never blocking the simulation).
const WATCH_CAPACITY: u32 = 4096;

fn connect_ctl(addr: &str) -> CtlClient {
    match CtlClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to control plane at `{addr}`: {e}");
            std::process::exit(1);
        }
    }
}

fn run_watch(addr: &str, filters: Vec<String>, raw: bool, max_events: Option<u64>) {
    let mut client = connect_ctl(addr);
    let label = if filters.is_empty() {
        "all series".to_string()
    } else {
        filters.join(", ")
    };
    if let Err(e) = client.request_json(
        &CtlRequest::Subscribe {
            capacity: WATCH_CAPACITY,
            filters,
        },
        CTL_TIMEOUT,
    ) {
        eprintln!("error: subscribe failed: {e}");
        std::process::exit(1);
    }
    eprintln!("watching {addr} ({label}); ctrl-c to stop");
    let mut shown = 0u64;
    'stream: loop {
        if max_events.is_some_and(|limit| shown >= limit) {
            break;
        }
        match client.poll_event(Duration::from_millis(500)) {
            Some(line) => {
                print_event(&line, raw);
                shown += 1;
            }
            None => {
                // Idle half-second: distinguish "run still going" from
                // "run finished" (drain stragglers, then stop). A lost
                // connection here is the server tearing down after the
                // run — the normal end of the stream, not an error.
                let finished = match client.request_json(&CtlRequest::Status, CTL_TIMEOUT) {
                    Ok(status) => status.get("finished").and_then(|j| j.as_bool()) == Some(true),
                    Err(_) => {
                        eprintln!("stream closed by server");
                        true
                    }
                };
                if finished {
                    while let Some(line) = client.poll_event(Duration::from_millis(100)) {
                        if max_events.is_some_and(|limit| shown >= limit) {
                            break 'stream;
                        }
                        print_event(&line, raw);
                        shown += 1;
                    }
                    break;
                }
            }
        }
    }
    let _ = client.request(&CtlRequest::Detach, CTL_TIMEOUT);
    eprintln!("{shown} event(s)");
}

/// Print one streamed event line: raw JSONL, or the minimal ANSI live
/// view (dim sequence number, cyan series name, inline payload).
fn print_event(line: &str, raw: bool) {
    if raw {
        println!("{line}");
        return;
    }
    let Ok(ev) = mfgcp::obs::json::parse(line) else {
        println!("{line}");
        return;
    };
    let seq = ev.get("seq").and_then(|j| j.as_u64()).unwrap_or(0);
    let name = ev.get("name").and_then(|j| j.as_str()).unwrap_or("?");
    let kind = ev.get("kind").and_then(|j| j.as_str()).unwrap_or("?");
    let mut payload = String::new();
    if let Some(value) = ev.get("value").and_then(|j| j.as_f64()) {
        payload.push_str(&format!(" value={value:.6}"));
    }
    if let Some(Json::Obj(fields)) = ev.get("fields") {
        for (key, val) in fields {
            match val {
                Json::Num(x) => payload.push_str(&format!(" {key}={x:.6}")),
                Json::Str(s) => payload.push_str(&format!(" {key}={s}")),
                Json::Bool(b) => payload.push_str(&format!(" {key}={b}")),
                _ => {}
            }
        }
    }
    println!("\x1b[2m{seq:>8}\x1b[0m \x1b[36m{name}\x1b[0m \x1b[2m{kind}\x1b[0m{payload}");
}

fn run_ctl(addr: &str, action: CtlAction) {
    let mut client = connect_ctl(addr);
    let request = match action {
        CtlAction::Pause => CtlRequest::Pause,
        CtlAction::Resume => CtlRequest::Resume,
        CtlAction::Step(n) => CtlRequest::Step { n },
        CtlAction::Snapshot => CtlRequest::Snapshot,
        CtlAction::Fork => CtlRequest::Fork,
        CtlAction::ForkStatus(id) => CtlRequest::ForkStatus { id },
        CtlAction::Status => CtlRequest::Status,
        CtlAction::Ping => CtlRequest::Ping,
        CtlAction::Shutdown => CtlRequest::Shutdown,
    };
    if action == CtlAction::Ping {
        match client.request(&request, CTL_TIMEOUT) {
            Ok(_) => println!("pong from {addr}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match client.request_json(&request, CTL_TIMEOUT) {
        Ok(doc) => println!("{}", doc.to_json_string()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
