//! The `mfgcp` command-line tool: solve mean-field equilibria and run
//! finite-population market simulations from the shell.
//!
//! ```sh
//! mfgcp solve --eta1 2 --salvage 1
//! mfgcp simulate --scheme mfg-cp --edps 50 --mobility
//! ```

use std::sync::Arc;

use mfgcp::cli::{parse, Command, Scheme, HELP};
use mfgcp::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            std::process::exit(2);
        }
    };
    match command {
        Command::Help => print!("{HELP}"),
        Command::Solve { params, telemetry } => run_solve(*params, telemetry.as_deref()),
        Command::Simulate {
            config,
            scheme,
            mobility,
            telemetry,
        } => run_simulate(*config, scheme, mobility, telemetry.as_deref()),
    }
}

/// Open the `--telemetry` JSONL sink, exiting with a diagnostic when the
/// path is not writable. `None` stays the no-op recorder.
fn open_recorder(telemetry: Option<&str>) -> RecorderHandle {
    match telemetry {
        None => RecorderHandle::noop(),
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => RecorderHandle::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("error: cannot create telemetry file `{path}`: {e}");
                std::process::exit(1);
            }
        },
    }
}

fn run_solve(params: Params, telemetry: Option<&str>) {
    println!(
        "Solving MFG-CP equilibrium: grid {}x{}, {} steps, eta1 = {}, w5 = {}, salvage = {}",
        params.grid_h,
        params.grid_q,
        params.time_steps,
        params.eta1,
        params.w5,
        params.terminal_value_weight
    );
    let recorder = open_recorder(telemetry);
    let solver = match MfgSolver::new(params) {
        Ok(s) => s.with_recorder(recorder.clone()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let ctx = ContentContext::from_params(solver.params());
    let eq = solver.solve_with(&vec![ctx; solver.params().time_steps], None);
    recorder.flush();
    println!(
        "Converged: {} ({} iterations, final residual {:.2e})",
        eq.report.converged,
        eq.report.iterations,
        eq.report.final_residual()
    );
    let prices = eq.price_series();
    println!(
        "Price p_k(t): {:.3} -> {:.3}  (p_hat = {})",
        prices[0],
        prices[prices.len() - 1],
        eq.params.p_hat
    );
    let means = eq.mean_remaining_space();
    println!(
        "Mean remaining space: {:.3} -> {:.3}",
        means[0],
        means[means.len() - 1]
    );
    println!("Accumulated utility: {:.3}", eq.accumulated_utility());
    println!("Deviation gap (Nash check): {:.4}", eq.deviation_gap(11));
    println!("\nPolicy x*(t, h = mean, q):");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "t", "q=0.1", "q=0.3", "q=0.5", "q=0.7", "q=0.9"
    );
    let h = eq.params.upsilon_h;
    let qk = eq.params.q_size;
    for frac in [0.0, 0.25, 0.5, 0.75] {
        let t = frac * eq.params.t_horizon;
        print!("{t:>6.2}");
        for qf in [0.1, 0.3, 0.5, 0.7, 0.9] {
            print!(" {:>8.3}", eq.policy_at(t, h, qf * qk));
        }
        println!();
    }
}

fn run_simulate(config: SimConfig, scheme: Scheme, mobility: bool, telemetry: Option<&str>) {
    let mut config = config;
    if mobility {
        config.mobility = Some(mfgcp::net::RandomWaypoint::default());
    }
    println!(
        "Simulating {}: M = {}, J = {}, K = {}, {} epochs x {} slots, seed {}{}",
        scheme.name(),
        config.num_edps,
        config.num_requesters,
        config.num_contents,
        config.epochs,
        config.slots_per_epoch,
        config.seed,
        if mobility { ", mobile requesters" } else { "" }
    );
    let params = config.params.clone();
    let built = match scheme {
        Scheme::MfgCp => MfgCpPolicy::new(params).map(|p| Box::new(p) as Box<dyn CachingPolicy>),
        Scheme::Mfg => {
            MfgCpPolicy::without_sharing(params).map(|p| Box::new(p) as Box<dyn CachingPolicy>)
        }
        Scheme::Udcs => Ok(Box::new(Udcs::default()) as Box<dyn CachingPolicy>),
        Scheme::Mpc => Ok(Box::new(MostPopularCaching::default()) as Box<dyn CachingPolicy>),
        Scheme::Rr => Ok(Box::new(RandomReplacement) as Box<dyn CachingPolicy>),
    };
    let policy = match built {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let recorder = open_recorder(telemetry);
    let mut sim = match Simulation::new(config, policy) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    sim.set_recorder(recorder.clone());
    let report = sim.run();
    recorder.flush();
    let (c1, c2, c3) = report.case_totals();
    println!("\n{:<22} {:>12}", "metric", "value");
    println!("{:<22} {:>12.3}", "mean utility", report.mean_utility());
    println!(
        "{:<22} {:>12.3}",
        "mean trading income",
        report.mean_trading_income()
    );
    println!(
        "{:<22} {:>12.3}",
        "mean staleness cost",
        report.mean_staleness_cost()
    );
    println!(
        "{:<22} {:>12.3}",
        "mean sharing benefit",
        report.mean_sharing_benefit()
    );
    println!("{:<22} {:>12}", "cases (1/2/3)", format!("{c1}/{c2}/{c3}"));
}
