//! Command-line interface for the `mfgcp` binary.
//!
//! Hand-rolled flag parsing (the approved dependency list has no argument
//! parser): `mfgcp <command> [--flag value]...` with six commands:
//!
//! * `solve` — compute one mean-field equilibrium, print its summary and
//!   optionally persist it (`--save-equilibrium FILE`);
//! * `simulate` — run the finite-population market under a scheme,
//!   optionally exposing the live control plane (`--observe ADDR`);
//! * `serve` — load a saved equilibrium artifact and answer policy /
//!   pricing queries over TCP;
//! * `query` — ask a running server for `(x*, p*, q̄₋)`, ping it, fetch
//!   its info, or shut it down;
//! * `watch` — stream subscribed telemetry series from an observed run;
//! * `ctl` — steer an observed run: pause, step, resume, snapshot,
//!   seed-fork, status, shutdown.
//!
//! The parsing layer is pure (string slices in, [`Command`] out) so it is
//! unit-testable without spawning processes.

use mfgcp_core::Params;
use mfgcp_sim::SimConfig;

/// Default address for `serve` and `query` when `--addr` is omitted.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Default address for `simulate --observe`, `watch` and `ctl` when the
/// address is omitted (distinct port so a policy server and an observed
/// simulation can share a host).
pub const DEFAULT_CTL_ADDR: &str = "127.0.0.1:7181";

/// Which placement scheme to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Full MFG-CP with sharing.
    MfgCp,
    /// MFG without sharing.
    Mfg,
    /// UDCS baseline.
    Udcs,
    /// Most-popular caching baseline.
    Mpc,
    /// Random replacement baseline.
    Rr,
}

impl Scheme {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "mfg-cp" | "mfgcp" => Ok(Self::MfgCp),
            "mfg" => Ok(Self::Mfg),
            "udcs" => Ok(Self::Udcs),
            "mpc" => Ok(Self::Mpc),
            "rr" => Ok(Self::Rr),
            other => Err(CliError::BadValue {
                flag: "--scheme".into(),
                value: other.into(),
                expected: "one of mfg-cp, mfg, udcs, mpc, rr",
            }),
        }
    }

    /// The display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::MfgCp => "MFG-CP",
            Self::Mfg => "MFG",
            Self::Udcs => "UDCS",
            Self::Mpc => "MPC",
            Self::Rr => "RR",
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mfgcp solve [...]`: one mean-field equilibrium.
    Solve {
        /// Model parameters after flag overrides.
        params: Box<Params>,
        /// Telemetry JSONL output path (`--telemetry`), if requested.
        telemetry: Option<String>,
        /// Artifact output path (`--save-equilibrium`), if requested.
        save_equilibrium: Option<String>,
    },
    /// `mfgcp simulate [...]`: a finite-population market run.
    Simulate {
        /// Simulator configuration after flag overrides.
        config: Box<SimConfig>,
        /// Scheme to run.
        scheme: Scheme,
        /// Enable random-waypoint requester mobility.
        mobility: bool,
        /// Telemetry JSONL output path (`--telemetry`), if requested.
        telemetry: Option<String>,
        /// Control-plane listen address (`--observe`), if requested.
        observe: Option<String>,
        /// Park the run before slot 0 until a client resumes or steps it
        /// (`--observe-hold`; implies `--observe`).
        observe_hold: bool,
    },
    /// `mfgcp serve [...]`: serve a saved equilibrium over TCP.
    Serve {
        /// Path of the artifact to load (`--artifact`).
        artifact: String,
        /// Listen address (`--addr`).
        addr: String,
        /// Worker thread count (`--threads`, 0 = auto).
        threads: usize,
        /// Per-connection read timeout in seconds (`--read-timeout`).
        read_timeout_secs: u64,
        /// Telemetry JSONL output path (`--telemetry`), if requested.
        telemetry: Option<String>,
    },
    /// `mfgcp query [...]`: one request against a running server.
    Query {
        /// Server address (`--addr`).
        addr: String,
        /// What to ask.
        action: QueryAction,
    },
    /// `mfgcp watch [...]`: stream live telemetry from an observed run.
    Watch {
        /// Control-plane address (`--addr`).
        addr: String,
        /// Series-name prefixes to subscribe to (`--filter`, repeatable;
        /// empty = everything).
        filters: Vec<String>,
        /// Print raw JSONL instead of the rendered live view (`--raw`).
        raw: bool,
        /// Stop after this many events (`--max-events`), if requested.
        max_events: Option<u64>,
    },
    /// `mfgcp ctl [...]`: one control verb against an observed run.
    Ctl {
        /// Control-plane address (`--addr`).
        addr: String,
        /// The verb to issue.
        action: CtlAction,
    },
    /// `mfgcp help` or `--help`.
    Help,
    /// `mfgcp --version`: print version and build information.
    Version,
}

/// What a `mfgcp query` invocation asks the server.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAction {
    /// Policy query at `(t, h, q)` (`--t`, `--h`, `--q`).
    Point {
        /// Query time.
        t: f64,
        /// Popularity-ratio coordinate.
        h: f64,
        /// Cache-occupancy coordinate.
        q: f64,
    },
    /// Liveness probe (`--ping`).
    Ping,
    /// Server/artifact metadata (`--info`).
    Info,
    /// Graceful shutdown request (`--shutdown`).
    Shutdown,
}

/// What a `mfgcp ctl` invocation asks the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlAction {
    /// Park the run at the next slot boundary (`--pause`).
    Pause,
    /// Release a paused run (`--resume`).
    Resume,
    /// Run exactly `n` more slots, then park (`--step N`).
    Step(u32),
    /// Fetch the latest slot-boundary snapshot (`--snapshot`).
    Snapshot,
    /// Seed-fork a detached what-if solve from the live density
    /// (`--fork`).
    Fork,
    /// Poll a previously started fork (`--fork-status ID`).
    ForkStatus(u32),
    /// Gate and sink status (`--status`).
    Status,
    /// Liveness probe (`--ping`).
    Ping,
    /// Detach the gate and stop the control server (`--shutdown`); the
    /// simulation runs to completion unobserved.
    Shutdown,
}

/// CLI parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// Flag present without a value.
    MissingValue(String),
    /// A flag the subcommand requires was absent.
    MissingFlag(&'static str),
    /// Value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `mfgcp help`)")
            }
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CliError::MissingFlag(flag) => write!(f, "required flag `{flag}` is missing"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "bad value `{value}` for `{flag}`: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The help text.
pub const HELP: &str = "\
mfgcp - joint mobile edge caching and pricing via mean-field games

USAGE:
    mfgcp solve    [--eta1 X] [--w5 X] [--q-size X] [--requests X]
                   [--time-steps N] [--grid-h N] [--grid-q N]
                   [--salvage G] [--lambda0-mean X] [--threads N]
                   [--scalar-kernels] [--telemetry FILE.jsonl]
                   [--save-equilibrium FILE.eq]
    mfgcp simulate [--scheme mfg-cp|mfg|udcs|mpc|rr] [--edps N]
                   [--requesters N] [--contents K] [--epochs E]
                   [--slots N] [--seed S] [--mobility] [--audit]
                   [--audit-sample N] [--dense-channel] [--k-int N]
                   [--adaptive-k-int] [--unsharded-market]
                   [--scalar-kernels] [--telemetry FILE.jsonl]
                   [--observe HOST:PORT] [--observe-hold]
                   (plus all `solve` flags for the game parameters)
    mfgcp serve    --artifact FILE.eq [--addr HOST:PORT] [--threads N]
                   [--read-timeout SECS] [--telemetry FILE.jsonl]
    mfgcp query    [--addr HOST:PORT]
                   (--t X --h X --q X | --ping | --info | --shutdown)
    mfgcp watch    [--addr HOST:PORT] [--filter PREFIX]... [--raw]
                   [--max-events N]
    mfgcp ctl      [--addr HOST:PORT]
                   (--pause | --resume | --step N | --snapshot | --fork
                    | --fork-status ID | --status | --ping | --shutdown)
    mfgcp help
    mfgcp --version

`solve` computes one mean-field equilibrium (Alg. 2) and prints the
policy, price trajectory and utility breakdown; `--save-equilibrium`
persists it as a checksummed binary artifact. `simulate` runs the
finite-population market (Alg. 1 lines 11-14) under the chosen scheme.
`serve` loads a saved artifact and answers (t, h, q) -> (x*, p*, q_bar)
queries over TCP (default address 127.0.0.1:7171) until a `--shutdown`
query stops it. `query` issues one request against a running server.

`--telemetry FILE` streams structured events (solver iterations, PDE
health, market clearing, mobility, serving) to FILE as one JSON object
per line; see DESIGN.md for the event schema. Recording never changes
results.

`--audit` runs the mfgcp-check conservation auditor alongside the
simulation (money conservation, case tallies, Eq. (10) reconciliation,
FPK mass gating); the process exits nonzero if any invariant is
violated. `--audit-sample N` implies `--audit` but runs the per-slot
checks on every Nth slot only — the cumulative I1-I3 totals still see
every slot, which keeps the gate affordable at production scale.

The channel layer defaults to the sharded occupancy-local layout
(serving link + the `--k-int` nearest interferers per requester, plus a
frozen mean-field tail; memory and per-step cost are flat in the EDP
count). `--dense-channel` switches to the exact dense M x J layout, the
differential oracle for small runs. `--adaptive-k-int` lets the channel
resize the tracked-interferer budget at each re-association from the
measured truncated-power share (doubling toward the tolerance, halving
with hysteresis when slack); `--k-int` then only seeds the budget.

The per-slot trade loop resolves flattened (EDP, content) entries on
scoped threads — bit-identical to the sequential fold for any thread
count. `--unsharded-market` forces the sequential oracle loop instead.

The implicit HJB/FPK sweeps run through batched structure-of-arrays
column-block kernels (lane-lockstep Thomas solves). `--scalar-kernels`
forces the one-column-at-a-time scalar oracle instead; both paths are
bit-identical, so the flag only changes speed, never results.

`--observe HOST:PORT` attaches the live control plane (default address
127.0.0.1:7181): `mfgcp watch` streams subscribed telemetry series and
`mfgcp ctl` pauses, steps, resumes, snapshots, and seed-forks the run.
`--observe-hold` parks the run before slot 0 until a client steps or
resumes it (and implies `--observe` on the default address). Control
gates only *when* slots execute, never *what* they compute: an
observed, paused, stepped, or forked run is bit-identical to a free
run. `watch --filter PREFIX` subscribes to series-name prefixes (e.g.
`market.slot`, `net.shard`); `--raw` prints unrendered JSONL.
";

fn parse_f64(flag: &str, value: &str) -> Result<f64, CliError> {
    value.parse().map_err(|_| CliError::BadValue {
        flag: flag.into(),
        value: value.into(),
        expected: "a number",
    })
}

fn parse_usize(flag: &str, value: &str) -> Result<usize, CliError> {
    value.parse().map_err(|_| CliError::BadValue {
        flag: flag.into(),
        value: value.into(),
        expected: "a non-negative integer",
    })
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value.parse().map_err(|_| CliError::BadValue {
        flag: flag.into(),
        value: value.into(),
        expected: "a non-negative integer",
    })
}

/// Apply a game-parameter flag; returns `false` if the flag is not a
/// parameter flag (so the caller can try its own flags).
fn apply_param_flag(params: &mut Params, flag: &str, value: &str) -> Result<bool, CliError> {
    match flag {
        "--eta1" => params.eta1 = parse_f64(flag, value)?,
        "--w5" => params.w5 = parse_f64(flag, value)?,
        "--q-size" => params.q_size = parse_f64(flag, value)?,
        "--requests" => params.requests = parse_f64(flag, value)?,
        "--time-steps" => params.time_steps = parse_usize(flag, value)?,
        "--grid-h" => params.grid_h = parse_usize(flag, value)?,
        "--grid-q" => params.grid_q = parse_usize(flag, value)?,
        "--salvage" => params.terminal_value_weight = parse_f64(flag, value)?,
        "--lambda0-mean" => params.lambda0_mean = parse_f64(flag, value)?,
        "--threads" => params.worker_threads = parse_usize(flag, value)?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parse an argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "version" | "--version" | "-V" => Ok(Command::Version),
        "solve" => {
            let mut params = Params::default();
            let mut telemetry = None;
            let mut save_equilibrium = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--scalar-kernels" {
                    params.batched_kernels = false;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                if flag == "--telemetry" {
                    telemetry = Some(value.clone());
                } else if flag == "--save-equilibrium" {
                    save_equilibrium = Some(value.clone());
                } else if !apply_param_flag(&mut params, flag, value)? {
                    return Err(CliError::UnknownFlag(flag.clone()));
                }
            }
            Ok(Command::Solve {
                params: Box::new(params),
                telemetry,
                save_equilibrium,
            })
        }
        "simulate" => {
            let mut config = SimConfig {
                num_edps: 30,
                num_requesters: 120,
                num_contents: 6,
                epochs: 2,
                slots_per_epoch: 30,
                params: Params {
                    num_edps: 30,
                    time_steps: 16,
                    grid_h: 8,
                    grid_q: 32,
                    ..Params::default()
                },
                ..SimConfig::default()
            };
            let mut scheme = Scheme::MfgCp;
            let mut mobility = false;
            let mut telemetry = None;
            let mut observe = None;
            let mut observe_hold = false;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--mobility" {
                    mobility = true;
                    continue;
                }
                if flag == "--observe-hold" {
                    observe_hold = true;
                    continue;
                }
                if flag == "--audit" {
                    config.audit = true;
                    continue;
                }
                if flag == "--dense-channel" {
                    config.network.dense_channel = true;
                    continue;
                }
                if flag == "--adaptive-k-int" {
                    config.network.adaptive_k_int = true;
                    continue;
                }
                if flag == "--unsharded-market" {
                    config.unsharded_market = true;
                    continue;
                }
                if flag == "--scalar-kernels" {
                    config.params.batched_kernels = false;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                match flag.as_str() {
                    "--scheme" => scheme = Scheme::parse(value)?,
                    "--telemetry" => telemetry = Some(value.clone()),
                    "--observe" => observe = Some(value.clone()),
                    "--edps" => {
                        config.num_edps = parse_usize(flag, value)?;
                        config.params.num_edps = config.num_edps;
                    }
                    "--requesters" => config.num_requesters = parse_usize(flag, value)?,
                    "--contents" => config.num_contents = parse_usize(flag, value)?,
                    "--epochs" => config.epochs = parse_usize(flag, value)?,
                    "--slots" => config.slots_per_epoch = parse_usize(flag, value)?,
                    "--seed" => config.seed = parse_u64(flag, value)?,
                    "--audit-sample" => {
                        let n = parse_usize(flag, value)?;
                        if n == 0 {
                            return Err(CliError::BadValue {
                                flag: flag.clone(),
                                value: value.clone(),
                                expected: "a stride of at least 1 (1 = audit every slot)",
                            });
                        }
                        config.audit = true;
                        config.audit_sample = n;
                    }
                    "--k-int" => {
                        let k = parse_usize(flag, value)?;
                        if k == 0 {
                            return Err(CliError::BadValue {
                                flag: flag.clone(),
                                value: value.clone(),
                                expected: "at least 1 tracked interferer",
                            });
                        }
                        config.network.k_int = k;
                    }
                    "--threads" => {
                        config.worker_threads = parse_usize(flag, value)?;
                        config.params.worker_threads = config.worker_threads;
                    }
                    other => {
                        if !apply_param_flag(&mut config.params, other, value)? {
                            return Err(CliError::UnknownFlag(flag.clone()));
                        }
                    }
                }
            }
            // `--observe-hold` without an address observes on the default
            // port: a held run with no way to attach would hang forever.
            if observe_hold && observe.is_none() {
                observe = Some(DEFAULT_CTL_ADDR.to_string());
            }
            Ok(Command::Simulate {
                config: Box::new(config),
                scheme,
                mobility,
                telemetry,
                observe,
                observe_hold,
            })
        }
        "serve" => {
            let mut artifact = None;
            let mut addr = DEFAULT_ADDR.to_string();
            let mut threads = 0usize;
            let mut read_timeout_secs = 30u64;
            let mut telemetry = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                match flag.as_str() {
                    "--artifact" => artifact = Some(value.clone()),
                    "--addr" => addr = value.clone(),
                    "--threads" => threads = parse_usize(flag, value)?,
                    "--read-timeout" => read_timeout_secs = parse_u64(flag, value)?,
                    "--telemetry" => telemetry = Some(value.clone()),
                    _ => return Err(CliError::UnknownFlag(flag.clone())),
                }
            }
            let artifact = artifact.ok_or(CliError::MissingFlag("--artifact"))?;
            Ok(Command::Serve {
                artifact,
                addr,
                threads,
                read_timeout_secs,
                telemetry,
            })
        }
        "query" => {
            let mut addr = DEFAULT_ADDR.to_string();
            let mut probe = None;
            let (mut t, mut h, mut q) = (None, None, None);
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--ping" => {
                        probe = Some(QueryAction::Ping);
                        continue;
                    }
                    "--info" => {
                        probe = Some(QueryAction::Info);
                        continue;
                    }
                    "--shutdown" => {
                        probe = Some(QueryAction::Shutdown);
                        continue;
                    }
                    _ => {}
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--t" => t = Some(parse_f64(flag, value)?),
                    "--h" => h = Some(parse_f64(flag, value)?),
                    "--q" => q = Some(parse_f64(flag, value)?),
                    _ => return Err(CliError::UnknownFlag(flag.clone())),
                }
            }
            let action = match probe {
                Some(action) => action,
                None => QueryAction::Point {
                    t: t.ok_or(CliError::MissingFlag("--t"))?,
                    h: h.ok_or(CliError::MissingFlag("--h"))?,
                    q: q.ok_or(CliError::MissingFlag("--q"))?,
                },
            };
            Ok(Command::Query { addr, action })
        }
        "watch" => {
            let mut addr = DEFAULT_CTL_ADDR.to_string();
            let mut filters = Vec::new();
            let mut raw = false;
            let mut max_events = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--raw" {
                    raw = true;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--filter" => filters.push(value.clone()),
                    "--max-events" => max_events = Some(parse_u64(flag, value)?),
                    _ => return Err(CliError::UnknownFlag(flag.clone())),
                }
            }
            Ok(Command::Watch {
                addr,
                filters,
                raw,
                max_events,
            })
        }
        "ctl" => {
            let mut addr = DEFAULT_CTL_ADDR.to_string();
            let mut action = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--pause" => {
                        action = Some(CtlAction::Pause);
                        continue;
                    }
                    "--resume" => {
                        action = Some(CtlAction::Resume);
                        continue;
                    }
                    "--snapshot" => {
                        action = Some(CtlAction::Snapshot);
                        continue;
                    }
                    "--fork" => {
                        action = Some(CtlAction::Fork);
                        continue;
                    }
                    "--status" => {
                        action = Some(CtlAction::Status);
                        continue;
                    }
                    "--ping" => {
                        action = Some(CtlAction::Ping);
                        continue;
                    }
                    "--shutdown" => {
                        action = Some(CtlAction::Shutdown);
                        continue;
                    }
                    _ => {}
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
                match flag.as_str() {
                    "--addr" => addr = value.clone(),
                    "--step" => {
                        let n = parse_u64(flag, value)?;
                        if n == 0 || n > u64::from(u32::MAX) {
                            return Err(CliError::BadValue {
                                flag: flag.clone(),
                                value: value.clone(),
                                expected: "a slot count between 1 and 2^32-1",
                            });
                        }
                        action = Some(CtlAction::Step(n as u32));
                    }
                    "--fork-status" => {
                        action = Some(CtlAction::ForkStatus(parse_u64(flag, value)? as u32));
                    }
                    _ => return Err(CliError::UnknownFlag(flag.clone())),
                }
            }
            let action = action.ok_or(CliError::MissingFlag(
                "--pause|--resume|--step|--snapshot|--fork|--fork-status|--status|--ping|--shutdown",
            ))?;
            Ok(Command::Ctl { addr, action })
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn solve_applies_parameter_flags() {
        let cmd = parse(&argv("solve --eta1 2.5 --time-steps 20 --salvage 1.5")).unwrap();
        match cmd {
            Command::Solve {
                params,
                telemetry,
                save_equilibrium,
            } => {
                assert_eq!(params.eta1, 2.5);
                assert_eq!(params.time_steps, 20);
                assert_eq!(params.terminal_value_weight, 1.5);
                assert_eq!(telemetry, None);
                assert_eq!(save_equilibrium, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn telemetry_flag_parses_on_both_commands() {
        let cmd = parse(&argv("solve --telemetry out.jsonl --eta1 2")).unwrap();
        match cmd {
            Command::Solve {
                params, telemetry, ..
            } => {
                assert_eq!(telemetry.as_deref(), Some("out.jsonl"));
                assert_eq!(params.eta1, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("simulate --scheme rr --telemetry run.jsonl")).unwrap();
        match cmd {
            Command::Simulate {
                scheme, telemetry, ..
            } => {
                assert_eq!(scheme, Scheme::Rr);
                assert_eq!(telemetry.as_deref(), Some("run.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("solve --telemetry")),
            Err(CliError::MissingValue(f)) if f == "--telemetry"
        ));
    }

    #[test]
    fn simulate_parses_scheme_population_and_mobility() {
        let cmd = parse(&argv(
            "simulate --scheme udcs --edps 50 --contents 4 --seed 9 --mobility --eta1 3",
        ))
        .unwrap();
        match cmd {
            Command::Simulate {
                config,
                scheme,
                mobility,
                ..
            } => {
                assert_eq!(scheme, Scheme::Udcs);
                assert_eq!(config.num_edps, 50);
                assert_eq!(config.params.num_edps, 50, "kept consistent for Eq. (5)");
                assert_eq!(config.num_contents, 4);
                assert_eq!(config.seed, 9);
                assert_eq!(config.params.eta1, 3.0);
                assert!(mobility);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn audit_flag_enables_the_auditor() {
        let cmd = parse(&argv("simulate --scheme mpc --audit --slots 5")).unwrap();
        match cmd {
            Command::Simulate { config, .. } => {
                assert!(config.audit);
                assert_eq!(config.slots_per_epoch, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("simulate --scheme mpc")).unwrap();
        match cmd {
            Command::Simulate { config, .. } => assert!(!config.audit),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn audit_sample_implies_audit_and_rejects_zero() {
        let cmd = parse(&argv("simulate --scheme mpc --audit-sample 16")).unwrap();
        match cmd {
            Command::Simulate { config, .. } => {
                assert!(config.audit, "--audit-sample must imply --audit");
                assert_eq!(config.audit_sample, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("simulate --audit-sample 0")),
            Err(CliError::BadValue { flag, .. }) if flag == "--audit-sample"
        ));
        // Default stride checks every slot.
        match parse(&argv("simulate --audit")).unwrap() {
            Command::Simulate { config, .. } => assert_eq!(config.audit_sample, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn channel_layout_flags_reach_the_network_config() {
        let cmd = parse(&argv("simulate --dense-channel --k-int 8")).unwrap();
        match cmd {
            Command::Simulate { config, .. } => {
                assert!(config.network.dense_channel);
                assert_eq!(config.network.k_int, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("simulate")).unwrap() {
            Command::Simulate { config, .. } => {
                assert!(!config.network.dense_channel, "sharded is the default");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("simulate --k-int 0")),
            Err(CliError::BadValue { flag, .. }) if flag == "--k-int"
        ));
    }

    #[test]
    fn adaptive_k_int_and_unsharded_market_flags_parse() {
        match parse(&argv("simulate --adaptive-k-int --unsharded-market")).unwrap() {
            Command::Simulate { config, .. } => {
                assert!(config.network.adaptive_k_int);
                assert!(config.unsharded_market);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("simulate")).unwrap() {
            Command::Simulate { config, .. } => {
                assert!(!config.network.adaptive_k_int, "fixed k_int is the default");
                assert!(!config.unsharded_market, "sharded clearing is the default");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_kernels_flag_disables_batching_on_both_verbs() {
        match parse(&argv("solve --scalar-kernels --grid-h 12")).unwrap() {
            Command::Solve { params, .. } => {
                assert!(!params.batched_kernels);
                assert_eq!(params.grid_h, 12, "value flags still parse after it");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("simulate --scalar-kernels --slots 3")).unwrap() {
            Command::Simulate { config, .. } => {
                assert!(!config.params.batched_kernels);
                assert_eq!(config.slots_per_epoch, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("solve")).unwrap() {
            Command::Solve { params, .. } => {
                assert!(params.batched_kernels, "batched kernels are the default");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn threads_flag_reaches_both_layers() {
        let cmd = parse(&argv("solve --threads 4")).unwrap();
        match cmd {
            Command::Solve { params, .. } => assert_eq!(params.worker_threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("simulate --threads 2")).unwrap();
        match cmd {
            Command::Simulate { config, .. } => {
                assert_eq!(config.worker_threads, 2);
                assert_eq!(config.params.worker_threads, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solve_accepts_save_equilibrium() {
        let cmd = parse(&argv("solve --save-equilibrium eq.bin --eta1 2")).unwrap();
        match cmd {
            Command::Solve {
                save_equilibrium, ..
            } => assert_eq!(save_equilibrium.as_deref(), Some("eq.bin")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn version_parses_in_all_spellings() {
        for s in ["version", "--version", "-V"] {
            assert_eq!(parse(&argv(s)).unwrap(), Command::Version);
        }
    }

    #[test]
    fn serve_requires_an_artifact_and_applies_defaults() {
        assert!(matches!(
            parse(&argv("serve")),
            Err(CliError::MissingFlag("--artifact"))
        ));
        let cmd = parse(&argv("serve --artifact eq.bin")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                artifact: "eq.bin".into(),
                addr: DEFAULT_ADDR.into(),
                threads: 0,
                read_timeout_secs: 30,
                telemetry: None,
            }
        );
        let cmd = parse(&argv(
            "serve --artifact eq.bin --addr 0.0.0.0:9000 --threads 8 \
             --read-timeout 5 --telemetry s.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                artifact: "eq.bin".into(),
                addr: "0.0.0.0:9000".into(),
                threads: 8,
                read_timeout_secs: 5,
                telemetry: Some("s.jsonl".into()),
            }
        );
    }

    #[test]
    fn query_parses_point_and_probe_actions() {
        let cmd = parse(&argv("query --t 0.5 --h 1.2 --q 0.3")).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                addr: DEFAULT_ADDR.into(),
                action: QueryAction::Point {
                    t: 0.5,
                    h: 1.2,
                    q: 0.3
                },
            }
        );
        for (s, action) in [
            ("query --ping", QueryAction::Ping),
            ("query --info", QueryAction::Info),
            ("query --addr 1.2.3.4:9 --shutdown", QueryAction::Shutdown),
        ] {
            match parse(&argv(s)).unwrap() {
                Command::Query { action: got, .. } => assert_eq!(got, action),
                other => panic!("unexpected {other:?}"),
            }
        }
        // A point query missing a coordinate names the absent flag.
        assert!(matches!(
            parse(&argv("query --t 0.5 --h 1.0")),
            Err(CliError::MissingFlag("--q"))
        ));
        assert!(matches!(
            parse(&argv("query")),
            Err(CliError::MissingFlag("--t"))
        ));
    }

    #[test]
    fn observe_flags_parse_and_hold_implies_observe() {
        match parse(&argv("simulate --observe 0.0.0.0:9100 --scheme mpc")).unwrap() {
            Command::Simulate {
                observe,
                observe_hold,
                ..
            } => {
                assert_eq!(observe.as_deref(), Some("0.0.0.0:9100"));
                assert!(!observe_hold);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A held run with no address would be unreachable forever, so
        // `--observe-hold` alone observes on the default control port.
        match parse(&argv("simulate --observe-hold")).unwrap() {
            Command::Simulate {
                observe,
                observe_hold,
                ..
            } => {
                assert_eq!(observe.as_deref(), Some(DEFAULT_CTL_ADDR));
                assert!(observe_hold);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("simulate")).unwrap() {
            Command::Simulate {
                observe,
                observe_hold,
                ..
            } => {
                assert_eq!(observe, None, "unobserved is the default");
                assert!(!observe_hold);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse(&argv("simulate --observe")),
            Err(CliError::MissingValue(f)) if f == "--observe"
        ));
    }

    #[test]
    fn watch_parses_filters_raw_and_max_events() {
        assert_eq!(
            parse(&argv("watch")).unwrap(),
            Command::Watch {
                addr: DEFAULT_CTL_ADDR.into(),
                filters: vec![],
                raw: false,
                max_events: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "watch --addr 1.2.3.4:9 --filter market.slot --filter net.shard \
                 --raw --max-events 10",
            ))
            .unwrap(),
            Command::Watch {
                addr: "1.2.3.4:9".into(),
                filters: vec!["market.slot".into(), "net.shard".into()],
                raw: true,
                max_events: Some(10),
            }
        );
        assert!(matches!(
            parse(&argv("watch --filter")),
            Err(CliError::MissingValue(f)) if f == "--filter"
        ));
    }

    #[test]
    fn ctl_parses_every_verb_and_requires_one() {
        for (s, action) in [
            ("ctl --pause", CtlAction::Pause),
            ("ctl --resume", CtlAction::Resume),
            ("ctl --step 5", CtlAction::Step(5)),
            ("ctl --snapshot", CtlAction::Snapshot),
            ("ctl --fork", CtlAction::Fork),
            ("ctl --fork-status 2", CtlAction::ForkStatus(2)),
            ("ctl --status", CtlAction::Status),
            ("ctl --ping", CtlAction::Ping),
            ("ctl --addr 1.2.3.4:9 --shutdown", CtlAction::Shutdown),
        ] {
            match parse(&argv(s)).unwrap() {
                Command::Ctl { action: got, .. } => assert_eq!(got, action, "{s}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(parse(&argv("ctl")), Err(CliError::MissingFlag(_))));
        assert!(matches!(
            parse(&argv("ctl --step 0")),
            Err(CliError::BadValue { flag, .. }) if flag == "--step"
        ));
        assert!(matches!(
            parse(&argv("ctl --lights-on 3")),
            Err(CliError::UnknownFlag(f)) if f == "--lights-on"
        ));
    }

    #[test]
    fn scheme_names_roundtrip() {
        for (input, expect) in [
            ("mfg-cp", Scheme::MfgCp),
            ("MFGCP", Scheme::MfgCp),
            ("mfg", Scheme::Mfg),
            ("udcs", Scheme::Udcs),
            ("mpc", Scheme::Mpc),
            ("rr", Scheme::Rr),
        ] {
            assert_eq!(Scheme::parse(input).unwrap(), expect);
        }
        assert!(Scheme::parse("lru").is_err());
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            parse(&argv("dance")),
            Err(CliError::UnknownCommand(c)) if c == "dance"
        ));
        assert!(matches!(
            parse(&argv("solve --eta1")),
            Err(CliError::MissingValue(f)) if f == "--eta1"
        ));
        assert!(matches!(
            parse(&argv("solve --what 3")),
            Err(CliError::UnknownFlag(f)) if f == "--what"
        ));
        assert!(matches!(
            parse(&argv("solve --eta1 banana")),
            Err(CliError::BadValue { .. })
        ));
        // Errors render.
        let e = parse(&argv("solve --eta1 banana")).unwrap_err();
        assert!(e.to_string().contains("banana"));
    }
}
