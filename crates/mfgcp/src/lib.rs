//! # MFG-CP — Joint Mobile Edge Caching and Pricing via Mean-Field Games
//!
//! Facade crate for the full reproduction of *"Joint Mobile Edge Caching
//! and Pricing: A Mean-Field Game Approach"* (Xu et al., ICDE 2024).
//! Downstream users depend on this crate and get the entire system:
//!
//! * [`core`] — the paper's contribution: utility model, dynamic pricing,
//!   mean-field estimator, coupled HJB/FPK solvers, iterative
//!   best-response learning (Alg. 1 + Alg. 2);
//! * [`sim`] — the finite-population MEC market simulator and the RR /
//!   MPC / MFG / UDCS baselines of §V-A;
//! * [`sde`] — Brownian motion, Ornstein–Uhlenbeck processes (Eq. (1)),
//!   Euler–Maruyama integration;
//! * [`pde`] — finite-difference grids and the forward/backward parabolic
//!   kernels the HJB/FPK solvers are built on;
//! * [`net`] — geometry, path loss, SINR and Shannon rates (Eq. (2));
//! * [`obs`] — the structured-telemetry layer: recorder handles, JSONL
//!   sinks and the event-schema validator behind `--telemetry`;
//! * [`workload`] — content catalog, Zipf popularity (Def. 1, Eq. (3)),
//!   timeliness (Def. 2), request processes and the trace layer;
//! * [`serve`] — the serving layer: checksummed equilibrium artifacts
//!   (`solve --save-equilibrium`) and the TCP policy server / client
//!   behind `mfgcp serve` and `mfgcp query`;
//! * [`check`] — the economic-conservation auditor and differential
//!   oracles behind `mfgcp simulate --audit`: money conservation,
//!   case-tally consistency, Eq. (10) reconciliation, FPK mass gating,
//!   and bit-level pricer/matching/workspace cross-checks;
//! * [`ctl`] — the live observer/control plane behind
//!   `mfgcp simulate --observe`: stream subscribed telemetry series,
//!   snapshot slot-boundary state, and steer (pause / step / resume /
//!   seed-fork) a running simulation without perturbing its results.
//!
//! ```
//! use mfgcp::prelude::*;
//!
//! let params = Params { time_steps: 12, grid_h: 8, grid_q: 24, ..Params::default() };
//! let eq = MfgSolver::new(params).unwrap().solve().unwrap();
//! assert!(eq.report.converged);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use mfgcp_check as check;
pub use mfgcp_core as core;
pub use mfgcp_ctl as ctl;
pub use mfgcp_net as net;
pub use mfgcp_obs as obs;
pub use mfgcp_pde as pde;
pub use mfgcp_sde as sde;
pub use mfgcp_serve as serve;
pub use mfgcp_sim as sim;
pub use mfgcp_workload as workload;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use mfgcp_check::{AuditError, AuditReport, Auditor};
    pub use mfgcp_core::{
        solve_01, solve_fractional, CachePlan, ContentContext, Equilibrium, Framework,
        FrameworkConfig, KnapsackItem, MeanFieldEstimator, MeanFieldSnapshot, MfgSolver, Params,
        ReducedMfgSolver, Utility, UtilityBreakdown,
    };
    pub use mfgcp_net::{ChannelState, NetworkConfig, Topology};
    pub use mfgcp_obs::{JsonlSink, MemorySink, RecorderHandle};
    pub use mfgcp_sde::{seeded_rng, EulerMaruyama, OrnsteinUhlenbeck, SimRng};
    pub use mfgcp_sim::{
        baselines::{MfgCpPolicy, MostPopularCaching, RandomReplacement, Udcs},
        CachingPolicy, SimConfig, SimReport, Simulation,
    };
    pub use mfgcp_workload::{
        trace::{parse_kaggle_csv, SyntheticYoutubeTrace, Trace},
        Catalog, Popularity, RequestProcess, Timeliness, TimelinessConfig, Zipf,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_resolve() {
        use crate::prelude::*;
        let p = Params::default();
        p.validate().unwrap();
        let _rng = seeded_rng(1);
        let _z = Zipf::new(5, 1.0).unwrap();
    }
}
