//! # MFG-CP: Joint Mobile Edge Caching and Pricing via Mean-Field Games
//!
//! A from-scratch implementation of *"Joint Mobile Edge Caching and Pricing:
//! A Mean-Field Game Approach"* (Xu et al., ICDE 2024).
//!
//! Edge Data Providers (EDPs) cache contents, sell them to requesters at a
//! supply-dependent price, and trade cached data with peer EDPs. The
//! competitive content-placement problem is a non-cooperative stochastic
//! differential game; this crate implements the paper's mean-field reduction:
//!
//! * the utility model of §III-A (`utility`): trading income (Eq. (6)),
//!   sharing benefit (Eq. (7)), placement cost (Eq. (8)), staleness cost
//!   (Eq. (9)) and sharing cost;
//! * the supply–demand pricing rule of Eq. (5) and its mean-field limit
//!   Eq. (17) (`pricing`);
//! * the mean-field estimator of §IV-B(1) (`estimator`): `p_k(t)`,
//!   `q̄_{−,k}(t)` (Eq. (18)), `Δq̄(t)` and the average sharing benefit;
//! * the HJB solver of Eq. (20) with the closed-form optimal control of
//!   Thm. 1 (`hjb`), and the FPK solver of Eq. (15) (`fpk`);
//! * the iterative best-response learning scheme of Alg. 2 (`mfg`) with
//!   Picard relaxation implementing the contraction of Thm. 2;
//! * the capacity-constrained knapsack extension of §IV-C's Remark
//!   (`knapsack`);
//! * the per-epoch framework loop of Alg. 1 (`framework`);
//! * a reduced 1-D (`q`-only) solver for ablations (`reduced`).
//!
//! ## Unit conventions
//!
//! The paper quotes parameters in mixed units (bytes, MB, money per byte)
//! that do not cohere dimensionally as printed (e.g. Eq. (5) with
//! `Q_k = 10⁸ B` and `η₁ ≈ 10⁻⁷` would drive prices negative instantly).
//! We therefore work in a normalized unit system that preserves every
//! well-defined *ratio* in the paper — see [`Params`] — and record the
//! mapping in `EXPERIMENTS.md`:
//!
//! * storage state `q ∈ [0, 1]`: fraction of the 100 MB capacity remaining;
//! * content size `Q_k` in *content units* (1.0 ≡ 100 MB);
//! * money in currency units (cu) with `p̂ = 5`, `η₁ ∈ [1, 4]` so that the
//!   paper's `η₁/p̂ ∈ [0.2, 0.8]` price-depression range is exact;
//! * time in optimization epochs (`T = 1`), rates in content units per epoch.
//!
//! ## Quickstart
//!
//! ```
//! use mfgcp_core::{MfgSolver, Params};
//!
//! let params = Params::default();
//! let solver = MfgSolver::new(params).unwrap();
//! let eq = solver.solve().unwrap();
//! assert!(eq.report.converged);
//! // The equilibrium policy is a caching rate in [0, 1] for every
//! // (time, channel, storage) state.
//! let x = eq.policy_at(0.5, 5.0e-5, 0.7);
//! assert!((0.0..=1.0).contains(&x));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cases;
mod diag;
mod estimator;
mod fpk;
mod framework;
mod hjb;
mod knapsack;
mod mfg;
mod parallel;
mod params;
mod pricing;
mod rate;
mod reduced;
mod sigmoid;
mod utility;

pub use cases::CaseProbabilities;
pub use diag::ConvergenceReport;
pub use estimator::{MeanFieldEstimator, MeanFieldSnapshot};
pub use fpk::{FpkScratch, FpkSolver};
pub use framework::{EpochOutcome, Framework, FrameworkConfig};
pub use hjb::{HjbScratch, HjbSolution, HjbSolver};
pub use knapsack::{solve_01, solve_fractional, CachePlan, KnapsackItem};
pub use mfg::{Equilibrium, MfgSolver, SolveMethod, SolveWorkspace};
pub use params::{CoreError, Params};
pub use pricing::{finite_population_price, mean_field_price, SharedSupplyPricer};
pub use rate::RateModel;
pub use reduced::{ReducedEquilibrium, ReducedMfgSolver};
pub use sigmoid::Sigmoid;
pub use utility::{ContentContext, Utility, UtilityBreakdown};
