//! Convergence diagnostics for the iterative best-response learning scheme.

/// The outcome of the Picard iteration of Alg. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Whether the sup-norm policy residual dropped below the tolerance
    /// within the iteration budget.
    pub converged: bool,
    /// Number of iterations performed (`ψ` at exit).
    pub iterations: usize,
    /// Sup-norm policy residual after each iteration —
    /// `max_{t,S} |x^ψ(t,S) − x^{ψ−1}(t,S)|`, the quantity of Alg. 2 line 6.
    pub residuals: Vec<f64>,
}

impl ConvergenceReport {
    /// The final residual (`+∞` when no iteration ran).
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Empirical contraction factor: the geometric mean of successive
    /// residual ratios. Below 1 indicates the fixed-point map contracts
    /// (the premise of Thm. 2). `None` with fewer than 2 iterations.
    pub fn contraction_factor(&self) -> Option<f64> {
        if self.residuals.len() < 2 {
            return None;
        }
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for w in self.residuals.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                log_sum += (w[1] / w[0]).ln();
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        Some((log_sum / count as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_residual_of_empty_report_is_infinite() {
        let r = ConvergenceReport { converged: false, iterations: 0, residuals: vec![] };
        assert!(r.final_residual().is_infinite());
        assert!(r.contraction_factor().is_none());
    }

    #[test]
    fn contraction_factor_of_geometric_decay() {
        let r = ConvergenceReport {
            converged: true,
            iterations: 4,
            residuals: vec![1.0, 0.5, 0.25, 0.125],
        };
        let c = r.contraction_factor().unwrap();
        assert!((c - 0.5).abs() < 1e-12);
        assert_eq!(r.final_residual(), 0.125);
    }

    #[test]
    fn contraction_factor_skips_zero_residuals() {
        let r = ConvergenceReport {
            converged: true,
            iterations: 3,
            residuals: vec![1.0, 0.0, 0.0],
        };
        assert!(r.contraction_factor().is_none());
    }
}
