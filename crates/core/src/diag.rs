//! Convergence diagnostics for the iterative best-response learning scheme.

/// The outcome of the Picard iteration of Alg. 2.
///
/// Two residual series are recorded per iteration:
///
/// * [`ConvergenceReport::residuals`] — the *undamped* best-response gap
///   `max|BR(x^ψ) − x^ψ|`. This is the quantity Alg. 2 line 6 gates on:
///   it vanishes exactly at a fixed point of the best-response map,
///   independent of how aggressively the iterate is damped.
/// * [`ConvergenceReport::update_norms`] — the damped *applied* update
///   `max|x^{ψ+1} − x^ψ| = ω·max|BR(x^ψ) − x^ψ|`. Gating on this quantity
///   (a historical bug) under-reports the distance to equilibrium by the
///   factor `ω`, and under fictitious play's `ω = 1/(ψ+1)` schedule it
///   decays to zero *regardless* of whether the best response has
///   stabilized — declaring spurious convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Whether the undamped best-response gap dropped below the tolerance
    /// within the iteration budget.
    pub converged: bool,
    /// Number of iterations performed (`ψ` at exit).
    pub iterations: usize,
    /// Undamped sup-norm best-response gap after each iteration —
    /// `max_{t,S} |BR(x^ψ)(t,S) − x^ψ(t,S)|`, the Alg. 2 line 6 quantity
    /// and the gate for `converged`.
    pub residuals: Vec<f64>,
    /// Damped applied update after each iteration —
    /// `max_{t,S} |x^{ψ+1}(t,S) − x^ψ(t,S)| = ω·residuals[ψ]` with the
    /// iteration's mixing weight `ω`. Useful for post-mortems on the
    /// damping schedule; never used as a stopping rule.
    pub update_norms: Vec<f64>,
}

impl ConvergenceReport {
    /// The final undamped best-response gap (`+∞` when no iteration ran).
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Empirical contraction factor: the geometric mean of successive
    /// ratios of the *undamped* best-response gaps. Below 1 indicates the
    /// fixed-point map contracts (the premise of Thm. 2). Computed on the
    /// undamped series so a decaying damping schedule (fictitious play)
    /// cannot fake a contraction. `None` with fewer than 2 iterations or
    /// no usable (positive) ratio.
    pub fn contraction_factor(&self) -> Option<f64> {
        if self.residuals.len() < 2 {
            return None;
        }
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for w in self.residuals.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                log_sum += (w[1] / w[0]).ln();
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        Some((log_sum / count as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_residual_of_empty_report_is_infinite() {
        let r = ConvergenceReport {
            converged: false,
            iterations: 0,
            residuals: vec![],
            update_norms: vec![],
        };
        assert!(r.final_residual().is_infinite());
        assert!(r.contraction_factor().is_none());
    }

    #[test]
    fn contraction_factor_of_geometric_decay() {
        let r = ConvergenceReport {
            converged: true,
            iterations: 4,
            residuals: vec![1.0, 0.5, 0.25, 0.125],
            update_norms: vec![0.5, 0.25, 0.125, 0.0625],
        };
        let c = r.contraction_factor().unwrap();
        assert!((c - 0.5).abs() < 1e-12);
        assert_eq!(r.final_residual(), 0.125);
    }

    #[test]
    fn contraction_factor_skips_zero_residuals() {
        let r = ConvergenceReport {
            converged: true,
            iterations: 3,
            residuals: vec![1.0, 0.0, 0.0],
            update_norms: vec![0.5, 0.0, 0.0],
        };
        assert!(r.contraction_factor().is_none());
    }

    #[test]
    fn contraction_factor_ignores_the_damping_schedule() {
        // A fictitious-play style run where the applied updates decay
        // purely because ω = 1/(ψ+1) shrinks, while the best-response gap
        // stalls: the contraction factor must read the stall (≈ 1), not
        // the fake decay of the update norms.
        let r = ConvergenceReport {
            converged: false,
            iterations: 4,
            residuals: vec![0.4, 0.4, 0.4, 0.4],
            update_norms: vec![0.4, 0.2, 0.1333, 0.1],
        };
        let c = r.contraction_factor().unwrap();
        assert!((c - 1.0).abs() < 1e-12, "contraction factor {c}");
    }
}
