//! The utility model of §III-A (Eq. (10)):
//!
//! `U_k(t) = Φ¹ + Φ² − C¹ − C² − C³`
//!
//! * trading income `Φ¹` (Eq. (6)): requests × price × the amount of data
//!   actually sold under each of the three response cases;
//! * sharing benefit `Φ²` (Eq. (7)): in the mean-field view, the average
//!   benefit `Φ̄²` produced by the estimator;
//! * placement cost `C¹ = w₄x + w₅x²` (Eq. (8));
//! * staleness cost `C²` (Eq. (9)): η₂ × the total service delay — the
//!   center download for the caching rate, plus the per-case transmission
//!   delays to every requester;
//! * sharing cost `C³ = P²·p̄_k·(q − q̄₋)`.

use crate::cases::CaseProbabilities;
use crate::estimator::MeanFieldSnapshot;
use crate::params::Params;
use crate::rate::RateModel;
use crate::sigmoid::Sigmoid;

/// Per-content, per-epoch workload facts entering the utility and the
/// caching drift: `|I_k(t)|`, `Π_k(t)`, `ξ^{L_k(t)}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentContext {
    /// Request count `|I_k(t)|` per epoch.
    pub requests: f64,
    /// Popularity `Π_k(t)`.
    pub popularity: f64,
    /// Urgency factor `ξ^{L_k(t)}`.
    pub urgency_factor: f64,
}

impl ContentContext {
    /// The context implied by the defaults in `params`.
    pub fn from_params(params: &Params) -> Self {
        Self {
            requests: params.requests,
            popularity: params.popularity,
            urgency_factor: params.urgency_factor,
        }
    }
}

/// The individual terms of Eq. (10), exposed for the figure benches
/// (Figs. 8, 12–14 plot incomes and staleness costs separately).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilityBreakdown {
    /// Trading income `Φ¹`.
    pub trading_income: f64,
    /// Sharing benefit `Φ²`.
    pub sharing_benefit: f64,
    /// Placement cost `C¹`.
    pub placement_cost: f64,
    /// Staleness cost `C²`.
    pub staleness_cost: f64,
    /// Sharing cost `C³`.
    pub sharing_cost: f64,
}

impl UtilityBreakdown {
    /// Net utility `Φ¹ + Φ² − C¹ − C² − C³` (Eq. (10)).
    pub fn total(&self) -> f64 {
        self.trading_income + self.sharing_benefit
            - self.placement_cost
            - self.staleness_cost
            - self.sharing_cost
    }
}

/// Evaluates the generic player's utility at a state `(h, q)` given the
/// mean-field snapshot.
#[derive(Debug, Clone)]
pub struct Utility {
    params: Params,
    sigmoid: Sigmoid,
    rate: RateModel,
}

impl Utility {
    /// Build the evaluator (the rate model is calibrated from `params`).
    pub fn new(params: Params) -> Self {
        let sigmoid = Sigmoid::new(params.sigmoid_l);
        let rate = RateModel::from_params(&params);
        Self {
            params,
            sigmoid,
            rate,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The fading-to-rate model in use.
    pub fn rate_model(&self) -> &RateModel {
        &self.rate
    }

    /// Case probabilities at own state `q` and peer state `q_peer`.
    pub fn cases(&self, q: f64, q_peer: f64) -> CaseProbabilities {
        CaseProbabilities::compute(self.sigmoid, q, q_peer, self.params.alpha_qk())
    }

    /// Trading income `Φ¹` (Eq. (6)): each of the `|I_k|` requesters pays
    /// `p_k` per unit for the data actually delivered — the cached part
    /// `Q_k − q` in case 1, the peer-completed `Q_k − q̄₋` in case 2, the
    /// full `Q_k` in case 3.
    pub fn trading_income(&self, ctx: &ContentContext, mf: &MeanFieldSnapshot, q: f64) -> f64 {
        let qk = self.params.q_size;
        let c = self.cases(q, mf.q_bar);
        let sold = c.p1 * (qk - q).max(0.0) + c.p2 * (qk - mf.q_bar).max(0.0) + c.p3 * qk;
        ctx.requests * mf.price * sold
    }

    /// Placement cost `C¹ = w₄x + w₅x²` (Eq. (8)).
    pub fn placement_cost(&self, x: f64) -> f64 {
        self.params.w4 * x + self.params.w5 * x * x
    }

    /// Staleness cost `C²` (Eq. (9)): η₂ × total service delay.
    pub fn staleness_cost(
        &self,
        ctx: &ContentContext,
        mf: &MeanFieldSnapshot,
        x: f64,
        h: f64,
        q: f64,
    ) -> f64 {
        let p = &self.params;
        let qk = p.q_size;
        let hc = p.center_rate;
        let hj = self.rate.rate(h).max(1e-9);
        let c = self.cases(q, mf.q_bar);
        // Downloading the caching rate's worth of data from the center.
        let download = qk * x / hc;
        // Per-requester delivery delay under each case.
        let per_request = c.p1 * (qk - q).max(0.0) / hj
            + c.p2 * (qk - mf.q_bar).max(0.0) / hj
            + c.p3 * (q / hc + qk / hj);
        p.eta2 * (download + ctx.requests * per_request)
    }

    /// Sharing cost `C³ = P²·p̄_k·(q − q̄₋)`: the remuneration paid to the
    /// peer for completing the missing `q − q̄₋` units in case 2.
    pub fn sharing_cost(&self, mf: &MeanFieldSnapshot, q: f64) -> f64 {
        let c = self.cases(q, mf.q_bar);
        c.p2 * self.params.p_bar * (q - mf.q_bar).max(0.0)
    }

    /// Full breakdown of Eq. (10) at control `x`, state `(h, q)`.
    pub fn breakdown(
        &self,
        ctx: &ContentContext,
        mf: &MeanFieldSnapshot,
        x: f64,
        h: f64,
        q: f64,
    ) -> UtilityBreakdown {
        UtilityBreakdown {
            trading_income: self.trading_income(ctx, mf, q),
            sharing_benefit: mf.share_benefit,
            placement_cost: self.placement_cost(x),
            staleness_cost: self.staleness_cost(ctx, mf, x, h, q),
            sharing_cost: self.sharing_cost(mf, q),
        }
    }

    /// Net utility `U_k(t, x, S, λ)` (Eq. (10)).
    pub fn evaluate(
        &self,
        ctx: &ContentContext,
        mf: &MeanFieldSnapshot,
        x: f64,
        h: f64,
        q: f64,
    ) -> f64 {
        self.breakdown(ctx, mf, x, h, q).total()
    }

    /// The closed-form optimal control of Thm. 1 (Eq. (21)) given the
    /// normalized value gradient `∂_q̃ V` (the paper's `Q_k·∂_q V` after the
    /// `q̃ = q/Q_k` normalization; see the crate-root unit notes):
    ///
    /// `x* = [ −( w₄/(2w₅) + η₂·Q_k/(2H_c·w₅) + w₁·∂_q̃V/(2w₅) ) ]⁺`.
    pub fn optimal_control(&self, dv_dq: f64) -> f64 {
        let p = &self.params;
        let raw = -(p.w4 / (2.0 * p.w5)
            + p.eta2 * p.q_size / (2.0 * p.center_rate * p.w5)
            + p.w1 * dv_dq / (2.0 * p.w5));
        raw.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mf() -> MeanFieldSnapshot {
        MeanFieldSnapshot {
            price: 4.0,
            q_bar: 0.5,
            delta_q: 0.3,
            share_benefit: 0.2,
            sharer_fraction: 0.3,
            case3_fraction: 0.2,
        }
    }

    fn setup() -> (Utility, ContentContext) {
        let params = Params::default();
        let ctx = ContentContext::from_params(&params);
        (Utility::new(params), ctx)
    }

    #[test]
    fn placement_cost_is_quadratic() {
        let (u, _) = setup();
        assert_eq!(u.placement_cost(0.0), 0.0);
        let c1 = u.placement_cost(0.5);
        // w4·0.5 + w5·0.25 = 0.25 + 0.5.
        assert!((c1 - 0.75).abs() < 1e-12);
        assert!(u.placement_cost(1.0) > 2.0 * c1, "strictly convex");
    }

    #[test]
    fn trading_income_rises_with_price_and_requests() {
        let (u, ctx) = setup();
        let base = u.trading_income(&ctx, &mf(), 0.1);
        let pricier = MeanFieldSnapshot { price: 5.0, ..mf() };
        assert!(u.trading_income(&ctx, &pricier, 0.1) > base);
        let busier = ContentContext {
            requests: 20.0,
            ..ctx
        };
        assert!(u.trading_income(&busier, &mf(), 0.1) > base);
    }

    #[test]
    fn fully_cached_edp_sells_the_most() {
        let (u, ctx) = setup();
        // q = 0: cached everything → sells Q_k per request (case 1).
        let full = u.trading_income(&ctx, &mf(), 0.0);
        // q = 1: cached nothing; with q̄ = 0.5 the peer completes half.
        let empty = u.trading_income(&ctx, &mf(), 1.0);
        assert!(full > 0.0 && empty > 0.0);
        // Expected: full ≈ I·p·Q_k = 10·4·1 = 40.
        assert!((full - 40.0).abs() < 2.0, "full {full}");
    }

    #[test]
    fn staleness_cost_increases_with_caching_rate() {
        let (u, ctx) = setup();
        let low = u.staleness_cost(&ctx, &mf(), 0.0, 5.0e-5, 0.5);
        let high = u.staleness_cost(&ctx, &mf(), 1.0, 5.0e-5, 0.5);
        assert!(high > low, "downloading more data takes longer");
        // The difference is exactly η₂·Q_k/H_c.
        assert!((high - low - 1.0 / 1.25).abs() < 1e-9);
    }

    #[test]
    fn staleness_cost_decreases_with_better_channel() {
        let (u, ctx) = setup();
        let bad = u.staleness_cost(&ctx, &mf(), 0.5, 1.0e-5, 0.5);
        let good = u.staleness_cost(&ctx, &mf(), 0.5, 9.0e-5, 0.5);
        assert!(good < bad);
    }

    #[test]
    fn sharing_cost_only_in_case_2() {
        let (u, _) = setup();
        // q = 0.9 (short), q̄ = 0.05 (peer full) → deep in case 2.
        let mf_case2 = MeanFieldSnapshot {
            q_bar: 0.05,
            ..mf()
        };
        let c = u.sharing_cost(&mf_case2, 0.9);
        assert!((c - 1.0 * 0.85).abs() < 0.05, "cost {c}");
        // q = 0.05 (own cache full) → no sharing needed.
        assert!(u.sharing_cost(&mf_case2, 0.05) < 0.02);
    }

    #[test]
    fn breakdown_total_is_the_sum() {
        let (u, ctx) = setup();
        let b = u.breakdown(&ctx, &mf(), 0.4, 5.0e-5, 0.6);
        let expected = b.trading_income + b.sharing_benefit
            - b.placement_cost
            - b.staleness_cost
            - b.sharing_cost;
        assert_eq!(b.total(), expected);
        assert_eq!(u.evaluate(&ctx, &mf(), 0.4, 5.0e-5, 0.6), expected);
    }

    #[test]
    fn optimal_control_matches_the_first_order_condition() {
        // x* maximizes the Hamiltonian term
        //   drift_q(x)·∂V − C¹(x) − η₂·Q_k·x/H_c
        // whose x-derivative is −w₁∂V − w₄ − 2w₅x − η₂Q_k/H_c.
        let (u, _) = setup();
        let dv = -2.0;
        let x_star = u.optimal_control(dv);
        assert!(x_star > 0.0 && x_star < 1.0, "interior: {x_star}");
        let p = u.params();
        let foc = -p.w1 * dv - p.w4 - 2.0 * p.w5 * x_star - p.eta2 * p.q_size / p.center_rate;
        assert!(foc.abs() < 1e-9, "FOC residual {foc}");
    }

    #[test]
    fn optimal_control_clamps_at_both_ends() {
        let (u, _) = setup();
        assert_eq!(u.optimal_control(100.0), 0.0);
        assert_eq!(u.optimal_control(-1000.0), 1.0);
    }

    #[test]
    fn hamiltonian_is_maximized_at_x_star() {
        // Verify Thm. 1 numerically: scan x and check the closed form wins.
        let (u, ctx) = setup();
        let p = u.params().clone();
        let dv = -1.5;
        let x_star = u.optimal_control(dv);
        let ham = |x: f64| {
            p.drift_q(x, ctx.popularity, ctx.urgency_factor) * dv
                + u.evaluate(&ctx, &mf(), x, 5.0e-5, 0.5)
        };
        let best = ham(x_star);
        let mut x = 0.0;
        while x <= 1.0 {
            assert!(ham(x) <= best + 1e-9, "x = {x} beats x* = {x_star}");
            x += 0.01;
        }
    }
}
