//! The forward FPK sweep of Eq. (15): evolve the mean-field density `λ`
//! under the closed-loop caching drift (Alg. 2 line 8).

use mfgcp_obs::RecorderHandle;
use mfgcp_pde::{Field2d, FokkerPlanck2d, Grid2d, ImplicitFokkerPlanck2d, StepperScratch};
use mfgcp_sde::Normal;

use crate::params::{CoreError, Params};
use crate::utility::ContentContext;

/// Reusable cross-iteration workspace for [`FpkSolver::solve_into`]: the
/// closed-loop caching drift field plus the stepper scratch, allocated
/// once (via [`FpkSolver::scratch`]) and reused across every Picard
/// iteration of Alg. 2.
#[derive(Debug, Clone)]
pub struct FpkScratch {
    by: Field2d,
    stepper: StepperScratch,
}

/// Forward FPK solver.
#[derive(Debug, Clone)]
pub struct FpkSolver {
    params: Params,
    stepper: FokkerPlanck2d,
    implicit: ImplicitFokkerPlanck2d,
    grid: Grid2d,
    /// Channel drift `b_h(h)` — state-only, so assembled once here rather
    /// than on every solve.
    channel_drift: Field2d,
    recorder: RecorderHandle,
}

impl FpkSolver {
    /// Create a solver after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn new(params: Params) -> Result<Self, CoreError> {
        params.validate()?;
        let grid = params.grid();
        let stepper = FokkerPlanck2d::new(params.diffusion_h(), params.diffusion_q())
            .expect("validated diffusions");
        let mut implicit = ImplicitFokkerPlanck2d::new(params.diffusion_h(), params.diffusion_q())
            .expect("validated diffusions");
        implicit.set_batched(params.batched_kernels);
        let channel_drift = Field2d::from_fn(grid.clone(), |h, _q| params.drift_h(h));
        Ok(Self {
            params,
            stepper,
            implicit,
            grid,
            channel_drift,
            recorder: RecorderHandle::noop(),
        })
    }

    /// Attach a telemetry recorder. Each macro step of
    /// [`FpkSolver::solve_into`] then emits the `pde.fpk.mass_drift` gauge
    /// (stepper mass-conservation error measured before clipping, with the
    /// clipped negative mass as a field); the recorder also propagates to
    /// the underlying steppers for CFL-margin gauges and non-finite
    /// sentinels. Telemetry reads state only — solves are bit-identical
    /// with recording on or off.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.stepper.set_recorder(recorder.clone());
        self.implicit.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// A fresh workspace for [`FpkSolver::solve_into`].
    pub fn scratch(&self) -> FpkScratch {
        FpkScratch {
            by: Field2d::zeros(self.grid.clone()),
            stepper: StepperScratch::new(),
        }
    }

    /// The state grid.
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// The paper's §V-A initial distribution: `q` component
    /// `N(lambda0_mean·Q_k, (lambda0_std·Q_k)²)`, `h` component the OU
    /// stationary law, truncated to the grid and normalized.
    pub fn initial_density(&self) -> Field2d {
        let p = &self.params;
        let q_dist = Normal::new(p.lambda0_mean * p.q_size, p.lambda0_std * p.q_size)
            .expect("validated initial distribution");
        let h_sd = (p.varrho_h * p.varrho_h / p.varsigma_h).sqrt();
        let h_dist = Normal::new(p.upsilon_h, h_sd).expect("validated fading parameters");
        let mut lam = Field2d::from_fn(self.grid.clone(), |h, q| h_dist.pdf(h) * q_dist.pdf(q));
        lam.normalize();
        lam
    }

    /// Evolve `initial` forward under the policy surface, producing the
    /// density trajectory `λ(t_n, ·)` for `n = 0..=N`.
    ///
    /// Tiny negative undershoots from the upwind scheme are clipped and the
    /// mass renormalized after every macro step, keeping `λ` a valid
    /// probability density throughout.
    ///
    /// # Panics
    ///
    /// Panics if `policy.len() != params.time_steps` or grids mismatch.
    pub fn solve(
        &self,
        initial: Field2d,
        contexts: &[ContentContext],
        policy: &[Field2d],
    ) -> Vec<Field2d> {
        let mut out = Vec::new();
        self.solve_into(&initial, contexts, policy, &mut out, &mut self.scratch());
        out
    }

    /// [`FpkSolver::solve`] writing the trajectory into a caller-owned
    /// vector (resized and fully overwritten) with a reusable workspace —
    /// the allocation-free path the Picard loop of Alg. 2 runs on. The
    /// closed-loop drift assembly is fanned out over contiguous h-columns
    /// on [`Params::worker_threads`] scoped threads; each grid point is a
    /// pure function of the policy, so the result is bit-identical for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FpkSolver::solve`], or if
    /// reused buffers live on a different grid.
    pub fn solve_into(
        &self,
        initial: &Field2d,
        contexts: &[ContentContext],
        policy: &[Field2d],
        out: &mut Vec<Field2d>,
        scratch: &mut FpkScratch,
    ) {
        let n_steps = self.params.time_steps;
        assert_eq!(policy.len(), n_steps, "need one policy field per time step");
        assert_eq!(contexts.len(), n_steps, "need one context per time step");
        assert_eq!(initial.grid(), &self.grid, "initial density grid mismatch");
        let dt = self.params.dt();
        let (nx, ny) = (self.grid.x().len(), self.grid.y().len());
        let threads = self.params.assembly_threads(nx);

        out.resize_with(n_steps + 1, || Field2d::zeros(self.grid.clone()));
        for f in out.iter() {
            assert_eq!(f.grid(), &self.grid, "reused buffer grid mismatch");
        }
        out[0].values_mut().copy_from_slice(initial.values());
        for n in 0..n_steps {
            assert_eq!(
                policy[n].grid(),
                &self.grid,
                "policy grid mismatch at step {n}"
            );
            let ctx = &contexts[n];
            let pol = &policy[n];
            crate::parallel::for_each_column(threads, ny, scratch.by.values_mut(), |i, by_col| {
                for (j, b) in by_col.iter_mut().enumerate() {
                    *b = self
                        .params
                        .drift_q(pol.at(i, j), ctx.popularity, ctx.urgency_factor);
                }
            });
            let (head, tail) = out.split_at_mut(n + 1);
            let lam = &mut tail[0];
            lam.values_mut().copy_from_slice(head[n].values());
            if self.params.implicit_steppers {
                self.implicit.step_scratch(
                    lam,
                    &self.channel_drift,
                    &scratch.by,
                    dt,
                    &mut scratch.stepper,
                );
            } else {
                self.stepper.step_scratch(
                    lam,
                    &self.channel_drift,
                    &scratch.by,
                    dt,
                    &mut scratch.stepper,
                );
            }
            if self.recorder.enabled() {
                // The mass integral and clip accumulator are telemetry-only
                // derived quantities; the branch below leaves `lam` exactly
                // as the disabled path does.
                let mass = lam.integral();
                let mut clipped = 0.0;
                for v in lam.values_mut() {
                    if *v < 0.0 {
                        clipped -= *v;
                        *v = 0.0;
                    }
                }
                self.recorder.gauge(
                    "pde.fpk.mass_drift",
                    mass - 1.0,
                    &[("step", n.into()), ("clipped", clipped.into())],
                );
            } else {
                for v in lam.values_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            lam.normalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            time_steps: 20,
            grid_h: 12,
            grid_q: 48,
            ..Params::default()
        }
    }

    #[test]
    fn initial_density_matches_the_configured_normal() {
        let p = params();
        let solver = FpkSolver::new(p.clone()).unwrap();
        let lam = solver.initial_density();
        assert!((lam.integral() - 1.0).abs() < 1e-9);
        let q_mean = lam.weighted_integral(|_h, q| q);
        assert!((q_mean - 0.7).abs() < 0.02, "mean {q_mean}");
        let q_var = lam.weighted_integral(|_h, q| (q - q_mean) * (q - q_mean));
        assert!((q_var.sqrt() - 0.1).abs() < 0.02, "std {}", q_var.sqrt());
    }

    #[test]
    fn trajectory_stays_a_probability_density() {
        let p = params();
        let solver = FpkSolver::new(p.clone()).unwrap();
        let ctx = ContentContext::from_params(&p);
        let contexts = vec![ctx; p.time_steps];
        // Aggressive caching everywhere: drift pushes mass towards q = 0.
        let policy = vec![Field2d::from_fn(solver.grid().clone(), |_h, _q| 1.0); p.time_steps];
        let traj = solver.solve(solver.initial_density(), &contexts, &policy);
        assert_eq!(traj.len(), p.time_steps + 1);
        for (n, lam) in traj.iter().enumerate() {
            assert!((lam.integral() - 1.0).abs() < 1e-9, "mass at step {n}");
            assert!(lam.min() >= 0.0, "negative density at step {n}");
        }
    }

    #[test]
    fn caching_policy_moves_mass_towards_full_caches() {
        let p = params();
        let solver = FpkSolver::new(p.clone()).unwrap();
        // Low urgency so the refill drift does not mask the control.
        let ctx = ContentContext {
            requests: 10.0,
            popularity: 0.3,
            urgency_factor: 0.01,
        };
        let contexts = vec![ctx; p.time_steps];
        let policy = vec![Field2d::from_fn(solver.grid().clone(), |_h, _q| 1.0); p.time_steps];
        let traj = solver.solve(solver.initial_density(), &contexts, &policy);
        let mean0 = traj[0].weighted_integral(|_h, q| q);
        let mean_t = traj[p.time_steps].weighted_integral(|_h, q| q);
        assert!(
            mean_t < mean0 - 0.3,
            "remaining space should shrink: {mean0} -> {mean_t}"
        );
    }

    #[test]
    fn idle_policy_with_urgent_demand_refills_space() {
        let p = params();
        let solver = FpkSolver::new(p.clone()).unwrap();
        // x = 0 and strong urgency factor: Eq. (4) drift is positive.
        let ctx = ContentContext {
            requests: 10.0,
            popularity: 0.3,
            urgency_factor: 0.1,
        };
        let contexts = vec![ctx; p.time_steps];
        let policy = vec![Field2d::zeros(solver.grid().clone()); p.time_steps];
        let traj = solver.solve(solver.initial_density(), &contexts, &policy);
        let mean0 = traj[0].weighted_integral(|_h, q| q);
        let mean_t = traj[p.time_steps].weighted_integral(|_h, q| q);
        assert!(mean_t > mean0, "discard drift should grow remaining space");
    }

    #[test]
    #[should_panic(expected = "one policy field per time step")]
    fn mismatched_policy_rejected() {
        let p = params();
        let solver = FpkSolver::new(p.clone()).unwrap();
        let ctx = ContentContext::from_params(&p);
        solver.solve(solver.initial_density(), &vec![ctx; p.time_steps], &[]);
    }
}
