//! The smooth Heaviside approximation of §III-A:
//! `f(x) = 1 / (1 + e^{−2lx})`, `l > 0`, and its derivative
//! `f'(x) = 2l·e^{−2lx} / (1 + e^{−2lx})²` (used in the Lipschitz bound of
//! Lemma 1).

/// The paper's sigmoid smoothing of the Heaviside step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sigmoid {
    l: f64,
}

impl Sigmoid {
    /// Create a sigmoid with sharpness `l > 0`.
    ///
    /// # Panics
    ///
    /// Panics unless `l` is finite and strictly positive.
    pub fn new(l: f64) -> Self {
        assert!(
            l.is_finite() && l > 0.0,
            "sigmoid sharpness must be > 0, got {l}"
        );
        Self { l }
    }

    /// The sharpness parameter `l`.
    pub fn l(&self) -> f64 {
        self.l
    }

    /// `f(x) = 1 / (1 + e^{−2lx})`.
    pub fn eval(&self, x: f64) -> f64 {
        1.0 / (1.0 + (-2.0 * self.l * x).exp())
    }

    /// `f'(x) = 2l·e^{−2lx} (1 + e^{−2lx})^{−2}`.
    pub fn derivative(&self, x: f64) -> f64 {
        let e = (-2.0 * self.l * x).exp();
        let denom = 1.0 + e;
        2.0 * self.l * e / (denom * denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_and_midpoint() {
        let f = Sigmoid::new(10.0);
        assert!((f.eval(0.0) - 0.5).abs() < 1e-12);
        assert!(f.eval(10.0) > 1.0 - 1e-12);
        assert!(f.eval(-10.0) < 1e-12);
    }

    #[test]
    fn monotone_increasing() {
        let f = Sigmoid::new(3.0);
        let mut prev = f.eval(-2.0);
        let mut x = -2.0;
        while x < 2.0 {
            x += 0.05;
            let cur = f.eval(x);
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn complementary_symmetry() {
        let f = Sigmoid::new(5.0);
        for x in [-1.0, -0.3, 0.2, 0.9] {
            assert!((f.eval(x) + f.eval(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let f = Sigmoid::new(7.0);
        let h = 1e-6;
        for x in [-0.4, 0.0, 0.1, 0.5] {
            let fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
            assert!((f.derivative(x) - fd).abs() < 1e-5, "at {x}");
        }
    }

    #[test]
    fn derivative_peaks_at_origin() {
        let f = Sigmoid::new(4.0);
        // f'(0) = 2l/4 = l/2.
        assert!((f.derivative(0.0) - 2.0).abs() < 1e-12);
        assert!(f.derivative(0.5) < f.derivative(0.0));
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn zero_sharpness_rejected() {
        Sigmoid::new(0.0);
    }
}
