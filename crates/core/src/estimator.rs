//! The mean-field estimator of §IV-B(1).
//!
//! Given the mean-field density `λ(S_k(t))` and the current policy surface
//! `x*(S)`, the estimator computes everything the generic player needs that
//! would otherwise require querying all `M − 1` competitors:
//!
//! * the dynamic price `p_k(t)` (Eq. (17));
//! * the average peer caching state `q̄₋(t)` (Eq. (18));
//! * the average transfer size `Δq̄(t)` between a sharing and a needing EDP;
//! * the population fractions qualified to share (`M_k/M`, those with
//!   `q ≤ α·Q_k`) and stuck in case 3 (`M'_k/M`);
//! * the average sharing benefit
//!   `Φ̄²_k(t) = p̄_k·Δq̄·((M − M'_k)/M_k − 1)`.

use mfgcp_pde::Field2d;

use crate::params::Params;
use crate::pricing::mean_field_price;
use crate::sigmoid::Sigmoid;

/// The per-time-step quantities produced by the estimator and consumed by
/// the generic player's utility (§IV-B(2)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanFieldSnapshot {
    /// Dynamic trading price `p_k(t)` (Eq. (17)).
    pub price: f64,
    /// Average peer remaining space `q̄₋(t)` (Eq. (18)).
    pub q_bar: f64,
    /// Average transfer size `Δq̄(t)`.
    pub delta_q: f64,
    /// Average sharing benefit `Φ̄²_k(t)` accruing to a qualified sharer.
    pub share_benefit: f64,
    /// Fraction of EDPs qualified to share (`M_k/M`).
    pub sharer_fraction: f64,
    /// Fraction of EDPs in case 3 (`M'_k/M`).
    pub case3_fraction: f64,
}

/// Computes [`MeanFieldSnapshot`]s from a density and a policy.
#[derive(Debug, Clone)]
pub struct MeanFieldEstimator {
    params: Params,
    sigmoid: Sigmoid,
}

impl MeanFieldEstimator {
    /// Create an estimator for the given parameters.
    pub fn new(params: Params) -> Self {
        let sigmoid = Sigmoid::new(params.sigmoid_l);
        Self { params, sigmoid }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Average remaining space `q̄₋ = ∬ q·λ dh dq` (Eq. (18)).
    ///
    /// The density is renormalized inside the integral so small
    /// mass-clipping at the walls cannot bias the average.
    pub fn q_bar(&self, density: &Field2d) -> f64 {
        let mass = density.integral();
        if mass <= 0.0 {
            return 0.0;
        }
        density.weighted_integral(|_h, q| q) / mass
    }

    /// Fraction of EDPs with `q ≤ α·Q_k` — those holding enough of the
    /// content to share it (`M_k / M`).
    pub fn sharer_fraction(&self, density: &Field2d) -> f64 {
        let mass = density.integral();
        if mass <= 0.0 {
            return 0.0;
        }
        let thr = self.params.alpha_qk();
        density.weighted_integral(|_h, q| f64::from(u8::from(q <= thr))) / mass
    }

    /// Average transfer size `Δq̄`: the gap between the average state of
    /// the needing population (`q > α·Q_k`) and the sharing population
    /// (`q ≤ α·Q_k`).
    pub fn delta_q(&self, density: &Field2d) -> f64 {
        let thr = self.params.alpha_qk();
        let mass_sharers = density.weighted_integral(|_h, q| f64::from(u8::from(q <= thr)));
        let mass_needers = density.weighted_integral(|_h, q| f64::from(u8::from(q > thr)));
        let q_sharers = density.weighted_integral(|_h, q| if q <= thr { q } else { 0.0 });
        let q_needers = density.weighted_integral(|_h, q| if q > thr { q } else { 0.0 });
        let avg_sharers = if mass_sharers > 1e-12 {
            q_sharers / mass_sharers
        } else {
            0.0
        };
        let avg_needers = if mass_needers > 1e-12 {
            q_needers / mass_needers
        } else {
            0.0
        };
        (avg_needers - avg_sharers).abs()
    }

    /// Fraction of the population in case 3: both the EDP and its potential
    /// peer lack the content (`M'_k / M ≈ ∬ P³(q, q̄) λ`).
    pub fn case3_fraction(&self, density: &Field2d) -> f64 {
        let mass = density.integral();
        if mass <= 0.0 {
            return 0.0;
        }
        let thr = self.params.alpha_qk();
        let q_bar = self.q_bar(density);
        let peer_short = self.sigmoid.eval(q_bar - thr);
        let own_short = density.weighted_integral(|_h, q| self.sigmoid.eval(q - thr)) / mass;
        own_short * peer_short
    }

    /// Average sharing benefit
    /// `Φ̄²_k = p̄_k·Δq̄·((M − M')/M_k − 1)`, clamped at zero when nobody is
    /// qualified to share. `(M − M')/M_k − 1` counts how many buyers each
    /// qualified sharer serves beyond itself.
    pub fn share_benefit(&self, density: &Field2d) -> f64 {
        let m = self.params.num_edps as f64;
        let m_k = (self.sharer_fraction(density) * m).max(1.0);
        let m_prime = self.case3_fraction(density) * m;
        let buyers_per_sharer = ((m - m_prime) / m_k - 1.0).max(0.0);
        self.params.p_bar * self.delta_q(density) * buyers_per_sharer
    }

    /// Assemble the full snapshot from a density and the current policy.
    pub fn snapshot(&self, density: &Field2d, policy: &Field2d) -> MeanFieldSnapshot {
        MeanFieldSnapshot {
            price: mean_field_price(
                self.params.p_hat,
                self.params.eta1,
                self.params.q_size,
                density,
                policy,
            ),
            q_bar: self.q_bar(density),
            delta_q: self.delta_q(density),
            share_benefit: self.share_benefit(density),
            sharer_fraction: self.sharer_fraction(density),
            case3_fraction: self.case3_fraction(density),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_pde::{Axis, Grid2d};

    fn grid() -> Grid2d {
        Grid2d::new(
            Axis::new(1.0e-5, 10.0e-5, 8).unwrap(),
            Axis::new(0.0, 1.0, 101).unwrap(),
        )
    }

    fn delta_density(q0: f64) -> Field2d {
        // All mass concentrated near q = q0 (uniform in h).
        let mut f = Field2d::from_fn(grid(), |_h, q| {
            let z = (q - q0) / 0.02;
            (-0.5 * z * z).exp()
        });
        f.normalize();
        f
    }

    fn estimator() -> MeanFieldEstimator {
        MeanFieldEstimator::new(Params::default())
    }

    #[test]
    fn q_bar_of_concentrated_density() {
        let est = estimator();
        let lam = delta_density(0.6);
        assert!((est.q_bar(&lam) - 0.6).abs() < 0.01);
    }

    #[test]
    fn sharer_fraction_tracks_the_threshold() {
        let est = estimator();
        // α·Q_k = 0.2; all mass at q = 0.05 → everyone can share.
        assert!(est.sharer_fraction(&delta_density(0.05)) > 0.95);
        // All mass at q = 0.8 → nobody can share.
        assert!(est.sharer_fraction(&delta_density(0.8)) < 0.05);
    }

    #[test]
    fn delta_q_measures_the_gap() {
        let est = estimator();
        // Half the mass at 0.1 (sharers), half at 0.7 (needers).
        let mut lam = Field2d::from_fn(grid(), |_h, q| {
            let z1 = (q - 0.1) / 0.02;
            let z2 = (q - 0.7) / 0.02;
            (-0.5 * z1 * z1).exp() + (-0.5 * z2 * z2).exp()
        });
        lam.normalize();
        assert!(
            (est.delta_q(&lam) - 0.6).abs() < 0.02,
            "Δq = {}",
            est.delta_q(&lam)
        );
    }

    #[test]
    fn case3_fraction_high_when_everyone_is_short() {
        let est = estimator();
        assert!(est.case3_fraction(&delta_density(0.9)) > 0.9);
        assert!(est.case3_fraction(&delta_density(0.05)) < 0.1);
    }

    #[test]
    fn share_benefit_zero_when_everyone_has_the_content() {
        let est = estimator();
        // Everyone qualified (q = 0.05): no buyers → the (M−M')/M_k − 1
        // factor is ≈ 0.
        let b = est.share_benefit(&delta_density(0.05));
        assert!(b < 0.05, "benefit {b}");
    }

    #[test]
    fn share_benefit_positive_with_mixed_population() {
        // Sharing is active when the population mean sits near the α·Q_k
        // threshold (the paper's mean-field peer is the average EDP):
        // 20% well-stocked sharers, 80% needers just above the threshold.
        let est = estimator();
        let mut lam = Field2d::from_fn(grid(), |_h, q| {
            let z1 = (q - 0.08) / 0.02;
            let z2 = (q - 0.32) / 0.02;
            0.2 * (-0.5 * z1 * z1).exp() + 0.8 * (-0.5 * z2 * z2).exp()
        });
        lam.normalize();
        let b = est.share_benefit(&lam);
        assert!(b > 0.05, "benefit {b}");
    }

    #[test]
    fn snapshot_is_consistent_with_components() {
        let est = estimator();
        let lam = delta_density(0.5);
        let policy = Field2d::from_fn(grid(), |_h, _q| 0.3);
        let snap = est.snapshot(&lam, &policy);
        assert!((snap.q_bar - est.q_bar(&lam)).abs() < 1e-12);
        assert!(
            (snap.price - (5.0 - 1.0 * 0.3)).abs() < 1e-6,
            "price {}",
            snap.price
        );
        assert!(snap.sharer_fraction >= 0.0 && snap.sharer_fraction <= 1.0);
        assert!(snap.case3_fraction >= 0.0 && snap.case3_fraction <= 1.0);
    }
}
