//! Reduced 1-D (`q`-only) MFG solver — the `ablation_dim` target.
//!
//! The channel dynamics of Eq. (1) are uncontrolled and enter the utility
//! only through the rate `H(h)`; freezing `h` at its long-term mean `υ_h`
//! collapses the state to the caching dimension. This solver carries out
//! the same Alg. 2 loop on the 1-D grid, trading the channel-induced
//! utility spread for a large constant-factor speedup. The ablation bench
//! compares its equilibrium against the full 2-D solver.

use mfgcp_pde::{Axis, BackwardParabolic1d, Field1d, FokkerPlanck1d};
use mfgcp_sde::Normal;

use crate::diag::ConvergenceReport;
use crate::estimator::MeanFieldSnapshot;
use crate::params::{CoreError, Params};
use crate::sigmoid::Sigmoid;
use crate::utility::{ContentContext, Utility};

/// Equilibrium of the reduced game.
#[derive(Debug, Clone)]
pub struct ReducedEquilibrium {
    /// Parameters used.
    pub params: Params,
    /// `policy[n]` = `x*(t_n, q)`.
    pub policy: Vec<Field1d>,
    /// `density[n]` = `λ(t_n, q)`, `n = 0..=N`.
    pub density: Vec<Field1d>,
    /// `values[n]` = `V(t_n, q)`, `n = 0..=N`.
    pub values: Vec<Field1d>,
    /// Price trajectory.
    pub prices: Vec<f64>,
    /// Convergence diagnostics.
    pub report: ConvergenceReport,
}

impl ReducedEquilibrium {
    /// Policy lookup at `(t, q)`.
    pub fn policy_at(&self, t: f64, q: f64) -> f64 {
        let n = ((t / self.params.dt()).floor() as usize).min(self.params.time_steps - 1);
        self.policy[n].interpolate(q)
    }

    /// Mean remaining space at each step.
    pub fn mean_remaining_space(&self) -> Vec<f64> {
        self.density
            .iter()
            .map(|lam| {
                let mass = lam.integral();
                if mass > 0.0 {
                    lam.first_moment() / mass
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// 1-D MFG solver over the `q` axis only.
#[derive(Debug, Clone)]
pub struct ReducedMfgSolver {
    params: Params,
    utility: Utility,
    axis: Axis,
    sigmoid: Sigmoid,
}

impl ReducedMfgSolver {
    /// Create a solver after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn new(params: Params) -> Result<Self, CoreError> {
        params.validate()?;
        let axis = Axis::new(0.0, params.q_size, params.grid_q).expect("validated q axis");
        let sigmoid = Sigmoid::new(params.sigmoid_l);
        Ok(Self {
            utility: Utility::new(params.clone()),
            params,
            axis,
            sigmoid,
        })
    }

    /// The q axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    fn initial_density(&self) -> Field1d {
        let p = &self.params;
        let dist = Normal::new(p.lambda0_mean * p.q_size, p.lambda0_std * p.q_size)
            .expect("validated initial distribution");
        let mut lam = Field1d::from_fn(self.axis.clone(), |q| dist.pdf(q));
        lam.normalize();
        lam
    }

    fn snapshot(&self, density: &Field1d, policy: &Field1d) -> MeanFieldSnapshot {
        let p = &self.params;
        let dx = self.axis.dx();
        let mass = density.integral().max(1e-300);
        let supply: f64 = density
            .values()
            .iter()
            .zip(policy.values())
            .map(|(l, x)| l * x)
            .sum::<f64>()
            * dx;
        let price = (p.p_hat - p.eta1 * p.q_size * supply).max(0.0);
        let q_bar = density.first_moment() / mass;
        let thr = p.alpha_qk();
        let mut m_sh = 0.0;
        let mut m_nd = 0.0;
        let mut q_sh = 0.0;
        let mut q_nd = 0.0;
        let mut own_short = 0.0;
        for (i, &l) in density.values().iter().enumerate() {
            let q = self.axis.at(i);
            let w = l * dx;
            own_short += w * self.sigmoid.eval(q - thr);
            if q <= thr {
                m_sh += w;
                q_sh += w * q;
            } else {
                m_nd += w;
                q_nd += w * q;
            }
        }
        let avg_sh = if m_sh > 1e-12 { q_sh / m_sh } else { 0.0 };
        let avg_nd = if m_nd > 1e-12 { q_nd / m_nd } else { 0.0 };
        let delta_q = (avg_nd - avg_sh).abs();
        let sharer_fraction = m_sh / mass;
        let case3_fraction = (own_short / mass) * self.sigmoid.eval(q_bar - thr);
        let m = p.num_edps as f64;
        let m_k = (sharer_fraction * m).max(1.0);
        let m_prime = case3_fraction * m;
        let buyers = ((m - m_prime) / m_k - 1.0).max(0.0);
        MeanFieldSnapshot {
            price,
            q_bar,
            delta_q,
            share_benefit: p.p_bar * delta_q * buyers,
            sharer_fraction,
            case3_fraction,
        }
    }

    /// Solve the reduced game with the stationary context from the
    /// parameters. Always returns the last iterate — check the report.
    pub fn solve(&self) -> ReducedEquilibrium {
        let p = &self.params;
        let n_steps = p.time_steps;
        let dt = p.dt();
        let ctx = ContentContext::from_params(p);
        let h_mean = p.upsilon_h;
        let lambda0 = self.initial_density();
        let nq = self.axis.len();
        let dq = self.axis.dx();

        let mut density = vec![lambda0.clone(); n_steps + 1];
        let mut policy = vec![Field1d::zeros(self.axis.clone()); n_steps];
        let mut values: Vec<Field1d> = Vec::new();
        let mut residuals = Vec::new();
        let mut update_norms = Vec::new();
        let mut converged = false;
        let mut iterations = 0;

        let mut backward = BackwardParabolic1d::new(p.diffusion_q()).expect("validated");
        let mut forward = FokkerPlanck1d::new(p.diffusion_q()).expect("validated");

        for _ in 0..p.max_iterations {
            iterations += 1;
            let snapshots: Vec<MeanFieldSnapshot> = (0..n_steps)
                .map(|n| self.snapshot(&density[n], &policy[n]))
                .collect();

            // Backward HJB on the q axis; salvage terminal condition
            // V(T) = γ·(Q_k − q) for parity with the 2-D solver.
            let mut vals = vec![Field1d::zeros(self.axis.clone()); n_steps + 1];
            if p.terminal_value_weight > 0.0 {
                let gamma = p.terminal_value_weight;
                let qk = p.q_size;
                vals[n_steps] = Field1d::from_fn(self.axis.clone(), |q| gamma * (qk - q));
            }
            let mut new_policy = vec![Field1d::zeros(self.axis.clone()); n_steps];
            for n in (0..n_steps).rev() {
                let v_next = vals[n + 1].clone();
                let mut drift = vec![0.0; nq];
                let mut source = vec![0.0; nq];
                for j in 0..nq {
                    let dv = if j == 0 {
                        (v_next.at(1) - v_next.at(0)) / dq
                    } else if j == nq - 1 {
                        (v_next.at(nq - 1) - v_next.at(nq - 2)) / dq
                    } else {
                        (v_next.at(j + 1) - v_next.at(j - 1)) / (2.0 * dq)
                    };
                    let x = self.utility.optimal_control(dv);
                    new_policy[n].values_mut()[j] = x;
                    drift[j] = p.drift_q(x, ctx.popularity, ctx.urgency_factor);
                    source[j] =
                        self.utility
                            .evaluate(&ctx, &snapshots[n], x, h_mean, self.axis.at(j));
                }
                let mut v = v_next;
                backward.step_back(&mut v, &drift, &source, dt);
                vals[n] = v;
            }
            values = vals;

            // Relax; the stopping rule reads the undamped best-response
            // gap, the applied (damped) update is recorded separately —
            // see `ConvergenceReport` for why the distinction matters.
            let omega = p.relaxation;
            let mut residual = 0.0_f64;
            let mut update_norm = 0.0_f64;
            for n in 0..n_steps {
                for j in 0..nq {
                    let old = policy[n].at(j);
                    let x_new = new_policy[n].at(j);
                    let relaxed = (1.0 - omega) * old + omega * x_new;
                    residual = residual.max((x_new - old).abs());
                    update_norm = update_norm.max((relaxed - old).abs());
                    policy[n].values_mut()[j] = relaxed;
                }
            }
            residuals.push(residual);
            update_norms.push(update_norm);

            // Forward FPK.
            let mut lam = lambda0.clone();
            density[0] = lam.clone();
            for n in 0..n_steps {
                let drift: Vec<f64> = (0..nq)
                    .map(|j| p.drift_q(policy[n].at(j), ctx.popularity, ctx.urgency_factor))
                    .collect();
                forward.step(&mut lam, &drift, dt);
                for v in lam.values_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                lam.normalize();
                density[n + 1] = lam.clone();
            }

            if residual < p.tolerance {
                converged = true;
                break;
            }
        }

        let prices: Vec<f64> = (0..n_steps)
            .map(|n| self.snapshot(&density[n], &policy[n]).price)
            .collect();

        ReducedEquilibrium {
            params: p.clone(),
            policy,
            density,
            values,
            prices,
            report: ConvergenceReport {
                converged,
                iterations,
                residuals,
                update_norms,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Params {
        Params {
            time_steps: 16,
            grid_q: 48,
            max_iterations: 60,
            ..Params::default()
        }
    }

    #[test]
    fn reduced_game_converges() {
        let eq = ReducedMfgSolver::new(fast()).unwrap().solve();
        assert!(eq.report.converged, "residuals {:?}", eq.report.residuals);
    }

    #[test]
    fn reduced_policy_valid_and_density_normalized() {
        let eq = ReducedMfgSolver::new(fast()).unwrap().solve();
        for p in &eq.policy {
            assert!(p.values().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        for lam in &eq.density {
            assert!((lam.integral() - 1.0).abs() < 1e-9);
        }
        for &p in &eq.prices {
            assert!((0.0..=5.0).contains(&p));
        }
    }

    #[test]
    fn reduced_agrees_with_full_solver_on_the_q_marginal() {
        // With the 2-D solver's h dimension averaged out, the mean
        // remaining-space trajectories should agree to a few percent.
        let params = fast();
        let reduced = ReducedMfgSolver::new(params.clone()).unwrap().solve();
        let full = crate::MfgSolver::new(Params {
            grid_h: 10,
            ..params
        })
        .unwrap()
        .solve()
        .unwrap();
        let a = reduced.mean_remaining_space();
        let b = full.mean_remaining_space();
        for (n, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 0.08, "step {n}: reduced {x} vs full {y}");
        }
    }

    #[test]
    fn reduced_salvage_matches_full_solver_trend() {
        // Salvage keeps the late-horizon policy alive in the reduced
        // solver too (parity with the 2-D HJB's terminal condition).
        let plain = ReducedMfgSolver::new(fast()).unwrap().solve();
        let salvage = ReducedMfgSolver::new(Params {
            terminal_value_weight: 3.0,
            ..fast()
        })
        .unwrap()
        .solve();
        let last = plain.policy.len() - 1;
        let late_plain: f64 = plain.policy[last].values().iter().sum();
        let late_salvage: f64 = salvage.policy[last].values().iter().sum();
        assert!(
            late_salvage > late_plain,
            "salvage {late_salvage} <= plain {late_plain}"
        );
    }

    #[test]
    fn policy_lookup_clamps_time() {
        let eq = ReducedMfgSolver::new(fast()).unwrap().solve();
        let x = eq.policy_at(1e9, 0.5);
        assert!((0.0..=1.0).contains(&x));
    }
}
