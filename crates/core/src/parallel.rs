//! Scoped-thread fan-out over the h-columns of row-major `(h, q)` fields.
//!
//! The per-grid-point HJB/FPK assembly passes are pure functions of the
//! previous iterate, so they can be split across threads along the `h`
//! axis (whose columns are contiguous in [`mfgcp_pde::Field2d`]'s
//! row-major layout) without changing a single bit of the result: every
//! point is computed by the same float expression regardless of which
//! thread owns its column, and no accumulation crosses a column boundary.

/// Apply `f(i, col)` to every length-`ny` h-column of `a`, splitting
/// contiguous blocks of columns across `threads` scoped threads
/// (`threads <= 1` runs inline).
pub(crate) fn for_each_column<F>(threads: usize, ny: usize, a: &mut [f64], f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(a.len() % ny, 0);
    let nx = a.len() / ny;
    let threads = threads.clamp(1, nx.max(1));
    if threads == 1 {
        for (i, col) in a.chunks_mut(ny).enumerate() {
            f(i, col);
        }
        return;
    }
    let cols_per = nx.div_ceil(threads);
    let block = cols_per * ny;
    std::thread::scope(|scope| {
        for (t, ba) in a.chunks_mut(block).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (di, col) in ba.chunks_mut(ny).enumerate() {
                    f(t * cols_per + di, col);
                }
            });
        }
    });
}

/// Apply `f(i, col_a, col_b, col_c)` to the matching h-columns of three
/// equally laid-out buffers, with the same splitting rules as
/// [`for_each_column`].
pub(crate) fn for_each_column3<F>(
    threads: usize,
    ny: usize,
    a: &mut [f64],
    b: &mut [f64],
    c: &mut [f64],
    f: F,
) where
    F: Fn(usize, &mut [f64], &mut [f64], &mut [f64]) + Sync,
{
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len() % ny, 0);
    let nx = a.len() / ny;
    let threads = threads.clamp(1, nx.max(1));
    if threads == 1 {
        for (i, ((ca, cb), cc)) in a
            .chunks_mut(ny)
            .zip(b.chunks_mut(ny))
            .zip(c.chunks_mut(ny))
            .enumerate()
        {
            f(i, ca, cb, cc);
        }
        return;
    }
    let cols_per = nx.div_ceil(threads);
    let block = cols_per * ny;
    std::thread::scope(|scope| {
        for (t, ((ba, bb), bc)) in a
            .chunks_mut(block)
            .zip(b.chunks_mut(block))
            .zip(c.chunks_mut(block))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (di, ((ca, cb), cc)) in ba
                    .chunks_mut(ny)
                    .zip(bb.chunks_mut(ny))
                    .zip(bc.chunks_mut(ny))
                    .enumerate()
                {
                    f(t * cols_per + di, ca, cb, cc);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_reference(nx: usize, ny: usize) -> Vec<f64> {
        let mut v = vec![0.0; nx * ny];
        for i in 0..nx {
            for j in 0..ny {
                v[i * ny + j] = (i * 31 + j) as f64 * 0.125 + 1.0 / (i + j + 1) as f64;
            }
        }
        v
    }

    #[test]
    fn column_fanout_is_bit_identical_across_thread_counts() {
        let (nx, ny) = (13, 7);
        let kernel = |i: usize, col: &mut [f64]| {
            for (j, v) in col.iter_mut().enumerate() {
                *v = (i * 31 + j) as f64 * 0.125 + 1.0 / (i + j + 1) as f64;
            }
        };
        let reference = fill_reference(nx, ny);
        for threads in [1, 2, 3, 8, 64] {
            let mut out = vec![0.0; nx * ny];
            for_each_column(threads, ny, &mut out, kernel);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn three_way_fanout_matches_serial() {
        let (nx, ny) = (9, 5);
        let kernel = |i: usize, a: &mut [f64], b: &mut [f64], c: &mut [f64]| {
            for j in 0..ny {
                a[j] = (i + j) as f64;
                b[j] = (i * j) as f64;
                c[j] = a[j] + 0.5 * b[j];
            }
        };
        let mut sa = vec![0.0; nx * ny];
        let mut sb = vec![0.0; nx * ny];
        let mut sc = vec![0.0; nx * ny];
        for_each_column3(1, ny, &mut sa, &mut sb, &mut sc, kernel);
        for threads in [2, 4, 16] {
            let (mut pa, mut pb, mut pc) =
                (vec![0.0; nx * ny], vec![0.0; nx * ny], vec![0.0; nx * ny]);
            for_each_column3(threads, ny, &mut pa, &mut pb, &mut pc, kernel);
            assert_eq!(pa, sa, "threads = {threads}");
            assert_eq!(pb, sb, "threads = {threads}");
            assert_eq!(pc, sc, "threads = {threads}");
        }
    }
}
