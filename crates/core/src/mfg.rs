//! The iterative best-response learning scheme of Alg. 2 — the heart of
//! MFG-CP.
//!
//! Starting from the initial density and a zero policy, each iteration
//!
//! 1. queries the [`MeanFieldEstimator`] for `p_k(t)`, `q̄₋(t)`, `Δq̄(t)`
//!    and the average sharing benefit along the current density trajectory
//!    (Alg. 2 line 9);
//! 2. solves the HJB equation backwards to refresh the policy
//!    (lines 4–5, Thm. 1);
//! 3. relaxes the policy (`x ← (1−ω)x_old + ω x_new`) — the practical
//!    realization of the contraction mapping in Thm. 2;
//! 4. solves the FPK equation forwards under the relaxed policy (line 8);
//! 5. stops when the *undamped* sup-norm best-response gap
//!    `max|BR(x) − x|` falls below the preset threshold (line 6). The gap
//!    is measured before the relaxation is applied: the damped update
//!    `ω·|BR(x) − x|` shrinks with the mixing weight, not with proximity
//!    to equilibrium, and is recorded separately in
//!    [`ConvergenceReport::update_norms`].
//!
//! The HJB/FPK sweeps run on cross-iteration scratch buffers and fan
//! their per-grid-point assembly out over h-columns with scoped threads
//! ([`Params::worker_threads`]); results are bit-identical for any thread
//! count.

use std::mem;
use std::sync::OnceLock;

use mfgcp_obs::RecorderHandle;
use mfgcp_pde::Field2d;

use crate::diag::ConvergenceReport;
use crate::estimator::{MeanFieldEstimator, MeanFieldSnapshot};
use crate::fpk::{FpkScratch, FpkSolver};
use crate::hjb::{HjbScratch, HjbSolver};
use crate::params::{CoreError, Params};
use crate::utility::{ContentContext, Utility, UtilityBreakdown};

/// A mean-field equilibrium: the fixed point `(V*, λ*)` of the coupled
/// HJB–FPK system, together with the induced policy and prices.
#[derive(Debug)]
pub struct Equilibrium {
    /// The parameters the equilibrium was computed under.
    pub params: Params,
    /// Per-step workload contexts used in the solve.
    pub contexts: Vec<ContentContext>,
    /// `policy[n]` = equilibrium caching rate `x*(t_n, h, q)`, `n = 0..N`.
    pub policy: Vec<Field2d>,
    /// `density[n]` = mean-field density `λ(t_n, ·)`, `n = 0..=N`.
    pub density: Vec<Field2d>,
    /// `values[n]` = value function `V(t_n, ·)`, `n = 0..=N`.
    pub values: Vec<Field2d>,
    /// Equilibrium mean-field snapshots per step (price, q̄, Δq̄, …).
    pub snapshots: Vec<MeanFieldSnapshot>,
    /// Convergence diagnostics of the Picard iteration.
    pub report: ConvergenceReport,
    /// Lazily computed per-step utility breakdown (the O(N·nx·ny)
    /// quadrature behind [`Equilibrium::utility_series`]), cached so the
    /// `accumulated_*` accessors share one computation.
    utility_cache: OnceLock<Vec<UtilityBreakdown>>,
}

impl Clone for Equilibrium {
    fn clone(&self) -> Self {
        let utility_cache = OnceLock::new();
        if let Some(series) = self.utility_cache.get() {
            let _ = utility_cache.set(series.clone());
        }
        Self {
            params: self.params.clone(),
            contexts: self.contexts.clone(),
            policy: self.policy.clone(),
            density: self.density.clone(),
            values: self.values.clone(),
            snapshots: self.snapshots.clone(),
            report: self.report.clone(),
            utility_cache,
        }
    }
}

impl Equilibrium {
    /// Rehydrate an equilibrium from externally stored parts (the loader
    /// path of the `mfgcp-serve` artifact store). Every structural
    /// invariant the accessors rely on is checked: one context and one
    /// snapshot per macro step, `time_steps` policy fields,
    /// `time_steps + 1` density and value fields, and all fields on the
    /// grid implied by `params`. Field *values* are taken as-is —
    /// including non-finite ones — so a load reproduces the stored
    /// trajectories bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentParts`] naming the first violated
    /// invariant, or a validation error from [`Params::validate`].
    pub fn from_parts(
        params: Params,
        contexts: Vec<ContentContext>,
        policy: Vec<Field2d>,
        density: Vec<Field2d>,
        values: Vec<Field2d>,
        snapshots: Vec<MeanFieldSnapshot>,
        report: ConvergenceReport,
    ) -> Result<Self, CoreError> {
        params.validate()?;
        let n = params.time_steps;
        let inconsistent = |message: String| CoreError::InconsistentParts { message };
        let check_len = |what: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(inconsistent(format!(
                    "{what} has {got} entries, expected {want}"
                )))
            }
        };
        check_len("contexts", contexts.len(), n)?;
        check_len("snapshots", snapshots.len(), n)?;
        check_len("policy", policy.len(), n)?;
        check_len("density", density.len(), n + 1)?;
        check_len("values", values.len(), n + 1)?;
        let grid = params.grid();
        for (what, fields) in [
            ("policy", &policy),
            ("density", &density),
            ("values", &values),
        ] {
            if let Some(i) = fields.iter().position(|f| *f.grid() != grid) {
                return Err(inconsistent(format!(
                    "{what}[{i}] is on a different grid than params imply"
                )));
            }
        }
        Ok(Self {
            params,
            contexts,
            policy,
            density,
            values,
            snapshots,
            report,
            utility_cache: OnceLock::new(),
        })
    }

    /// The macro time step.
    pub fn dt(&self) -> f64 {
        self.params.dt()
    }

    /// Index of the macro step containing time `t` (clamped to the horizon).
    pub fn step_of(&self, t: f64) -> usize {
        let n = (t / self.dt()).floor() as isize;
        n.clamp(0, self.params.time_steps as isize - 1) as usize
    }

    /// Equilibrium caching rate at `(t, h, q)` via bilinear interpolation.
    pub fn policy_at(&self, t: f64, h: f64, q: f64) -> f64 {
        self.policy[self.step_of(t)].interpolate(h, q)
    }

    /// Mean-field density at `(t, h, q)`.
    pub fn density_at(&self, t: f64, h: f64, q: f64) -> f64 {
        let n = ((t / self.dt()).round() as usize).min(self.params.time_steps);
        self.density[n].interpolate(h, q)
    }

    /// The equilibrium price trajectory `p_k(t_n)`.
    pub fn price_series(&self) -> Vec<f64> {
        self.snapshots.iter().map(|s| s.price).collect()
    }

    /// Equilibrium trading price `p*_k(t)` — piecewise constant over the
    /// macro step containing `t` (clamped to the horizon), matching the
    /// per-slot pricing the EDPs apply online.
    pub fn price_at(&self, t: f64) -> f64 {
        self.snapshots[self.step_of(t)].price
    }

    /// Mean peer remaining space `q̄₋(t)` (Eq. (18)) over the macro step
    /// containing `t` (clamped to the horizon).
    pub fn q_bar_at(&self, t: f64) -> f64 {
        self.snapshots[self.step_of(t)].q_bar
    }

    /// The q-marginal of the density at step `n` (what Figs. 4, 6, 7 plot).
    pub fn density_marginal_q(&self, n: usize) -> mfgcp_pde::Field1d {
        self.density[n].marginal_y()
    }

    /// Total FPK mass `∫λ(t_n) dS` at every stored step, `n = 0..=N`.
    /// The transport scheme is conservative, so each entry should sit
    /// within discretization error of 1 — the `mfgcp-check` auditor gates
    /// on exactly this series (invariant I4).
    pub fn mass_series(&self) -> Vec<f64> {
        self.density.iter().map(Field2d::integral).collect()
    }

    /// Population-average utility breakdown at each macro step:
    /// `Ū(t_n) = ∬ U(x*(S), S) λ(t_n, S) dS`, split by component.
    ///
    /// Computed once on first call and cached for the lifetime of the
    /// equilibrium, so `accumulated_utility`, `accumulated_trading_income`
    /// and `accumulated_staleness_cost` share a single quadrature pass.
    pub fn utility_series(&self) -> &[UtilityBreakdown] {
        self.utility_cache
            .get_or_init(|| self.compute_utility_series())
    }

    fn compute_utility_series(&self) -> Vec<UtilityBreakdown> {
        let utility = Utility::new(self.params.clone());
        let grid = self.policy[0].grid().clone();
        let (nx, ny) = (grid.x().len(), grid.y().len());
        let cell = grid.cell_area();
        let mut out = Vec::with_capacity(self.params.time_steps);
        for n in 0..self.params.time_steps {
            let lam = &self.density[n];
            let pol = &self.policy[n];
            let ctx = &self.contexts[n];
            let snap = &self.snapshots[n];
            let mut acc = UtilityBreakdown::default();
            let mut mass = 0.0;
            for i in 0..nx {
                let h = grid.x().at(i);
                for j in 0..ny {
                    let w = lam.at(i, j) * cell;
                    if w <= 0.0 {
                        continue;
                    }
                    mass += w;
                    let q = grid.y().at(j);
                    let b = utility.breakdown(ctx, snap, pol.at(i, j), h, q);
                    acc.trading_income += w * b.trading_income;
                    acc.sharing_benefit += w * b.sharing_benefit;
                    acc.placement_cost += w * b.placement_cost;
                    acc.staleness_cost += w * b.staleness_cost;
                    acc.sharing_cost += w * b.sharing_cost;
                }
            }
            if mass > 0.0 {
                let inv = 1.0 / mass;
                acc.trading_income *= inv;
                acc.sharing_benefit *= inv;
                acc.placement_cost *= inv;
                acc.staleness_cost *= inv;
                acc.sharing_cost *= inv;
            }
            out.push(acc);
        }
        out
    }

    /// Accumulated (time-integrated) average utility over the horizon —
    /// the `𝒰` of Eq. (11) evaluated at the equilibrium.
    pub fn accumulated_utility(&self) -> f64 {
        let dt = self.dt();
        self.utility_series().iter().map(|b| b.total() * dt).sum()
    }

    /// Accumulated trading income over the horizon (Figs. 12, 14).
    pub fn accumulated_trading_income(&self) -> f64 {
        let dt = self.dt();
        self.utility_series()
            .iter()
            .map(|b| b.trading_income * dt)
            .sum()
    }

    /// Accumulated staleness cost over the horizon (Figs. 8, 13).
    pub fn accumulated_staleness_cost(&self) -> f64 {
        let dt = self.dt();
        self.utility_series()
            .iter()
            .map(|b| b.staleness_cost * dt)
            .sum()
    }

    /// A quantitative Nash check (Def. 3): roll a tagged EDP's
    /// (noise-free) caching state forward under the equilibrium policy and
    /// under every constant control on an `n_controls`-point grid, holding
    /// the equilibrium mean field fixed, and return the relative gap
    ///
    /// `max(0, max_c U(c) − U(x*)) / max(|U(x*)|, 1)`.
    ///
    /// At an exact equilibrium no deviation helps, so the gap is ≈ 0 up to
    /// discretization error; a large value flags a broken solve. This is
    /// the rollout counterpart of the fixed-point residual in
    /// [`ConvergenceReport`].
    pub fn deviation_gap(&self, n_controls: usize) -> f64 {
        assert!(n_controls >= 2, "need at least 2 controls to scan");
        let utility = Utility::new(self.params.clone());
        let h = self.params.upsilon_h;
        let q0 = self.params.lambda0_mean * self.params.q_size;
        let dt = self.dt();
        let rollout = |policy: &dyn Fn(usize, f64) -> f64| -> f64 {
            let mut q = q0;
            let mut total = 0.0;
            for n in 0..self.params.time_steps {
                let ctx = &self.contexts[n];
                let snap = &self.snapshots[n];
                let x = policy(n, q);
                total += utility.evaluate(ctx, snap, x, h, q) * dt;
                q = (q + self.params.drift_q(x, ctx.popularity, ctx.urgency_factor) * dt)
                    .clamp(0.0, self.params.q_size);
            }
            total
        };
        let star = rollout(&|n, q| self.policy[n].interpolate(h, q));
        let mut best_dev = f64::NEG_INFINITY;
        for i in 0..n_controls {
            let c = i as f64 / (n_controls - 1) as f64;
            best_dev = best_dev.max(rollout(&|_n, _q| c));
        }
        ((best_dev - star) / star.abs().max(1.0)).max(0.0)
    }

    /// Mean remaining space `∬ q λ(t_n) dS` at each step.
    pub fn mean_remaining_space(&self) -> Vec<f64> {
        self.density
            .iter()
            .map(|lam| {
                let mass = lam.integral();
                if mass > 0.0 {
                    lam.weighted_integral(|_h, q| q) / mass
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The fixed-point scheme used to solve the coupled HJB–FPK system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMethod {
    /// Damped best-response iteration (`x ← (1−ω)x + ω·BR(x)`), the
    /// literal reading of Alg. 2 with the Thm. 2 contraction enforced by
    /// the relaxation weight. The default.
    #[default]
    PicardRelaxation,
    /// Fictitious play (Cardaliaguet–Hadikhanloo): the best response is
    /// computed against the *running average* of the past mean-field
    /// trajectories, `λ̄^ψ = (1 − 1/ψ)·λ̄^{ψ−1} + (1/ψ)·λ^ψ`. Converges
    /// under monotonicity assumptions without tuning a damping weight;
    /// its `1/ψ` averaging makes late iterations slow, which is why
    /// Picard is the default (see the `ablation_fictitious` bench).
    FictitiousPlay,
}

impl SolveMethod {
    /// The scheme's telemetry label.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveMethod::PicardRelaxation => "picard",
            SolveMethod::FictitiousPlay => "fictitious_play",
        }
    }
}

/// Reusable buffers and scratches for repeated solves: the full
/// trajectory vectors (policy, density, values, best response), the
/// snapshot vector and the HJB/FPK stepper scratches. Built once via
/// [`MfgSolver::workspace`] and fed to [`MfgSolver::solve_with_workspace`],
/// so back-to-back solves (timing sweeps, per-content solves) reuse every
/// allocation instead of re-growing the trajectories each call.
#[derive(Debug)]
pub struct SolveWorkspace {
    policy: Vec<Field2d>,
    density: Vec<Field2d>,
    values: Vec<Field2d>,
    br_policy: Vec<Field2d>,
    snapshots: Vec<MeanFieldSnapshot>,
    hjb_scratch: HjbScratch,
    fpk_scratch: FpkScratch,
    residuals: Vec<f64>,
    update_norms: Vec<f64>,
}

impl SolveWorkspace {
    /// The policy trajectory left by the last
    /// [`MfgSolver::solve_with_workspace`] call (`time_steps` fields).
    /// Exposed read-only so differential harnesses (`mfgcp-check`) can
    /// compare reused-workspace solves against fresh solves bit-for-bit.
    pub fn policy(&self) -> &[Field2d] {
        &self.policy
    }

    /// The density trajectory left by the last solve (`time_steps + 1`
    /// fields).
    pub fn density(&self) -> &[Field2d] {
        &self.density
    }

    /// The value-function trajectory left by the last solve
    /// (`time_steps + 1` fields).
    pub fn values(&self) -> &[Field2d] {
        &self.values
    }
}

/// MFG-CP solver implementing Alg. 2.
#[derive(Debug, Clone)]
pub struct MfgSolver {
    params: Params,
    hjb: HjbSolver,
    fpk: FpkSolver,
    estimator: MeanFieldEstimator,
    recorder: RecorderHandle,
}

impl MfgSolver {
    /// Create a solver after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn new(params: Params) -> Result<Self, CoreError> {
        params.validate()?;
        Ok(Self {
            hjb: HjbSolver::new(params.clone())?,
            fpk: FpkSolver::new(params.clone())?,
            estimator: MeanFieldEstimator::new(params.clone()),
            params,
            recorder: RecorderHandle::noop(),
        })
    }

    /// Attach a telemetry recorder: the Picard loop then emits a
    /// `solver.solve` span wrapping per-iteration `solver.hjb`/`solver.fpk`
    /// spans and `solver.iteration` events (undamped residual, applied
    /// update norm, mixing weight), and the recorder propagates into the
    /// HJB/FPK solvers and their steppers (mass drift, CFL margins,
    /// non-finite sentinels). Telemetry reads state only — solves are
    /// bit-identical with recording on or off.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.hjb.set_recorder(recorder.clone());
        self.fpk.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Builder-style [`MfgSolver::set_recorder`].
    #[must_use]
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The §V-A initial mean-field density (delegates to the FPK solver).
    pub fn initial_density(&self) -> Field2d {
        self.fpk.initial_density()
    }

    /// A reusable workspace for [`MfgSolver::solve_with_workspace`].
    pub fn workspace(&self) -> SolveWorkspace {
        SolveWorkspace {
            policy: Vec::new(),
            density: Vec::new(),
            values: Vec::new(),
            br_policy: Vec::new(),
            snapshots: Vec::new(),
            hjb_scratch: self.hjb.scratch(),
            fpk_scratch: self.fpk.scratch(),
            residuals: Vec::new(),
            update_norms: Vec::new(),
        }
    }

    /// Solve with the stationary workload context implied by the
    /// parameters (the common case for the single-content experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotConverged`] if the Picard iteration does not
    /// meet the tolerance within `max_iterations`; the partial equilibrium
    /// is discarded (call [`MfgSolver::solve_with`] and inspect the report
    /// for post-mortems).
    pub fn solve(&self) -> Result<Equilibrium, CoreError> {
        let ctx = ContentContext::from_params(&self.params);
        let contexts = vec![ctx; self.params.time_steps];
        let eq = self.solve_with(&contexts, None);
        if eq.report.converged {
            Ok(eq)
        } else {
            Err(CoreError::NotConverged {
                residual: eq.report.final_residual(),
                iterations: eq.report.iterations,
            })
        }
    }

    /// Solve with explicit per-step contexts and an optional custom
    /// initial density (defaults to the §V-A normal initial distribution).
    /// Always returns the last iterate — check `report.converged`.
    ///
    /// # Panics
    ///
    /// Panics if `contexts.len() != params.time_steps` or the initial
    /// density is on the wrong grid.
    pub fn solve_with(&self, contexts: &[ContentContext], initial: Option<Field2d>) -> Equilibrium {
        self.solve_with_method(contexts, initial, SolveMethod::PicardRelaxation)
    }

    /// [`MfgSolver::solve_with`] with an explicit fixed-point scheme.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as `solve_with`.
    pub fn solve_with_method(
        &self,
        contexts: &[ContentContext],
        initial: Option<Field2d>,
        method: SolveMethod,
    ) -> Equilibrium {
        let mut ws = self.workspace();
        let report = self.solve_with_workspace(contexts, initial.as_ref(), method, &mut ws);
        Equilibrium {
            params: self.params.clone(),
            contexts: contexts.to_vec(),
            policy: mem::take(&mut ws.policy),
            density: mem::take(&mut ws.density),
            values: mem::take(&mut ws.values),
            snapshots: mem::take(&mut ws.snapshots),
            report,
            utility_cache: OnceLock::new(),
        }
    }

    /// The Picard/fictitious-play loop itself, running entirely on the
    /// caller-owned [`SolveWorkspace`]: after the workspace's first use,
    /// repeated solves allocate nothing, which is what the Table II timing
    /// sweeps measure. Returns the convergence report; the equilibrium
    /// trajectories stay in the workspace (see [`MfgSolver::solve_with_method`]
    /// for the owned-`Equilibrium` wrapper).
    ///
    /// # Panics
    ///
    /// Panics if `contexts.len() != params.time_steps` or the initial
    /// density is on the wrong grid.
    pub fn solve_with_workspace(
        &self,
        contexts: &[ContentContext],
        initial: Option<&Field2d>,
        method: SolveMethod,
        ws: &mut SolveWorkspace,
    ) -> ConvergenceReport {
        let n_steps = self.params.time_steps;
        assert_eq!(contexts.len(), n_steps, "need one context per time step");
        let grid = self.fpk.grid();
        let owned_initial;
        let lambda0 = match initial {
            Some(f) => f,
            None => {
                owned_initial = self.fpk.initial_density();
                &owned_initial
            }
        };
        assert_eq!(lambda0.grid(), grid, "initial density grid mismatch");

        let solve_span = self.recorder.span_with(
            "solver.solve",
            &[
                ("method", method.as_str().into()),
                ("time_steps", n_steps.into()),
                ("grid_h", grid.x().len().into()),
                ("grid_q", grid.y().len().into()),
            ],
        );

        // Initial guesses: density frozen at λ(0), zero policy — exactly
        // the cold-start state, regardless of what a reused workspace held.
        ws.density
            .resize_with(n_steps + 1, || Field2d::zeros(grid.clone()));
        for f in ws.density.iter_mut() {
            assert_eq!(f.grid(), grid, "reused density buffer grid mismatch");
            f.values_mut().copy_from_slice(lambda0.values());
        }
        ws.policy
            .resize_with(n_steps, || Field2d::zeros(grid.clone()));
        for f in ws.policy.iter_mut() {
            assert_eq!(f.grid(), grid, "reused policy buffer grid mismatch");
            f.values_mut().fill(0.0);
        }
        ws.residuals.clear();
        ws.update_norms.clear();
        let mut converged = false;
        let mut iterations = 0;

        for psi in 0..self.params.max_iterations {
            iterations += 1;
            // (line 9) Mean-field estimates along the current trajectory.
            ws.snapshots.clear();
            ws.snapshots.extend(
                (0..n_steps).map(|n| self.estimator.snapshot(&ws.density[n], &ws.policy[n])),
            );
            // (lines 4-5) Backward HJB → candidate best response, written
            // into buffers reused across iterations.
            let hjb_span = self.recorder.span("solver.hjb");
            self.hjb.solve_into(
                contexts,
                &ws.snapshots,
                &mut ws.values,
                &mut ws.br_policy,
                &mut ws.hjb_scratch,
            );
            hjb_span.close(&[]);
            // Mix the best response into the iterate: Picard uses a fixed
            // relaxation weight ω on the policy; fictitious play averages
            // with the 1/(ψ+1) schedule.
            let omega = match method {
                SolveMethod::PicardRelaxation => self.params.relaxation,
                SolveMethod::FictitiousPlay => 1.0 / (psi as f64 + 1.0),
            };
            let mut residual = 0.0_f64;
            let mut update_norm = 0.0_f64;
            for (pol, new) in ws.policy.iter_mut().zip(&ws.br_policy) {
                for (d, x_new) in pol.values_mut().iter_mut().zip(new.values()) {
                    let relaxed = (1.0 - omega) * *d + omega * x_new;
                    residual = residual.max((x_new - *d).abs());
                    update_norm = update_norm.max((relaxed - *d).abs());
                    *d = relaxed;
                }
            }
            ws.residuals.push(residual);
            ws.update_norms.push(update_norm);
            // (line 8) Forward FPK under the mixed policy.
            let fpk_span = self.recorder.span("solver.fpk");
            self.fpk.solve_into(
                lambda0,
                contexts,
                &ws.policy,
                &mut ws.density,
                &mut ws.fpk_scratch,
            );
            fpk_span.close(&[]);
            self.recorder.event(
                "solver.iteration",
                &[
                    ("psi", psi.into()),
                    ("residual", residual.into()),
                    ("update_norm", update_norm.into()),
                    ("omega", omega.into()),
                ],
            );
            // (line 6) Stop on the undamped best-response gap. The applied
            // update ω·|BR(x) − x| shrinks with the damping weight even far
            // from equilibrium — under fictitious play ω = 1/(ψ+1) → 0 it
            // decays unconditionally — so gating on it reports spurious
            // convergence.
            if residual < self.params.tolerance {
                converged = true;
                break;
            }
        }

        // Final consistent snapshots for the returned equilibrium.
        ws.snapshots.clear();
        ws.snapshots
            .extend((0..n_steps).map(|n| self.estimator.snapshot(&ws.density[n], &ws.policy[n])));

        let report = ConvergenceReport {
            converged,
            iterations,
            residuals: ws.residuals.clone(),
            update_norms: ws.update_norms.clone(),
        };
        solve_span.close(&[
            ("converged", converged.into()),
            ("iterations", iterations.into()),
            ("final_residual", report.final_residual().into()),
        ]);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> Params {
        Params {
            time_steps: 16,
            grid_h: 10,
            grid_q: 36,
            max_iterations: 60,
            ..Params::default()
        }
    }

    #[test]
    fn default_game_converges() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        assert!(eq.report.converged);
        assert!(eq.report.iterations < 60);
        // Residuals should broadly decay (contraction).
        let c = eq.report.contraction_factor().unwrap();
        assert!(c < 1.0, "contraction factor {c}");
    }

    #[test]
    fn equilibrium_policy_and_density_are_valid() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        for p in &eq.policy {
            assert!(p.values().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        for lam in &eq.density {
            assert!((lam.integral() - 1.0).abs() < 1e-6);
            assert!(lam.min() >= 0.0);
        }
    }

    #[test]
    fn price_stays_in_the_supply_band() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        for &p in &eq.price_series() {
            // p ∈ [p̂ − η₁·Q_k, p̂] by Eq. (17) with x ∈ [0, 1].
            assert!((4.0 - 1e-9..=5.0 + 1e-9).contains(&p), "price {p}");
        }
    }

    #[test]
    fn utility_series_is_income_dominated_and_finite() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let series = eq.utility_series();
        assert_eq!(series.len(), 16);
        for b in series {
            assert!(b.total().is_finite());
            assert!(b.trading_income > 0.0);
        }
        assert!(eq.accumulated_utility() > 0.0);
        assert!(eq.accumulated_trading_income() > eq.accumulated_staleness_cost());
    }

    #[test]
    fn policy_lookup_interpolates() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let x = eq.policy_at(0.5, 5.0e-5, 0.7);
        assert!((0.0..=1.0).contains(&x));
        // Out-of-range queries clamp instead of panicking.
        let x = eq.policy_at(99.0, 1.0, 2.0);
        assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn implicit_steppers_reach_the_same_equilibrium() {
        let explicit = MfgSolver::new(fast_params()).unwrap().solve().unwrap();
        let implicit = MfgSolver::new(Params {
            implicit_steppers: true,
            ..fast_params()
        })
        .unwrap()
        .solve()
        .unwrap();
        let a = explicit.mean_remaining_space();
        let b = implicit.mean_remaining_space();
        for (n, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() < 0.05,
                "step {n}: explicit {x} vs implicit {y}"
            );
        }
        for &p in &implicit.price_series() {
            assert!((0.0..=5.0).contains(&p));
        }
    }

    #[test]
    fn fictitious_play_reaches_the_same_equilibrium() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let ctx = ContentContext::from_params(solver.params());
        let contexts = vec![ctx; solver.params().time_steps];
        let picard = solver.solve_with(&contexts, None);
        let fp = solver.solve_with_method(&contexts, None, SolveMethod::FictitiousPlay);
        assert!(picard.report.converged);
        // FP's 1/ψ schedule slows late iterations; accept either outright
        // convergence or a small final residual.
        assert!(
            fp.report.final_residual() < 0.05,
            "FP residual {}",
            fp.report.final_residual()
        );
        // Both schemes should land on the same mean-field trajectory.
        let a = picard.mean_remaining_space();
        let b = fp.mean_remaining_space();
        for (n, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 0.05, "step {n}: picard {x} vs fp {y}");
        }
    }

    #[test]
    fn solve_is_bit_identical_across_worker_thread_counts() {
        let reference = MfgSolver::new(Params {
            worker_threads: 1,
            ..fast_params()
        })
        .unwrap()
        .solve()
        .unwrap();
        for threads in [2, 8] {
            let eq = MfgSolver::new(Params {
                worker_threads: threads,
                ..fast_params()
            })
            .unwrap()
            .solve()
            .unwrap();
            assert_eq!(eq.report.iterations, reference.report.iterations);
            for (n, (a, b)) in eq.policy.iter().zip(&reference.policy).enumerate() {
                assert_eq!(a.values(), b.values(), "policy step {n}, {threads} threads");
            }
            for (n, (a, b)) in eq.density.iter().zip(&reference.density).enumerate() {
                assert_eq!(
                    a.values(),
                    b.values(),
                    "density step {n}, {threads} threads"
                );
            }
            for (n, (a, b)) in eq.values.iter().zip(&reference.values).enumerate() {
                assert_eq!(a.values(), b.values(), "values step {n}, {threads} threads");
            }
        }
    }

    /// The batched SoA kernels and the worker-thread fan-out are
    /// independent axes, and neither may perturb results: every
    /// (threads, batched) combination must land on the same bits.
    #[test]
    fn solve_is_bit_identical_across_threads_and_kernel_paths() {
        let reference = MfgSolver::new(Params {
            worker_threads: 1,
            batched_kernels: false,
            ..fast_params()
        })
        .unwrap()
        .solve()
        .unwrap();
        for threads in [1, 8] {
            for batched in [false, true] {
                let eq = MfgSolver::new(Params {
                    worker_threads: threads,
                    batched_kernels: batched,
                    ..fast_params()
                })
                .unwrap()
                .solve()
                .unwrap();
                let tag = format!("{threads} threads, batched = {batched}");
                assert_eq!(eq.report.iterations, reference.report.iterations, "{tag}");
                for (n, (a, b)) in eq.density.iter().zip(&reference.density).enumerate() {
                    assert_eq!(a.values(), b.values(), "density step {n}, {tag}");
                }
                for (n, (a, b)) in eq.values.iter().zip(&reference.values).enumerate() {
                    assert_eq!(a.values(), b.values(), "values step {n}, {tag}");
                }
                for (n, (a, b)) in eq.policy.iter().zip(&reference.policy).enumerate() {
                    assert_eq!(a.values(), b.values(), "policy step {n}, {tag}");
                }
            }
        }
    }

    #[test]
    fn utility_series_cache_matches_recomputation_and_survives_clone() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let first = eq.utility_series().to_vec();
        // Second call must hand back the same cached slice.
        assert_eq!(eq.utility_series().as_ptr(), eq.utility_series().as_ptr());
        let cloned = eq.clone();
        let second = cloned.utility_series();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(second) {
            assert_eq!(a.total(), b.total());
            assert_eq!(a.trading_income, b.trading_income);
        }
    }

    #[test]
    fn report_tracks_damped_and_undamped_series_separately() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let r = &eq.report;
        assert_eq!(r.residuals.len(), r.update_norms.len());
        let omega = eq.params.relaxation;
        for (psi, (gap, applied)) in r.residuals.iter().zip(&r.update_norms).enumerate() {
            // Applied update is exactly ω times the undamped gap under
            // Picard relaxation.
            assert!(
                (applied - omega * gap).abs() < 1e-12,
                "iteration {psi}: gap {gap}, applied {applied}"
            );
        }
        // The gate is on the undamped gap.
        assert!(r.final_residual() < eq.params.tolerance);
    }

    #[test]
    fn recording_telemetry_does_not_perturb_the_solve() {
        use mfgcp_obs::{Kind, MemorySink, Value};
        use std::sync::Arc;

        let reference = MfgSolver::new(fast_params()).unwrap().solve().unwrap();
        let sink = Arc::new(MemorySink::new());
        let solver = MfgSolver::new(fast_params())
            .unwrap()
            .with_recorder(mfgcp_obs::RecorderHandle::new(sink.clone()));
        let eq = solver.solve().unwrap();

        // Bit-identical trajectories: telemetry reads, never perturbs.
        assert_eq!(eq.report.iterations, reference.report.iterations);
        for (a, b) in eq.policy.iter().zip(&reference.policy) {
            assert_eq!(a.values(), b.values());
        }
        for (a, b) in eq.density.iter().zip(&reference.density) {
            assert_eq!(a.values(), b.values());
        }
        for (a, b) in eq.values.iter().zip(&reference.values) {
            assert_eq!(a.values(), b.values());
        }

        // The emitted stream is schema-valid and structurally sane.
        let events = sink.events();
        assert!(!events.is_empty());
        let text = events
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n");
        mfgcp_obs::schema::validate_str(&text).unwrap();

        // One solver.solve span; its close reports the same convergence
        // data as the returned report.
        let close = events
            .iter()
            .find(|e| e.kind == Kind::SpanClose && e.name == "solver.solve")
            .expect("solver.solve span close");
        assert_eq!(close.field("converged"), Some(&Value::Bool(true)));
        assert_eq!(
            close.field("iterations"),
            Some(&Value::U64(eq.report.iterations as u64))
        );
        assert_eq!(
            close.field("final_residual"),
            Some(&Value::F64(eq.report.final_residual()))
        );
        // One iteration event and one hjb/fpk span pair per iteration.
        let iter_events = events
            .iter()
            .filter(|e| e.name == "solver.iteration")
            .count();
        assert_eq!(iter_events, eq.report.iterations);
        let hjb_opens = events
            .iter()
            .filter(|e| e.kind == Kind::SpanOpen && e.name == "solver.hjb")
            .count();
        assert_eq!(hjb_opens, eq.report.iterations);
        // Mass-drift gauges flow up from the FPK solver.
        assert!(events.iter().any(|e| e.name == "pde.fpk.mass_drift"));
        assert!(events.iter().any(|e| e.name == "pde.fpk.cfl_margin"));
    }

    #[test]
    fn workspace_reuse_reproduces_the_fresh_solve() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let ctx = ContentContext::from_params(solver.params());
        let contexts = vec![ctx; solver.params().time_steps];
        let fresh = solver.solve_with(&contexts, None);
        let initial = solver.initial_density();

        let mut ws = solver.workspace();
        // Solve twice into the same workspace: the second run must be
        // unaffected by the first one's leftover state.
        for _ in 0..2 {
            let report = solver.solve_with_workspace(
                &contexts,
                Some(&initial),
                SolveMethod::PicardRelaxation,
                &mut ws,
            );
            assert_eq!(report.iterations, fresh.report.iterations);
            assert_eq!(report.residuals, fresh.report.residuals);
            assert_eq!(report.update_norms, fresh.report.update_norms);
        }
    }

    #[test]
    fn from_parts_roundtrips_and_rejects_mismatches() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let rebuilt = Equilibrium::from_parts(
            eq.params.clone(),
            eq.contexts.clone(),
            eq.policy.clone(),
            eq.density.clone(),
            eq.values.clone(),
            eq.snapshots.clone(),
            eq.report.clone(),
        )
        .unwrap();
        // Bit-identical trajectories and identical lookups.
        for (a, b) in rebuilt.policy.iter().zip(&eq.policy) {
            assert_eq!(a.values(), b.values());
        }
        let (t, h, q) = (0.33, 5.0e-5, 0.61);
        assert_eq!(
            rebuilt.policy_at(t, h, q).to_bits(),
            eq.policy_at(t, h, q).to_bits()
        );
        assert_eq!(rebuilt.price_at(t).to_bits(), eq.price_at(t).to_bits());
        assert_eq!(rebuilt.q_bar_at(t).to_bits(), eq.q_bar_at(t).to_bits());

        // Wrong trajectory length.
        let mut short_policy = eq.policy.clone();
        short_policy.pop();
        let err = Equilibrium::from_parts(
            eq.params.clone(),
            eq.contexts.clone(),
            short_policy,
            eq.density.clone(),
            eq.values.clone(),
            eq.snapshots.clone(),
            eq.report.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InconsistentParts { .. }), "{err}");

        // Wrong grid.
        let other_grid = Params {
            grid_q: eq.params.grid_q + 4,
            ..eq.params.clone()
        }
        .grid();
        let mut bad_density = eq.density.clone();
        bad_density[0] = Field2d::zeros(other_grid);
        let err = Equilibrium::from_parts(
            eq.params.clone(),
            eq.contexts.clone(),
            eq.policy.clone(),
            bad_density,
            eq.values.clone(),
            eq.snapshots.clone(),
            eq.report.clone(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("grid"), "{err}");
    }

    #[test]
    fn price_and_q_bar_lookups_select_the_step() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let dt = eq.dt();
        assert_eq!(eq.price_at(0.0), eq.snapshots[0].price);
        assert_eq!(eq.price_at(0.5 * dt), eq.snapshots[0].price);
        assert_eq!(eq.price_at(1.5 * dt), eq.snapshots[1].price);
        // Clamped past the horizon.
        assert_eq!(eq.price_at(99.0), eq.snapshots.last().unwrap().price);
        assert_eq!(eq.q_bar_at(99.0), eq.snapshots.last().unwrap().q_bar);
    }

    #[test]
    fn deviation_gap_is_small_at_equilibrium() {
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let gap = eq.deviation_gap(11);
        // Constant controls cannot beat the equilibrium policy by more
        // than discretization-level slack.
        assert!(gap < 0.15, "deviation gap {gap}");
    }

    #[test]
    fn unilateral_deviation_does_not_improve_utility() {
        // The Nash property (Def. 3) along the q-drift: replacing the
        // equilibrium control with constant controls must not beat it.
        // (Coarse check: compare accumulated mean utilities with the
        // *equilibrium* mean field held fixed.)
        let solver = MfgSolver::new(fast_params()).unwrap();
        let eq = solver.solve().unwrap();
        let utility = Utility::new(eq.params.clone());
        let grid = eq.policy[0].grid().clone();
        let dt = eq.dt();

        // A tagged EDP following some constant control x̄, starting at the
        // population mean; deterministic drift (noise-free evaluation).
        let rollout = |policy: &dyn Fn(usize, f64, f64) -> f64| -> f64 {
            let mut q: f64 = 0.7;
            let h = eq.params.upsilon_h;
            let mut total = 0.0;
            for n in 0..eq.params.time_steps {
                let ctx = &eq.contexts[n];
                let snap = &eq.snapshots[n];
                let x = policy(n, h, q);
                total += utility.evaluate(ctx, snap, x, h, q) * dt;
                q = (q + eq.params.drift_q(x, ctx.popularity, ctx.urgency_factor) * dt)
                    .clamp(0.0, eq.params.q_size);
            }
            total
        };

        let star = rollout(&|n, h, q| eq.policy[n].interpolate(h, q));
        for dev in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let alt = rollout(&|_n, _h, _q| dev);
            assert!(
                star >= alt - 0.15 * star.abs().max(1.0),
                "constant deviation x = {dev} beats equilibrium: {alt} > {star}"
            );
        }
        let _ = grid;
    }
}
