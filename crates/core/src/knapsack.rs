//! The capacity-constrained extension of §IV-C's Remark:
//!
//! > "MFG-CP can be easily extended to the scenario whereby the caching
//! > capacity of each EDP is less than a fixed threshold. In fact, this
//! > further optimization can be seen as a knapsack problem, in which the
//! > weight and value of each content are considered. Based on the solution
//! > of MFG-CP, the final caching strategy will be further derived by
//! > solving the knapsack problem."
//!
//! Per content `k`, the MFG solution supplies the *value* (the equilibrium
//! accumulated utility `𝒰_k`) and the *weight* (the storage the equilibrium
//! strategy actually occupies, `Q_k − q̄_k(T)`). Subject to a total capacity
//! `C`, the EDP keeps the best bundle. Both classic variants are provided:
//!
//! * [`solve_fractional`] — greedy by value density; optimal for the
//!   fractional relaxation, which matches MFG-CP's continuous caching rates
//!   (`x ∈ [0, 1]` already means partial caching);
//! * [`solve_01`] — exact 0/1 dynamic program on scaled weights, for
//!   deployments where contents must be kept whole.

use crate::mfg::Equilibrium;

/// One content's (value, weight) pair for the capacity allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Content index this item describes.
    pub content: usize,
    /// Value: equilibrium accumulated utility of caching this content.
    pub value: f64,
    /// Weight: storage units the equilibrium strategy occupies.
    pub weight: f64,
}

impl KnapsackItem {
    /// Extract the `(value, weight)` pair from a solved equilibrium:
    /// value = `𝒰_k` (Eq. (11) at the equilibrium), weight = the average
    /// cached amount at the end of the horizon, `Q_k − q̄_k(T)`.
    pub fn from_equilibrium(content: usize, eq: &Equilibrium) -> Self {
        let means = eq.mean_remaining_space();
        let final_mean = *means.last().expect("non-empty trajectory");
        Self {
            content,
            value: eq.accumulated_utility(),
            weight: (eq.params.q_size - final_mean).max(0.0),
        }
    }
}

/// A capacity allocation: the kept fraction of each input item, in input
/// order, plus the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePlan {
    /// `fractions[i] ∈ [0, 1]` of item `i` kept.
    pub fractions: Vec<f64>,
    /// Total value captured.
    pub total_value: f64,
    /// Total weight used (≤ capacity).
    pub total_weight: f64,
}

impl CachePlan {
    /// Contents kept at a strictly positive fraction, in input order.
    pub fn kept_contents(&self, items: &[KnapsackItem]) -> Vec<usize> {
        items
            .iter()
            .zip(&self.fractions)
            .filter(|(_, &f)| f > 0.0)
            .map(|(it, _)| it.content)
            .collect()
    }
}

/// Fractional knapsack: greedily fill by value density `value/weight`.
/// Optimal for the fractional relaxation; items with non-positive value are
/// never cached, zero-weight positive-value items are always kept whole.
///
/// # Panics
///
/// Panics if `capacity` is negative or any weight is negative/non-finite.
pub fn solve_fractional(items: &[KnapsackItem], capacity: f64) -> CachePlan {
    assert!(
        capacity >= 0.0 && capacity.is_finite(),
        "capacity must be >= 0"
    );
    for it in items {
        assert!(
            it.weight >= 0.0 && it.weight.is_finite() && it.value.is_finite(),
            "invalid item {it:?}"
        );
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Highest density first; zero-weight items have infinite density.
    order.sort_by(|&a, &b| {
        let da = density(&items[a]);
        let db = density(&items[b]);
        db.partial_cmp(&da).expect("densities are comparable")
    });
    let mut fractions = vec![0.0; items.len()];
    let mut remaining = capacity;
    let mut total_value = 0.0;
    for idx in order {
        let it = &items[idx];
        if it.value <= 0.0 {
            continue; // caching it would lose money regardless of space
        }
        if it.weight == 0.0 {
            fractions[idx] = 1.0;
            total_value += it.value;
            continue;
        }
        if remaining <= 0.0 {
            break;
        }
        let f = (remaining / it.weight).min(1.0);
        fractions[idx] = f;
        total_value += f * it.value;
        remaining -= f * it.weight;
    }
    let total_weight = items
        .iter()
        .zip(&fractions)
        .map(|(it, f)| it.weight * f)
        .sum();
    CachePlan {
        fractions,
        total_value,
        total_weight,
    }
}

fn density(it: &KnapsackItem) -> f64 {
    if it.weight == 0.0 {
        if it.value > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        it.value / it.weight
    }
}

/// Exact 0/1 knapsack by dynamic programming on weights scaled to
/// `resolution` integer buckets (weights are continuous storage units).
/// `O(n · resolution)` time and space.
///
/// # Panics
///
/// Panics if `resolution == 0`, `capacity < 0`, or items are invalid.
pub fn solve_01(items: &[KnapsackItem], capacity: f64, resolution: usize) -> CachePlan {
    assert!(resolution > 0, "resolution must be > 0");
    assert!(
        capacity >= 0.0 && capacity.is_finite(),
        "capacity must be >= 0"
    );
    for it in items {
        assert!(
            it.weight >= 0.0 && it.weight.is_finite() && it.value.is_finite(),
            "invalid item {it:?}"
        );
    }
    let cap = resolution;
    // Weights in buckets, rounded up so the plan never exceeds capacity.
    // With zero capacity, only weightless items can ever fit.
    let w: Vec<usize> = items
        .iter()
        .map(|it| {
            if it.weight == 0.0 {
                0
            } else if capacity == 0.0 {
                cap + 1 // never fits
            } else {
                (it.weight * resolution as f64 / capacity).ceil() as usize
            }
        })
        .collect();
    // best[c] = (value, chosen-set bitmask via parent tracking)
    let n = items.len();
    let mut best = vec![0.0_f64; cap + 1];
    let mut take = vec![false; n * (cap + 1)];
    for (i, it) in items.iter().enumerate() {
        if it.value <= 0.0 {
            continue;
        }
        // 0/1 DP: iterate capacity downwards.
        for c in (0..=cap).rev() {
            if w[i] <= c {
                let cand = best[c - w[i]] + it.value;
                if cand > best[c] {
                    best[c] = cand;
                    take[i * (cap + 1) + c] = true;
                }
            }
        }
    }
    // Recover the chosen set.
    let mut fractions = vec![0.0; n];
    let mut c = cap;
    for i in (0..n).rev() {
        if take[i * (cap + 1) + c] {
            fractions[i] = 1.0;
            c -= w[i];
        }
    }
    let total_value = items
        .iter()
        .zip(&fractions)
        .map(|(it, f)| it.value * f)
        .sum();
    let total_weight = items
        .iter()
        .zip(&fractions)
        .map(|(it, f)| it.weight * f)
        .sum();
    CachePlan {
        fractions,
        total_value,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(content: usize, value: f64, weight: f64) -> KnapsackItem {
        KnapsackItem {
            content,
            value,
            weight,
        }
    }

    #[test]
    fn fractional_fills_by_density() {
        // Densities: 10, 5, 1. Capacity 1.5 → all of item 0, half of item 1.
        let items = vec![item(0, 10.0, 1.0), item(1, 5.0, 1.0), item(2, 1.0, 1.0)];
        let plan = solve_fractional(&items, 1.5);
        assert_eq!(plan.fractions, vec![1.0, 0.5, 0.0]);
        assert!((plan.total_value - 12.5).abs() < 1e-12);
        assert!((plan.total_weight - 1.5).abs() < 1e-12);
        assert_eq!(plan.kept_contents(&items), vec![0, 1]);
    }

    #[test]
    fn fractional_skips_negative_values() {
        let items = vec![item(0, -5.0, 0.1), item(1, 2.0, 1.0)];
        let plan = solve_fractional(&items, 10.0);
        assert_eq!(plan.fractions, vec![0.0, 1.0]);
    }

    #[test]
    fn fractional_keeps_zero_weight_items_free() {
        let items = vec![item(0, 3.0, 0.0), item(1, 2.0, 1.0)];
        let plan = solve_fractional(&items, 0.0);
        assert_eq!(plan.fractions, vec![1.0, 0.0]);
        assert_eq!(plan.total_weight, 0.0);
        assert_eq!(plan.total_value, 3.0);
    }

    #[test]
    fn zero_one_beats_greedy_on_the_classic_counterexample() {
        // Greedy-by-density takes the small dense item and wastes space;
        // the DP takes the two big ones.
        let items = vec![
            item(0, 60.0, 10.0), // density 6
            item(1, 100.0, 20.0),
            item(2, 120.0, 30.0),
        ];
        let plan = solve_01(&items, 50.0, 1000);
        assert_eq!(plan.fractions, vec![0.0, 1.0, 1.0]);
        assert!((plan.total_value - 220.0).abs() < 1e-9);
        assert!(plan.total_weight <= 50.0 + 1e-9);
    }

    #[test]
    fn zero_one_respects_capacity_with_rounding() {
        let items = vec![item(0, 1.0, 0.34), item(1, 1.0, 0.34), item(2, 1.0, 0.34)];
        // Only two fit in capacity 0.7 (3 × 0.34 = 1.02 > 0.7).
        let plan = solve_01(&items, 0.7, 100);
        let kept: f64 = plan.fractions.iter().sum();
        assert_eq!(kept, 2.0);
        assert!(plan.total_weight <= 0.7 + 1e-9);
    }

    #[test]
    fn fractional_dominates_01_in_value() {
        // The fractional relaxation is an upper bound on the 0/1 optimum.
        let items = vec![
            item(0, 7.0, 0.4),
            item(1, 4.0, 0.3),
            item(2, 9.0, 0.8),
            item(3, 2.0, 0.15),
        ];
        for &cap in &[0.3, 0.6, 1.0, 2.0] {
            let frac = solve_fractional(&items, cap);
            let zo = solve_01(&items, cap, 2000);
            assert!(
                frac.total_value >= zo.total_value - 1e-9,
                "cap {cap}: fractional {} < 0/1 {}",
                frac.total_value,
                zo.total_value
            );
        }
    }

    #[test]
    fn zero_capacity_keeps_nothing_weighted() {
        let items = vec![item(0, 5.0, 1.0)];
        assert_eq!(solve_fractional(&items, 0.0).total_value, 0.0);
        assert_eq!(solve_01(&items, 0.0, 10).total_value, 0.0);
    }

    #[test]
    fn item_from_equilibrium_has_sane_fields() {
        let params = crate::Params {
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            ..crate::Params::default()
        };
        let eq = crate::MfgSolver::new(params).unwrap().solve().unwrap();
        let it = KnapsackItem::from_equilibrium(3, &eq);
        assert_eq!(it.content, 3);
        assert!(it.value > 0.0, "equilibrium utility should be positive");
        assert!((0.0..=1.0).contains(&it.weight), "weight {}", it.weight);
    }
}
