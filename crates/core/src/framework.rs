//! The per-epoch framework loop of Alg. 1.
//!
//! For each optimization epoch the EDP records the requests for every
//! content, computes popularity (Eq. (3)) and timeliness (Def. 2), filters
//! the content set `K'` to the contents actually worth caching (line 5),
//! runs the best-response learning scheme per content (line 9, Alg. 2),
//! and trades under the resulting policy (lines 11–14, executed by the
//! finite-population simulator in `mfgcp-sim`).
//!
//! `mfgcp-core` deliberately does not depend on the workload crate: epoch
//! inputs arrive as plain [`ContentContext`] schedules, so any request
//! source (synthetic, trace-driven, or the simulator's own bookkeeping)
//! can drive the framework.

use crate::knapsack::{solve_fractional, CachePlan, KnapsackItem};
use crate::mfg::{Equilibrium, MfgSolver};
use crate::params::{CoreError, Params};
use crate::utility::ContentContext;

/// Static configuration of the framework loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkConfig {
    /// Skip contents with fewer expected requests per epoch than this
    /// (the `Σ|I_k| > 0` filter of Alg. 1 line 5, made tolerance-friendly).
    pub min_requests: f64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self { min_requests: 1e-9 }
    }
}

/// The outcome of optimizing one content in one epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Which content this is (index into the epoch's context slice).
    pub content: usize,
    /// The mean-field equilibrium for this content.
    pub equilibrium: Equilibrium,
}

impl EpochOutcome {
    /// Accumulated average utility over the epoch.
    pub fn utility(&self) -> f64 {
        self.equilibrium.accumulated_utility()
    }

    /// Accumulated average trading income over the epoch.
    pub fn trading_income(&self) -> f64 {
        self.equilibrium.accumulated_trading_income()
    }
}

/// Alg. 1 driver: one [`MfgSolver`] invocation per cached content per epoch.
#[derive(Debug, Clone)]
pub struct Framework {
    solver: MfgSolver,
    config: FrameworkConfig,
}

impl Framework {
    /// Create a framework with the given game parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn new(params: Params, config: FrameworkConfig) -> Result<Self, CoreError> {
        Ok(Self {
            solver: MfgSolver::new(params)?,
            config,
        })
    }

    /// The underlying solver.
    pub fn solver(&self) -> &MfgSolver {
        &self.solver
    }

    /// Run one epoch under a total caching-capacity budget (the knapsack
    /// extension of §IV-C's Remark): solve every demanded content's MFG as
    /// in [`Framework::run_epoch`], then derive the final plan by solving
    /// the fractional knapsack over the per-content `(utility, storage)`
    /// pairs. Returns the raw outcomes and the capacity plan (fractions
    /// scale the equilibrium caching rates).
    pub fn run_epoch_with_capacity(
        &self,
        contexts: &[ContentContext],
        capacity: f64,
    ) -> (Vec<Option<EpochOutcome>>, CachePlan) {
        let outcomes = self.run_epoch(contexts);
        let items: Vec<KnapsackItem> = outcomes
            .iter()
            .enumerate()
            .map(|(k, o)| match o {
                Some(out) => KnapsackItem::from_equilibrium(k, &out.equilibrium),
                None => KnapsackItem {
                    content: k,
                    value: 0.0,
                    weight: 0.0,
                },
            })
            .collect();
        let plan = solve_fractional(&items, capacity);
        (outcomes, plan)
    }

    /// Run a sequence of optimization epochs (the `σ ≤ σ_max` outer loop of
    /// Alg. 1), *chaining the mean field across epochs*: content `k`'s
    /// epoch-`σ+1` solve starts from its epoch-`σ` final density instead of
    /// resetting to `λ(0)`. This is the rolling-horizon reading of the
    /// paper's per-epoch optimization; combined with a positive
    /// `terminal_value_weight` it removes both end-of-epoch artifacts.
    ///
    /// `epochs[σ][k]` is the context of content `k` in epoch `σ`; every
    /// epoch must cover the same contents.
    ///
    /// # Panics
    ///
    /// Panics if epochs have inconsistent content counts.
    pub fn run_epochs(&self, epochs: &[Vec<ContentContext>]) -> Vec<Vec<Option<EpochOutcome>>> {
        let Some(first) = epochs.first() else {
            return Vec::new();
        };
        let k_contents = first.len();
        let mut carried: Vec<Option<mfgcp_pde::Field2d>> = vec![None; k_contents];
        let mut all = Vec::with_capacity(epochs.len());
        for contexts in epochs {
            assert_eq!(
                contexts.len(),
                k_contents,
                "content count changed between epochs"
            );
            let outcomes: Vec<Option<EpochOutcome>> = contexts
                .iter()
                .enumerate()
                .map(|(k, ctx)| {
                    if ctx.requests < self.config.min_requests {
                        return None;
                    }
                    let per_step = vec![*ctx; self.solver.params().time_steps];
                    let equilibrium = self.solver.solve_with(&per_step, carried[k].clone());
                    Some(EpochOutcome {
                        content: k,
                        equilibrium,
                    })
                })
                .collect();
            for (k, o) in outcomes.iter().enumerate() {
                if let Some(out) = o {
                    carried[k] = Some(out.equilibrium.density.last().expect("non-empty").clone());
                }
            }
            all.push(outcomes);
        }
        all
    }

    /// Run one optimization epoch.
    ///
    /// `contexts[k]` is the workload context of content `k` for this epoch
    /// (held constant within the epoch, matching the paper's "the change in
    /// requesters' demands occurs at a relatively slow rate compared to the
    /// time scale of the optimization epoch"). Returns `None` for contents
    /// filtered out of `K'` (no demand).
    ///
    /// The complexity is `O(K'·ψ_th)` — independent of `M`, the claim of
    /// the Remark in §IV-C and of Table II.
    pub fn run_epoch(&self, contexts: &[ContentContext]) -> Vec<Option<EpochOutcome>> {
        contexts
            .iter()
            .enumerate()
            .map(|(k, ctx)| {
                if ctx.requests < self.config.min_requests {
                    return None;
                }
                let per_step = vec![*ctx; self.solver.params().time_steps];
                let equilibrium = self.solver.solve_with(&per_step, None);
                Some(EpochOutcome {
                    content: k,
                    equilibrium,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        Params {
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            max_iterations: 40,
            ..Params::default()
        }
    }

    #[test]
    fn epoch_skips_undemanded_contents() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        let contexts = vec![
            ContentContext {
                requests: 10.0,
                popularity: 0.5,
                urgency_factor: 0.1,
            },
            ContentContext {
                requests: 0.0,
                popularity: 0.1,
                urgency_factor: 0.1,
            },
        ];
        let outcomes = fw.run_epoch(&contexts);
        assert!(outcomes[0].is_some());
        assert!(outcomes[1].is_none());
    }

    #[test]
    fn demanded_contents_earn_positive_utility() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        let contexts = vec![ContentContext {
            requests: 10.0,
            popularity: 0.4,
            urgency_factor: 0.1,
        }];
        let outcomes = fw.run_epoch(&contexts);
        let out = outcomes[0].as_ref().unwrap();
        assert_eq!(out.content, 0);
        assert!(out.utility() > 0.0);
        assert!(out.trading_income() > 0.0);
    }

    #[test]
    fn capacity_budget_prunes_the_plan() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        let contexts = vec![
            ContentContext {
                requests: 20.0,
                popularity: 0.6,
                urgency_factor: 0.1,
            },
            ContentContext {
                requests: 10.0,
                popularity: 0.3,
                urgency_factor: 0.1,
            },
            ContentContext {
                requests: 2.0,
                popularity: 0.05,
                urgency_factor: 0.1,
            },
        ];
        let (outcomes, generous) = fw.run_epoch_with_capacity(&contexts, 10.0);
        assert_eq!(outcomes.len(), 3);
        // A generous budget keeps everything with positive value.
        let kept: f64 = generous.fractions.iter().sum();
        assert!(kept >= 2.0, "fractions {:?}", generous.fractions);
        // A starved budget keeps strictly less total weight.
        let (_, starved) = fw.run_epoch_with_capacity(&contexts, 0.05);
        assert!(starved.total_weight <= 0.05 + 1e-9);
        assert!(starved.total_value <= generous.total_value);
    }

    #[test]
    fn rolling_epochs_chain_the_density() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        let ctx = ContentContext {
            requests: 10.0,
            popularity: 0.4,
            urgency_factor: 0.05,
        };
        let epochs = vec![vec![ctx], vec![ctx], vec![ctx]];
        let all = fw.run_epochs(&epochs);
        assert_eq!(all.len(), 3);
        // Epoch 1 starts where epoch 0 ended (the chained mean field),
        // not at the λ(0) prior.
        let end_of_0 = all[0][0]
            .as_ref()
            .unwrap()
            .equilibrium
            .mean_remaining_space()
            .last()
            .copied()
            .unwrap();
        let start_of_1 = all[1][0]
            .as_ref()
            .unwrap()
            .equilibrium
            .mean_remaining_space()[0];
        assert!(
            (end_of_0 - start_of_1).abs() < 1e-9,
            "epoch 1 start {start_of_1} vs epoch 0 end {end_of_0}"
        );
        // And differs from the fresh-prior start of epoch 0.
        let start_of_0 = all[0][0]
            .as_ref()
            .unwrap()
            .equilibrium
            .mean_remaining_space()[0];
        assert!(
            (start_of_1 - start_of_0).abs() > 1e-3,
            "chaining had no effect"
        );
    }

    #[test]
    fn rolling_epochs_handle_empty_input() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        assert!(fw.run_epochs(&[]).is_empty());
    }

    #[test]
    fn more_popular_content_earns_more() {
        let fw = Framework::new(tiny_params(), FrameworkConfig::default()).unwrap();
        let contexts = vec![
            ContentContext {
                requests: 20.0,
                popularity: 0.6,
                urgency_factor: 0.1,
            },
            ContentContext {
                requests: 5.0,
                popularity: 0.1,
                urgency_factor: 0.1,
            },
        ];
        let outcomes = fw.run_epoch(&contexts);
        let hot = outcomes[0].as_ref().unwrap().utility();
        let cold = outcomes[1].as_ref().unwrap().utility();
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }
}
