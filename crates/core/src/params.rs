//! Model parameters with the paper's §V-A defaults, expressed in the
//! normalized unit system described at the crate root.

use mfgcp_pde::{Axis, Grid2d};

/// Errors from core construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter failed validation.
    BadParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the constraint that failed.
        message: String,
    },
    /// The fixed-point iteration of Alg. 2 did not converge within
    /// `max_iterations`.
    NotConverged {
        /// Final sup-norm policy residual.
        residual: f64,
        /// Iterations performed.
        iterations: usize,
    },
    /// Pieces handed to [`crate::Equilibrium::from_parts`] (or
    /// [`Params::from_canonical_bytes`]) do not fit together — wrong
    /// trajectory lengths, mismatched grids, or a malformed encoding.
    InconsistentParts {
        /// Description of the inconsistency.
        message: String,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::BadParam { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::NotConverged { residual, iterations } => write!(
                f,
                "best-response iteration did not converge: residual {residual:.3e} after {iterations} iterations"
            ),
            CoreError::InconsistentParts { message } => {
                write!(f, "inconsistent equilibrium parts: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// All model parameters.
///
/// Defaults implement the paper's §V-A settings under the crate's unit
/// conventions; every field is public so experiments can sweep freely.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    // ---- population / catalog ----
    /// Number of EDPs `M` (paper: 300). Only enters finite-population
    /// formulas (Eq. (5)) and the sharing-benefit estimate.
    pub num_edps: usize,
    /// Content size `Q_k` in content units (1.0 ≡ 100 MB).
    pub q_size: f64,
    /// Nominal request intensity `|I_k(t)|` — requests per EDP per epoch
    /// for the content being optimized.
    pub requests: f64,
    /// Content popularity `Π_k(t)` used in the caching drift (Eq. (4)).
    pub popularity: f64,
    /// Urgency factor `ξ^{L_k(t)}` used in the caching drift (Eq. (4)).
    pub urgency_factor: f64,

    // ---- caching dynamics (Eq. (4)) ----
    /// Drift weight `w₁` of the caching control (paper: 1).
    pub w1: f64,
    /// Drift weight `w₂` of the popularity-driven discard (paper: 1/20).
    pub w2: f64,
    /// Drift weight `w₃` of the urgency-driven retention (paper: 10).
    pub w3: f64,
    /// Caching-state noise `ϱ_q` in normalized storage units (paper: 0.1).
    pub varrho_q: f64,

    // ---- placement cost (Eq. (8)) ----
    /// Linear placement-cost coefficient `w₄`.
    ///
    /// Paper prints `2.5·10³` against incomes of order `10⁻⁷·Q_k`; we keep
    /// the *role* (linear cost of the caching rate) and calibrate the scale
    /// so the optimal control of Thm. 1 is interior (see `EXPERIMENTS.md`).
    pub w4: f64,
    /// Quadratic placement-cost coefficient `w₅` (same calibration note;
    /// Fig. 8 sweeps this in `[1, 2.4]×` the default, mirroring the paper's
    /// `[0.65, 1.55]·10⁸` sweep).
    pub w5: f64,

    // ---- trading & sharing economics ----
    /// Maximum unit price `p̂` (cu per content unit).
    pub p_hat: f64,
    /// Supply-to-price conversion `η₁` (Eq. (5)); the paper sweeps
    /// `η₁/p̂ ∈ [0.2, 0.8]`, here `η₁ ∈ [1, 4]` with `p̂ = 5`.
    pub eta1: f64,
    /// Delay-to-cost conversion `η₂` (Eq. (9)).
    pub eta2: f64,
    /// Peer sharing unit price `p̄_k` (cu per content unit).
    pub p_bar: f64,
    /// "Cached enough" threshold `α` (paper: 0.2): an EDP holds enough of
    /// content `k` when its remaining space is below `α·Q_k`.
    pub alpha: f64,
    /// Sigmoid sharpness `l` of the case-probability smoothing `f`.
    pub sigmoid_l: f64,

    // ---- channel dynamics (Eq. (1)) ----
    /// Fading OU rate `ς_h`.
    pub varsigma_h: f64,
    /// Fading long-term mean `υ_h`.
    pub upsilon_h: f64,
    /// Fading noise `ϱ_h` (paper picks 0.1 of the band, i.e. `1·10⁻⁵`).
    pub varrho_h: f64,
    /// Lower edge of the fading band (paper: `1·10⁻⁵`).
    pub h_min: f64,
    /// Upper edge of the fading band (paper: `10·10⁻⁵`).
    pub h_max: f64,

    // ---- rates ----
    /// Center-to-EDP rate `H_c` in content units per epoch (100 MB over a
    /// 10 Mbit/s backhaul ≈ 80 s; with a 100 s epoch, `H_c = 1.25` — the
    /// slow backhaul is what makes peer sharing worthwhile, §III-A).
    pub center_rate: f64,
    /// Edge rate scale: `H(h)` at the top of the fading band, content
    /// units per epoch (edge links beat the backhaul).
    pub edge_rate_scale: f64,

    // ---- horizon & discretization ----
    /// Optimization horizon `T` (paper: 1).
    pub t_horizon: f64,
    /// Number of macro time steps of the HJB/FPK grid.
    pub time_steps: usize,
    /// Grid points on the `h` axis.
    pub grid_h: usize,
    /// Grid points on the `q` axis.
    pub grid_q: usize,

    // ---- initial distribution (§V-A) ----
    /// Mean of the initial normal caching-state distribution (paper: 0.7).
    pub lambda0_mean: f64,
    /// Standard deviation of the initial distribution (paper: 0.1).
    pub lambda0_std: f64,

    /// Use the unconditionally stable implicit (Thomas/Lie-split) PDE
    /// steppers instead of the explicit CFL-sub-stepped kernels for both
    /// the HJB and FPK sweeps. Equivalent at the solver's macro step sizes
    /// (first-order either way); the implicit path wins when `time_steps`
    /// is small relative to the drift scale (see `ablation_stepper`).
    pub implicit_steppers: bool,

    /// Run the implicit HJB/FPK sweeps through the batched
    /// structure-of-arrays column-block kernels (lane-lockstep Thomas
    /// solves) instead of one scalar solve per column. Both paths are
    /// bit-identical — the scalar path is kept as the differential oracle
    /// and `--scalar-kernels` escape hatch — so this only changes speed,
    /// never results. Default on.
    pub batched_kernels: bool,

    /// Terminal (salvage) value weight `γ ≥ 0`: the HJB terminal condition
    /// becomes `V(T, h, q) = γ·(Q_k − q)` — cached inventory retains value
    /// past the horizon instead of expiring worthless. The paper's finite
    /// horizon uses `γ = 0` (our default); positive values remove the
    /// end-of-horizon "stop caching" artifact and model rolling epochs
    /// (each epoch's leftover cache seeds the next).
    pub terminal_value_weight: f64,

    // ---- Alg. 2 fixed point ----
    /// Maximum best-response iterations `ψ_th`.
    pub max_iterations: usize,
    /// Sup-norm policy tolerance ("preset threshold" of Alg. 2 line 6),
    /// applied to the *undamped* best-response gap `max|BR(x) − x|` — not
    /// the damped applied update `ω·|BR(x) − x|` (see
    /// [`crate::ConvergenceReport`]).
    pub tolerance: f64,
    /// Picard relaxation weight `ω ∈ (0, 1]` mixing successive policies.
    pub relaxation: f64,
    /// Worker threads for the per-grid-point HJB/FPK assembly passes;
    /// `0` = one per available core. The assembly is a pure function of the
    /// previous iterate, split over contiguous h-columns, so results are
    /// bit-identical for any value.
    pub worker_threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_edps: 300,
            q_size: 1.0,
            requests: 10.0,
            popularity: 0.3,
            urgency_factor: 0.05,
            w1: 1.0,
            w2: 1.0 / 20.0,
            w3: 10.0,
            varrho_q: 0.1,
            w4: 0.5,
            w5: 2.0,
            p_hat: 5.0,
            eta1: 1.0,
            eta2: 1.0,
            p_bar: 1.0,
            alpha: 0.2,
            sigmoid_l: 10.0,
            varsigma_h: 4.0,
            upsilon_h: 5.0e-5,
            varrho_h: 1.0e-5,
            h_min: 1.0e-5,
            h_max: 10.0e-5,
            center_rate: 1.25,
            edge_rate_scale: 8.0,
            t_horizon: 1.0,
            time_steps: 40,
            grid_h: 24,
            grid_q: 48,
            lambda0_mean: 0.7,
            lambda0_std: 0.1,
            implicit_steppers: false,
            batched_kernels: true,
            terminal_value_weight: 0.0,
            max_iterations: 40,
            tolerance: 2e-3,
            relaxation: 0.5,
            worker_threads: 0,
        }
    }
}

macro_rules! require {
    ($cond:expr, $name:literal, $msg:expr) => {
        // Written as if/else (not `!cond`) so NaNs fail closed without
        // tripping clippy's negated-partial-ord lint.
        if $cond {
        } else {
            return Err(CoreError::BadParam {
                name: $name,
                message: $msg.to_string(),
            });
        }
    };
}

impl Params {
    /// Validate every constraint the solvers rely on.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), CoreError> {
        require!(
            self.num_edps >= 2,
            "num_edps",
            "need at least 2 EDPs for a game"
        );
        require!(
            self.q_size > 0.0 && self.q_size <= 1.0,
            "q_size",
            "must be in (0, 1]"
        );
        require!(self.requests >= 0.0, "requests", "must be >= 0");
        require!(
            (0.0..=1.0).contains(&self.popularity),
            "popularity",
            "must be a probability"
        );
        require!(
            self.urgency_factor > 0.0 && self.urgency_factor <= 1.0,
            "urgency_factor",
            "must be in (0, 1]"
        );
        require!(self.w1 > 0.0, "w1", "must be > 0");
        require!(self.w2 >= 0.0, "w2", "must be >= 0");
        require!(self.w3 >= 0.0, "w3", "must be >= 0");
        require!(self.varrho_q >= 0.0, "varrho_q", "must be >= 0");
        require!(self.w4 >= 0.0, "w4", "must be >= 0");
        require!(self.w5 > 0.0, "w5", "must be > 0 (Thm. 1 divides by it)");
        require!(self.p_hat > 0.0, "p_hat", "must be > 0");
        require!(self.eta1 >= 0.0, "eta1", "must be >= 0");
        require!(self.eta2 >= 0.0, "eta2", "must be >= 0");
        require!(self.p_bar >= 0.0, "p_bar", "must be >= 0");
        require!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha",
            "must be in (0, 1)"
        );
        require!(self.sigmoid_l > 0.0, "sigmoid_l", "must be > 0");
        require!(self.varsigma_h > 0.0, "varsigma_h", "must be > 0");
        require!(self.varrho_h > 0.0, "varrho_h", "must be > 0");
        require!(self.h_min < self.h_max, "h_min", "band must be non-empty");
        require!(
            self.upsilon_h >= self.h_min && self.upsilon_h <= self.h_max,
            "upsilon_h",
            "long-term mean must lie in the fading band"
        );
        require!(self.center_rate > 0.0, "center_rate", "must be > 0");
        require!(self.edge_rate_scale > 0.0, "edge_rate_scale", "must be > 0");
        require!(self.t_horizon > 0.0, "t_horizon", "must be > 0");
        require!(self.time_steps >= 2, "time_steps", "need at least 2 steps");
        require!(self.grid_h >= 4, "grid_h", "need at least 4 points");
        require!(self.grid_q >= 4, "grid_q", "need at least 4 points");
        require!(
            (0.0..=1.0).contains(&self.lambda0_mean),
            "lambda0_mean",
            "must be in [0, 1]"
        );
        require!(self.lambda0_std > 0.0, "lambda0_std", "must be > 0");
        require!(
            self.terminal_value_weight >= 0.0,
            "terminal_value_weight",
            "must be >= 0"
        );
        require!(self.max_iterations >= 1, "max_iterations", "must be >= 1");
        require!(self.tolerance > 0.0, "tolerance", "must be > 0");
        require!(
            self.relaxation > 0.0 && self.relaxation <= 1.0,
            "relaxation",
            "must be in (0, 1]"
        );
        Ok(())
    }

    /// The `(h, q)` state grid.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid; call [`Params::validate`]
    /// first (the solvers do).
    pub fn grid(&self) -> Grid2d {
        let h = Axis::new(self.h_min, self.h_max, self.grid_h).expect("validated h axis");
        let q = Axis::new(0.0, self.q_size, self.grid_q).expect("validated q axis");
        Grid2d::new(h, q)
    }

    /// Macro time step `Δt = T / time_steps`.
    pub fn dt(&self) -> f64 {
        self.t_horizon / self.time_steps as f64
    }

    /// "Cached enough" threshold `α·Q_k` in storage units.
    pub fn alpha_qk(&self) -> f64 {
        self.alpha * self.q_size
    }

    /// Channel drift `½ς_h(υ_h − h)` (Eq. (1)).
    pub fn drift_h(&self, h: f64) -> f64 {
        0.5 * self.varsigma_h * (self.upsilon_h - h)
    }

    /// Normalized caching drift (Eq. (4) divided by `Q_k`):
    /// `−w₁x − w₂Π + w₃ξ^L` in storage units per epoch.
    pub fn drift_q(&self, x: f64, popularity: f64, urgency_factor: f64) -> f64 {
        -self.w1 * x - self.w2 * popularity + self.w3 * urgency_factor
    }

    /// Diffusion coefficient `½ϱ_h²` on the `h` axis.
    pub fn diffusion_h(&self) -> f64 {
        0.5 * self.varrho_h * self.varrho_h
    }

    /// Diffusion coefficient `½ϱ_q²` on the `q` axis.
    pub fn diffusion_q(&self) -> f64 {
        0.5 * self.varrho_q * self.varrho_q
    }

    /// The canonical little-endian encoding of every field, in struct
    /// declaration order: `f64`s as raw IEEE-754 bits, `usize`s as `u64`,
    /// `bool`s as one byte. This is the stable wire form behind
    /// [`Params::fingerprint`] and the equilibrium artifact format of
    /// `mfgcp-serve`; adding a field to `Params` extends the encoding and
    /// therefore changes every fingerprint, which is exactly the desired
    /// behaviour (an old artifact must not silently rehydrate under a
    /// params struct it has no value for).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = CanonicalEncoder(Vec::with_capacity(CANONICAL_LEN));
        visit_canonical(&mut self.clone(), &mut enc);
        debug_assert_eq!(enc.0.len(), CANONICAL_LEN);
        enc.0
    }

    /// Decode [`Params::canonical_bytes`] output back into a `Params`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InconsistentParts`] when `bytes` has the wrong
    /// length, and propagates [`Params::validate`] failures so a decoded
    /// value upholds every invariant the solvers rely on.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() != CANONICAL_LEN {
            return Err(CoreError::InconsistentParts {
                message: format!(
                    "canonical params block is {} bytes, expected {CANONICAL_LEN}",
                    bytes.len()
                ),
            });
        }
        let mut params = Params::default();
        let mut dec = CanonicalDecoder { bytes, pos: 0 };
        visit_canonical(&mut params, &mut dec);
        debug_assert_eq!(dec.pos, CANONICAL_LEN);
        params.validate()?;
        Ok(params)
    }

    /// A stable 64-bit fingerprint of the parameters: FNV-1a over
    /// [`Params::canonical_bytes`]. Two `Params` values fingerprint equal
    /// iff every field is bit-identical (including `-0.0` vs `+0.0` and
    /// NaN payloads), so an equilibrium artifact stamped with this value
    /// can be matched exactly against the parameters a reader expects.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Threads to use for an assembly pass over `nx` h-columns:
    /// `worker_threads` (0 = one per available core), clamped so every
    /// thread gets at least four columns — below that spawn overhead
    /// dominates the arithmetic. Never affects results, only wall-clock.
    pub(crate) fn assembly_threads(&self, nx: usize) -> usize {
        let requested = if self.worker_threads > 0 {
            self.worker_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        requested.clamp(1, (nx / 4).max(1))
    }
}

/// Byte length of [`Params::canonical_bytes`]: 29 `f64`s, 6 `usize`s
/// (as `u64`), 2 `bool`s. Adding `batched_kernels` (PR 7) grew this by
/// one byte, intentionally changing every fingerprint — runs must not
/// alias across a schema change even when the numerics are identical.
const CANONICAL_LEN: usize = 29 * 8 + 6 * 8 + 2;

/// One pass over every `Params` field in declaration order. The encoder,
/// decoder and fingerprint all flow through this single function, so the
/// canonical field order cannot diverge between them.
fn visit_canonical(p: &mut Params, v: &mut impl CanonicalVisit) {
    v.visit_usize(&mut p.num_edps);
    v.visit_f64(&mut p.q_size);
    v.visit_f64(&mut p.requests);
    v.visit_f64(&mut p.popularity);
    v.visit_f64(&mut p.urgency_factor);
    v.visit_f64(&mut p.w1);
    v.visit_f64(&mut p.w2);
    v.visit_f64(&mut p.w3);
    v.visit_f64(&mut p.varrho_q);
    v.visit_f64(&mut p.w4);
    v.visit_f64(&mut p.w5);
    v.visit_f64(&mut p.p_hat);
    v.visit_f64(&mut p.eta1);
    v.visit_f64(&mut p.eta2);
    v.visit_f64(&mut p.p_bar);
    v.visit_f64(&mut p.alpha);
    v.visit_f64(&mut p.sigmoid_l);
    v.visit_f64(&mut p.varsigma_h);
    v.visit_f64(&mut p.upsilon_h);
    v.visit_f64(&mut p.varrho_h);
    v.visit_f64(&mut p.h_min);
    v.visit_f64(&mut p.h_max);
    v.visit_f64(&mut p.center_rate);
    v.visit_f64(&mut p.edge_rate_scale);
    v.visit_f64(&mut p.t_horizon);
    v.visit_usize(&mut p.time_steps);
    v.visit_usize(&mut p.grid_h);
    v.visit_usize(&mut p.grid_q);
    v.visit_f64(&mut p.lambda0_mean);
    v.visit_f64(&mut p.lambda0_std);
    v.visit_bool(&mut p.implicit_steppers);
    v.visit_bool(&mut p.batched_kernels);
    v.visit_f64(&mut p.terminal_value_weight);
    v.visit_usize(&mut p.max_iterations);
    v.visit_f64(&mut p.tolerance);
    v.visit_f64(&mut p.relaxation);
    v.visit_usize(&mut p.worker_threads);
}

trait CanonicalVisit {
    fn visit_f64(&mut self, v: &mut f64);
    fn visit_usize(&mut self, v: &mut usize);
    fn visit_bool(&mut self, v: &mut bool);
}

struct CanonicalEncoder(Vec<u8>);

impl CanonicalVisit for CanonicalEncoder {
    fn visit_f64(&mut self, v: &mut f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn visit_usize(&mut self, v: &mut usize) {
        self.0.extend_from_slice(&(*v as u64).to_le_bytes());
    }

    fn visit_bool(&mut self, v: &mut bool) {
        self.0.push(u8::from(*v));
    }
}

struct CanonicalDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl CanonicalDecoder<'_> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        // Length is pre-checked against CANONICAL_LEN, so this never runs
        // off the end of the slice.
        let arr: [u8; N] = self.bytes[self.pos..self.pos + N]
            .try_into()
            .expect("length checked");
        self.pos += N;
        arr
    }
}

impl CanonicalVisit for CanonicalDecoder<'_> {
    fn visit_f64(&mut self, v: &mut f64) {
        *v = f64::from_bits(u64::from_le_bytes(self.take()));
    }

    fn visit_usize(&mut self, v: &mut usize) {
        *v = u64::from_le_bytes(self.take()) as usize;
    }

    fn visit_bool(&mut self, v: &mut bool) {
        *v = self.take::<1>()[0] != 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        Params::default().validate().unwrap();
    }

    #[test]
    fn default_ratios_match_the_paper() {
        let p = Params::default();
        // η₁/p̂ = 0.2, the low end of the paper's sweep.
        assert!((p.eta1 / p.p_hat - 0.2).abs() < 1e-12);
        // w₂ = 1/20, w₃ = 10, ξ-driven urgency factor defaults to ξ¹ = 0.1.
        assert_eq!(p.w2, 0.05);
        assert_eq!(p.w3, 10.0);
        assert_eq!(p.alpha, 0.2);
        // Fading band [1, 10]·10⁻⁵.
        assert_eq!(p.h_min, 1.0e-5);
        assert_eq!(p.h_max, 10.0e-5);
        // λ(0) ~ N(0.7, 0.1²).
        assert_eq!(p.lambda0_mean, 0.7);
        assert_eq!(p.lambda0_std, 0.1);
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = Params::default();
        let cases: Vec<(&str, Params)> = vec![
            (
                "num_edps",
                Params {
                    num_edps: 1,
                    ..base.clone()
                },
            ),
            (
                "q_size",
                Params {
                    q_size: 0.0,
                    ..base.clone()
                },
            ),
            (
                "w5",
                Params {
                    w5: 0.0,
                    ..base.clone()
                },
            ),
            (
                "alpha",
                Params {
                    alpha: 1.0,
                    ..base.clone()
                },
            ),
            (
                "upsilon_h",
                Params {
                    upsilon_h: 1.0,
                    ..base.clone()
                },
            ),
            (
                "relaxation",
                Params {
                    relaxation: 0.0,
                    ..base.clone()
                },
            ),
            (
                "tolerance",
                Params {
                    tolerance: 0.0,
                    ..base.clone()
                },
            ),
            (
                "lambda0_std",
                Params {
                    lambda0_std: 0.0,
                    ..base.clone()
                },
            ),
        ];
        for (name, p) in cases {
            match p.validate() {
                Err(CoreError::BadParam { name: got, .. }) => {
                    assert_eq!(got, name, "wrong field blamed");
                }
                other => panic!("{name}: expected BadParam, got {other:?}"),
            }
        }
    }

    #[test]
    fn grid_spans_the_state_space() {
        let p = Params::default();
        let g = p.grid();
        assert_eq!(g.x().lo(), p.h_min);
        assert_eq!(g.x().hi(), p.h_max);
        assert_eq!(g.y().lo(), 0.0);
        assert_eq!(g.y().hi(), p.q_size);
    }

    #[test]
    fn drift_q_matches_eq_4() {
        let p = Params::default();
        // −w₁·0.5 − w₂·0.3 + w₃·0.1 = −0.5 − 0.015 + 1.0.
        let d = p.drift_q(0.5, 0.3, 0.1);
        assert!((d - 0.485).abs() < 1e-12);
    }

    #[test]
    fn drift_h_reverts_to_mean() {
        let p = Params::default();
        assert!(p.drift_h(p.h_max) < 0.0);
        assert!(p.drift_h(p.h_min) > 0.0);
        assert_eq!(p.drift_h(p.upsilon_h), 0.0);
    }

    #[test]
    fn error_display() {
        let e = CoreError::NotConverged {
            residual: 0.5,
            iterations: 7,
        };
        assert!(e.to_string().contains("7 iterations"));
        let e = CoreError::InconsistentParts {
            message: "policy length 3".into(),
        };
        assert!(e.to_string().contains("policy length 3"));
    }

    #[test]
    fn canonical_bytes_roundtrip_exactly() {
        let p = Params {
            eta1: 2.5,
            time_steps: 17,
            implicit_steppers: true,
            batched_kernels: false,
            worker_threads: 3,
            tolerance: 1.0e-4,
            ..Params::default()
        };
        let bytes = p.canonical_bytes();
        assert_eq!(bytes.len(), CANONICAL_LEN);
        let back = Params::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.fingerprint(), p.fingerprint());
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_field_class() {
        let base = Params::default();
        let f = base.fingerprint();
        // A second computation is stable.
        assert_eq!(base.fingerprint(), f);
        for changed in [
            Params {
                eta1: base.eta1 + 1.0,
                ..base.clone()
            },
            Params {
                time_steps: base.time_steps + 1,
                ..base.clone()
            },
            Params {
                implicit_steppers: !base.implicit_steppers,
                ..base.clone()
            },
            Params {
                batched_kernels: !base.batched_kernels,
                ..base.clone()
            },
        ] {
            assert_ne!(changed.fingerprint(), f);
        }
        // Bit-sensitivity: -0.0 fingerprints differently from +0.0.
        let pos = Params {
            terminal_value_weight: 0.0,
            ..base.clone()
        };
        let neg = Params {
            terminal_value_weight: -0.0,
            ..base
        };
        assert_ne!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn from_canonical_bytes_rejects_bad_input() {
        let bytes = Params::default().canonical_bytes();
        // Wrong length.
        assert!(matches!(
            Params::from_canonical_bytes(&bytes[..bytes.len() - 1]),
            Err(CoreError::InconsistentParts { .. })
        ));
        // A decoded block still passes validation: zero out w5 (> 0
        // required) and the decode must fail as BadParam, not produce an
        // invalid Params.
        let mut corrupt = bytes;
        let w5_offset = 8 + 9 * 8; // num_edps (u64) + 9 f64s precede w5
        corrupt[w5_offset..w5_offset + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Params::from_canonical_bytes(&corrupt),
            Err(CoreError::BadParam { name: "w5", .. })
        ));
    }
}
