//! The backward HJB sweep of Eq. (20) with the closed-form control of
//! Thm. 1 (Eq. (21)).
//!
//! Given the mean-field trajectory (one [`MeanFieldSnapshot`] per macro time
//! step) and the workload contexts, the solver marches the value function
//! backwards from the terminal condition `V(T, ·) = 0`, extracting the
//! optimal caching rate `x*(t, h, q)` from `∂_q V` at every step. This is
//! exactly lines 4–5 of Alg. 2.

use mfgcp_obs::RecorderHandle;
use mfgcp_pde::{BackwardParabolic2d, Field2d, Grid2d, ImplicitBackward2d, StepperScratch};

use crate::estimator::MeanFieldSnapshot;
use crate::params::{CoreError, Params};
use crate::utility::{ContentContext, Utility};

/// The result of one backward sweep: value and policy surfaces.
#[derive(Debug, Clone)]
pub struct HjbSolution {
    /// `values[n]` = `V(t_n, ·)` for `n = 0..=N` (so `values[N]` is the
    /// terminal condition).
    pub values: Vec<Field2d>,
    /// `policy[n]` = `x*(t_n, ·)` for `n = 0..N`.
    pub policy: Vec<Field2d>,
}

impl HjbSolution {
    /// `∂_q V(0, ·)` — useful for inspecting the marginal value of storage.
    pub fn initial_value(&self) -> &Field2d {
        &self.values[0]
    }
}

/// Reusable cross-iteration workspace for [`HjbSolver::solve_into`]: the
/// closed-loop drift and running-reward fields plus the stepper scratch,
/// allocated once (via [`HjbSolver::scratch`]) and reused across every
/// Picard iteration of Alg. 2.
#[derive(Debug, Clone)]
pub struct HjbScratch {
    by: Field2d,
    source: Field2d,
    stepper: StepperScratch,
}

/// Backward HJB solver.
#[derive(Debug, Clone)]
pub struct HjbSolver {
    params: Params,
    utility: Utility,
    stepper: BackwardParabolic2d,
    implicit: ImplicitBackward2d,
    grid: Grid2d,
    /// Channel drift `b_h(h)` — state-only, so assembled once here rather
    /// than on every solve.
    channel_drift: Field2d,
}

impl HjbSolver {
    /// Create a solver after validating the parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures.
    pub fn new(params: Params) -> Result<Self, CoreError> {
        params.validate()?;
        let grid = params.grid();
        let stepper = BackwardParabolic2d::new(params.diffusion_h(), params.diffusion_q())
            .expect("validated diffusions");
        let mut implicit = ImplicitBackward2d::new(params.diffusion_h(), params.diffusion_q())
            .expect("validated diffusions");
        implicit.set_batched(params.batched_kernels);
        let utility = Utility::new(params.clone());
        let channel_drift = Field2d::from_fn(grid.clone(), |h, _q| params.drift_h(h));
        Ok(Self {
            params,
            utility,
            stepper,
            implicit,
            grid,
            channel_drift,
        })
    }

    /// Attach a telemetry recorder, propagated to the underlying backward
    /// steppers (CFL-margin gauges and non-finite sentinels). Telemetry
    /// reads state only — sweeps are bit-identical with recording on or
    /// off.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.stepper.set_recorder(recorder.clone());
        self.implicit.set_recorder(recorder);
    }

    /// A fresh workspace for [`HjbSolver::solve_into`].
    pub fn scratch(&self) -> HjbScratch {
        HjbScratch {
            by: Field2d::zeros(self.grid.clone()),
            source: Field2d::zeros(self.grid.clone()),
            stepper: StepperScratch::new(),
        }
    }

    /// The utility evaluator (shared with callers that need breakdowns).
    pub fn utility(&self) -> &Utility {
        &self.utility
    }

    /// The state grid.
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// Solve backwards over the whole horizon.
    ///
    /// `contexts` and `snapshots` must each have `params.time_steps`
    /// entries (one per macro step `t_n`, `n = 0..N`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn solve(
        &self,
        contexts: &[ContentContext],
        snapshots: &[MeanFieldSnapshot],
    ) -> HjbSolution {
        let mut values = Vec::new();
        let mut policy = Vec::new();
        self.solve_into(
            contexts,
            snapshots,
            &mut values,
            &mut policy,
            &mut self.scratch(),
        );
        HjbSolution { values, policy }
    }

    /// [`HjbSolver::solve`] writing into caller-owned `values`/`policy`
    /// vectors (resized and fully overwritten) with a reusable workspace —
    /// the allocation-free path the Picard loop of Alg. 2 runs on. The
    /// per-grid-point assembly is fanned out over contiguous h-columns on
    /// [`Params::worker_threads`] scoped threads; because each point is a
    /// pure function of the previous value surface, the result is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or if reused buffers live on a
    /// different grid.
    pub fn solve_into(
        &self,
        contexts: &[ContentContext],
        snapshots: &[MeanFieldSnapshot],
        values: &mut Vec<Field2d>,
        policy: &mut Vec<Field2d>,
        scratch: &mut HjbScratch,
    ) {
        let n_steps = self.params.time_steps;
        assert_eq!(contexts.len(), n_steps, "need one context per time step");
        assert_eq!(snapshots.len(), n_steps, "need one snapshot per time step");
        let dt = self.params.dt();
        let (nx, ny) = (self.grid.x().len(), self.grid.y().len());
        let threads = self.params.assembly_threads(nx);

        values.resize_with(n_steps + 1, || Field2d::zeros(self.grid.clone()));
        policy.resize_with(n_steps, || Field2d::zeros(self.grid.clone()));
        for f in values.iter().chain(policy.iter()) {
            assert_eq!(f.grid(), &self.grid, "reused buffer grid mismatch");
        }
        // Terminal condition: V(T) = γ·(Q_k − q) (salvage value of the
        // cached inventory; γ = 0 reproduces the paper's V(T) = 0).
        let gamma = self.params.terminal_value_weight;
        let qk = self.params.q_size;
        for i in 0..nx {
            for j in 0..ny {
                values[n_steps].set(i, j, gamma * (qk - self.grid.y().at(j)));
            }
        }

        for n in (0..n_steps).rev() {
            let ctx = &contexts[n];
            let snap = &snapshots[n];
            let (head, tail) = values.split_at_mut(n + 1);
            let v_next = &tail[0];

            // Extract x* from ∂_q V(t_{n+1}) (Thm. 1), then build the
            // closed-loop drift and running reward for the step back —
            // independently per h-column, so fanned out over threads.
            let dq = self.grid.y().dx();
            crate::parallel::for_each_column3(
                threads,
                ny,
                policy[n].values_mut(),
                scratch.by.values_mut(),
                scratch.source.values_mut(),
                |i, pol_col, by_col, src_col| {
                    let h = self.grid.x().at(i);
                    for j in 0..ny {
                        let dv_dq = if j == 0 {
                            (v_next.at(i, 1) - v_next.at(i, 0)) / dq
                        } else if j == ny - 1 {
                            (v_next.at(i, ny - 1) - v_next.at(i, ny - 2)) / dq
                        } else {
                            (v_next.at(i, j + 1) - v_next.at(i, j - 1)) / (2.0 * dq)
                        };
                        let x = self.utility.optimal_control(dv_dq);
                        pol_col[j] = x;
                        by_col[j] = self.params.drift_q(x, ctx.popularity, ctx.urgency_factor);
                        src_col[j] = self.utility.evaluate(ctx, snap, x, h, self.grid.y().at(j));
                    }
                },
            );

            let v = &mut head[n];
            v.values_mut().copy_from_slice(tail[0].values());
            if self.params.implicit_steppers {
                self.implicit.step_back_scratch(
                    v,
                    &self.channel_drift,
                    &scratch.by,
                    &scratch.source,
                    dt,
                    &mut scratch.stepper,
                );
            } else {
                self.stepper.step_back_scratch(
                    v,
                    &self.channel_drift,
                    &scratch.by,
                    &scratch.source,
                    dt,
                    &mut scratch.stepper,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MeanFieldSnapshot {
        MeanFieldSnapshot {
            price: 4.0,
            q_bar: 0.5,
            delta_q: 0.3,
            share_benefit: 0.2,
            sharer_fraction: 0.3,
            case3_fraction: 0.2,
        }
    }

    fn solve_default() -> (HjbSolver, HjbSolution) {
        let params = Params {
            time_steps: 20,
            grid_h: 12,
            grid_q: 32,
            ..Params::default()
        };
        let ctx = ContentContext::from_params(&params);
        let solver = HjbSolver::new(params.clone()).unwrap();
        let contexts = vec![ctx; params.time_steps];
        let snaps = vec![snapshot(); params.time_steps];
        let sol = solver.solve(&contexts, &snaps);
        (solver, sol)
    }

    #[test]
    fn terminal_condition_is_zero() {
        let (_, sol) = solve_default();
        assert!(sol
            .values
            .last()
            .unwrap()
            .values()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn salvage_terminal_condition_is_linear_in_cached_inventory() {
        let params = Params {
            time_steps: 10,
            grid_h: 8,
            grid_q: 24,
            terminal_value_weight: 2.0,
            ..Params::default()
        };
        let ctx = ContentContext::from_params(&params);
        let solver = HjbSolver::new(params.clone()).unwrap();
        let sol = solver.solve(&vec![ctx; 10], &vec![snapshot(); 10]);
        let v_t = sol.values.last().unwrap();
        // V(T, q = 0) = 2·Q_k, V(T, q = Q_k) = 0.
        assert!((v_t.interpolate(5.0e-5, 0.0) - 2.0).abs() < 1e-9);
        assert!(v_t.interpolate(5.0e-5, 1.0).abs() < 1e-9);
        // Salvage value keeps the policy caching near the horizon where
        // the γ = 0 solve has already shut down.
        let salvage_late = sol.policy[9].interpolate(5.0e-5, 0.6);
        let plain = HjbSolver::new(Params {
            terminal_value_weight: 0.0,
            ..params
        })
        .unwrap()
        .solve(&vec![ctx; 10], &vec![snapshot(); 10]);
        let plain_late = plain.policy[9].interpolate(5.0e-5, 0.6);
        assert!(
            salvage_late > plain_late,
            "salvage {salvage_late} <= plain {plain_late}"
        );
    }

    #[test]
    fn value_accumulates_positive_utility_backwards() {
        let (_, sol) = solve_default();
        // With income-dominated utility, V(0) should be strictly positive
        // and exceed V at later times (more horizon left to earn).
        let v0_mid = sol.values[0].interpolate(5.0e-5, 0.5);
        let v_mid_mid = sol.values[10].interpolate(5.0e-5, 0.5);
        assert!(v0_mid > 0.0, "V(0) = {v0_mid}");
        assert!(v0_mid > v_mid_mid, "V decreases towards the horizon");
    }

    #[test]
    fn value_decreases_in_remaining_space() {
        // More remaining space = less content cached = less to sell:
        // V should decrease with q through most of the domain.
        let (_, sol) = solve_default();
        let v = &sol.values[0];
        let low_q = v.interpolate(5.0e-5, 0.1);
        let high_q = v.interpolate(5.0e-5, 0.9);
        assert!(low_q > high_q, "V(q=0.1) = {low_q} vs V(q=0.9) = {high_q}");
    }

    #[test]
    fn policy_is_a_valid_caching_rate_everywhere() {
        let (_, sol) = solve_default();
        for p in &sol.policy {
            assert!(p.values().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn policy_is_interior_somewhere() {
        // A degenerate all-0 or all-1 policy would mean the calibration
        // broke the Thm. 1 trade-off.
        let (_, sol) = solve_default();
        let interior: usize = sol
            .policy
            .iter()
            .map(|p| p.values().iter().filter(|&&x| x > 0.01 && x < 0.99).count())
            .sum();
        assert!(interior > 0, "policy is bang-bang everywhere");
    }

    #[test]
    fn policy_consistent_with_value_gradient() {
        let (solver, sol) = solve_default();
        // Recompute x* from the stored value surface at one step and
        // compare with the stored policy.
        let n = 5;
        let v = &sol.values[n + 1];
        let grid = solver.grid();
        let dqs = grid.y().dx();
        let (i, j) = (6, 16);
        let dv = (v.at(i, j + 1) - v.at(i, j - 1)) / (2.0 * dqs);
        let expected = solver.utility().optimal_control(dv);
        assert!((sol.policy[n].at(i, j) - expected).abs() < 1e-12);
    }

    #[test]
    fn time_varying_contexts_shape_the_policy() {
        // A demand burst confined to the second half of the horizon should
        // produce more aggressive early caching than no burst at all
        // (the backward sweep anticipates it).
        let params = Params {
            time_steps: 20,
            grid_h: 8,
            grid_q: 32,
            ..Params::default()
        };
        let solver = HjbSolver::new(params.clone()).unwrap();
        let quiet = ContentContext {
            requests: 2.0,
            popularity: 0.1,
            urgency_factor: 0.01,
        };
        let burst = ContentContext {
            requests: 40.0,
            popularity: 0.8,
            urgency_factor: 0.01,
        };
        let snaps = vec![snapshot(); 20];

        let flat = solver.solve(&vec![quiet; 20], &snaps);
        let mut ramped_ctx = vec![quiet; 10];
        ramped_ctx.extend(vec![burst; 10]);
        let ramped = solver.solve(&ramped_ctx, &snaps);

        // Compare the early-horizon policy mass.
        let early_mass = |sol: &HjbSolution| -> f64 {
            sol.policy[..5]
                .iter()
                .map(|p| p.values().iter().sum::<f64>())
                .sum()
        };
        assert!(
            early_mass(&ramped) > early_mass(&flat),
            "anticipation missing: ramped {} vs flat {}",
            early_mass(&ramped),
            early_mass(&flat)
        );
    }

    #[test]
    #[should_panic(expected = "one context per time step")]
    fn mismatched_contexts_rejected() {
        let params = Params {
            time_steps: 10,
            ..Params::default()
        };
        let solver = HjbSolver::new(params.clone()).unwrap();
        let snaps = vec![snapshot(); 10];
        solver.solve(&[], &snaps);
    }
}
