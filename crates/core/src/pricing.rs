//! The supply–demand pricing rule.
//!
//! Finite population (Eq. (5)):
//! `p_{i,k} = p̂ − η₁ · Σ_{i'≠i} Q_k·x_{i',k} / (M − 1)` for `M ≥ 2`
//! (and `p̂` for a monopolist) — the more of content `k` the *other* EDPs
//! supply, the lower the price EDP `i` can charge.
//!
//! Mean-field limit (Eqs. (16)–(17)):
//! `p_k(t) ≈ p̂ − η₁·Q_k · ∬ λ(S)·x*(S) dh dq` — the average supply under
//! the mean-field distribution replaces the explicit sum over competitors.

use mfgcp_pde::Field2d;

/// Finite-population price of Eq. (5) for EDP `i`, given every EDP's
/// caching rate `strategies` (including `i`'s own, which is excluded from
/// the sum exactly as in the paper).
///
/// The price is floored at zero: the paper's linear rule can go negative
/// for large supplies, which would mean EDPs paying requesters to take
/// content; a free giveaway (price 0) is the economically meaningful floor.
///
/// # Panics
///
/// Panics if `strategies` is empty or `i` is out of range.
pub fn finite_population_price(
    p_hat: f64,
    eta1: f64,
    q_size: f64,
    strategies: &[f64],
    i: usize,
) -> f64 {
    let m = strategies.len();
    assert!(m > 0, "need at least one EDP");
    assert!(i < m, "EDP index {i} out of range {m}");
    if m == 1 {
        return p_hat.max(0.0);
    }
    let supply: f64 = strategies
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != i)
        .map(|(_, x)| q_size * x)
        .sum();
    (p_hat - eta1 * supply / (m - 1) as f64).max(0.0)
}

/// Mean-field price of Eq. (17): `p̂ − η₁·Q_k·∬ λ·x* dh dq`, floored at 0.
///
/// # Panics
///
/// Panics if `density` and `policy` are not on the same grid.
pub fn mean_field_price(p_hat: f64, eta1: f64, q_size: f64, density: &Field2d, policy: &Field2d) -> f64 {
    assert_eq!(density.grid(), policy.grid(), "density/policy grid mismatch");
    let mut supply = 0.0;
    for (lam, x) in density.values().iter().zip(policy.values()) {
        supply += lam * x;
    }
    supply *= density.grid().cell_area();
    (p_hat - eta1 * q_size * supply).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_pde::{Axis, Grid2d};

    fn grid() -> Grid2d {
        Grid2d::new(Axis::new(0.0, 1.0, 11).unwrap(), Axis::new(0.0, 1.0, 11).unwrap())
    }

    #[test]
    fn monopolist_charges_the_cap() {
        assert_eq!(finite_population_price(5.0, 1.0, 1.0, &[0.8], 0), 5.0);
    }

    #[test]
    fn own_strategy_is_excluded() {
        // Competitor caches 1.0, I cache 0.0 → supply average = 1.0.
        let p = finite_population_price(5.0, 2.0, 1.0, &[0.0, 1.0], 0);
        assert!((p - 3.0).abs() < 1e-12);
        // Symmetric view: competitor caches 0 → no depression.
        let p = finite_population_price(5.0, 2.0, 1.0, &[0.0, 1.0], 1);
        assert!((p - 5.0).abs() < 1e-12);
    }

    #[test]
    fn more_competition_lowers_the_price() {
        let few = finite_population_price(5.0, 2.0, 1.0, &[0.0, 0.5, 0.0], 0);
        let many = finite_population_price(5.0, 2.0, 1.0, &[0.0, 0.5, 0.9], 0);
        assert!(many < few);
    }

    #[test]
    fn price_never_negative() {
        let p = finite_population_price(1.0, 100.0, 1.0, &[0.0, 1.0], 0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn mean_field_price_matches_uniform_supply() {
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_, _| 1.0);
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, _| 0.5);
        // ∬λ·x = 0.5 → p = 5 − 2·1·0.5 = 4.
        let p = mean_field_price(5.0, 2.0, 1.0, &lam, &policy);
        assert!((p - 4.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn mean_field_price_weights_by_density() {
        let g = grid();
        // All mass where the policy is 1.
        let mut lam = Field2d::from_fn(g.clone(), |_, q| if q > 0.5 { 1.0 } else { 0.0 });
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, q| if q > 0.5 { 1.0 } else { 0.0 });
        let p = mean_field_price(5.0, 1.0, 1.0, &lam, &policy);
        assert!((p - 4.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn finite_population_converges_to_mean_field() {
        // A large symmetric population with everyone at x̄ = 0.4 should
        // price like the mean-field formula with ∬λx = 0.4.
        let m = 1000;
        let strategies = vec![0.4; m];
        let p_finite = finite_population_price(5.0, 1.0, 1.0, &strategies, 0);
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_, _| 1.0);
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, _| 0.4);
        let p_mf = mean_field_price(5.0, 1.0, 1.0, &lam, &policy);
        assert!((p_finite - p_mf).abs() < 1e-6, "{p_finite} vs {p_mf}");
    }
}
