//! The supply–demand pricing rule.
//!
//! Finite population (Eq. (5)):
//! `p_{i,k} = p̂ − η₁ · Σ_{i'≠i} Q_k·x_{i',k} / (M − 1)` for `M ≥ 2`
//! (and `p̂` for a monopolist) — the more of content `k` the *other* EDPs
//! supply, the lower the price EDP `i` can charge.
//!
//! Mean-field limit (Eqs. (16)–(17)):
//! `p_k(t) ≈ p̂ − η₁·Q_k · ∬ λ(S)·x*(S) dh dq` — the average supply under
//! the mean-field distribution replaces the explicit sum over competitors.

use mfgcp_pde::Field2d;

/// Finite-population price of Eq. (5) for EDP `i`, given every EDP's
/// caching rate `strategies` (including `i`'s own, which is excluded from
/// the sum exactly as in the paper).
///
/// The price is floored at zero: the paper's linear rule can go negative
/// for large supplies, which would mean EDPs paying requesters to take
/// content; a free giveaway (price 0) is the economically meaningful floor.
///
/// # Panics
///
/// Panics if `strategies` is empty or `i` is out of range.
pub fn finite_population_price(
    p_hat: f64,
    eta1: f64,
    q_size: f64,
    strategies: &[f64],
    i: usize,
) -> f64 {
    let m = strategies.len();
    assert!(m > 0, "need at least one EDP");
    assert!(i < m, "EDP index {i} out of range {m}");
    if m == 1 {
        return p_hat.max(0.0);
    }
    let supply: f64 = strategies
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != i)
        .map(|(_, x)| q_size * x)
        .sum();
    (p_hat - eta1 * supply / (m - 1) as f64).max(0.0)
}

/// Shared-supply evaluation of Eq. (5): one O(M) pass per (content, slot)
/// builds `Σ_i x_i`, after which every EDP's price is the O(1) identity
/// `p̂ − η₁·Q_k·(Σx − x_i)/(M − 1)` — the competitor sum `Σ_{i'≠i} x_{i'}`
/// rewritten as total-minus-own. This turns the market-clearing pricing
/// pass from O(M²) per content into O(M); [`finite_population_price`] is
/// kept as the per-EDP reference implementation and property-test oracle.
#[derive(Clone, Copy, Debug)]
pub struct SharedSupplyPricer {
    p_hat: f64,
    /// `η₁·Q_k`, folded once.
    eta1_q: f64,
    m: usize,
    /// `Σ_i x_i` over the whole population (own strategy included).
    sum_x: f64,
}

impl SharedSupplyPricer {
    /// Accumulate the shared supply sum for one (content, slot).
    ///
    /// # Panics
    ///
    /// Panics if `strategies` is empty.
    pub fn new(p_hat: f64, eta1: f64, q_size: f64, strategies: &[f64]) -> Self {
        assert!(!strategies.is_empty(), "need at least one EDP");
        Self::from_sum(
            p_hat,
            eta1,
            q_size,
            strategies.len(),
            strategies.iter().sum(),
        )
    }

    /// Build from an already-accumulated population sum `Σ_i x_i` over `m`
    /// EDPs (for callers that fold the sum in their own pass, avoiding a
    /// strategy-profile allocation).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn from_sum(p_hat: f64, eta1: f64, q_size: f64, m: usize, sum_x: f64) -> Self {
        assert!(m > 0, "need at least one EDP");
        Self {
            p_hat,
            eta1_q: eta1 * q_size,
            m,
            sum_x,
        }
    }

    /// Eq. (5) price for an EDP whose own caching rate is `own` — O(1).
    ///
    /// `own` must be the same value that entered the sum in
    /// [`SharedSupplyPricer::new`]; the monopolist case (`M = 1`) prices at
    /// the cap exactly like the reference.
    pub fn price(&self, own: f64) -> f64 {
        if self.m == 1 {
            return self.p_hat.max(0.0);
        }
        (self.p_hat - self.eta1_q * (self.sum_x - own) / (self.m - 1) as f64).max(0.0)
    }
}

/// Mean-field price of Eq. (17): `p̂ − η₁·Q_k·∬ λ·x* dh dq`, floored at 0.
///
/// # Panics
///
/// Panics if `density` and `policy` are not on the same grid.
pub fn mean_field_price(
    p_hat: f64,
    eta1: f64,
    q_size: f64,
    density: &Field2d,
    policy: &Field2d,
) -> f64 {
    assert_eq!(
        density.grid(),
        policy.grid(),
        "density/policy grid mismatch"
    );
    let mut supply = 0.0;
    for (lam, x) in density.values().iter().zip(policy.values()) {
        supply += lam * x;
    }
    supply *= density.grid().cell_area();
    (p_hat - eta1 * q_size * supply).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfgcp_pde::{Axis, Grid2d};

    fn grid() -> Grid2d {
        Grid2d::new(
            Axis::new(0.0, 1.0, 11).unwrap(),
            Axis::new(0.0, 1.0, 11).unwrap(),
        )
    }

    #[test]
    fn monopolist_charges_the_cap() {
        assert_eq!(finite_population_price(5.0, 1.0, 1.0, &[0.8], 0), 5.0);
    }

    #[test]
    fn own_strategy_is_excluded() {
        // Competitor caches 1.0, I cache 0.0 → supply average = 1.0.
        let p = finite_population_price(5.0, 2.0, 1.0, &[0.0, 1.0], 0);
        assert!((p - 3.0).abs() < 1e-12);
        // Symmetric view: competitor caches 0 → no depression.
        let p = finite_population_price(5.0, 2.0, 1.0, &[0.0, 1.0], 1);
        assert!((p - 5.0).abs() < 1e-12);
    }

    #[test]
    fn more_competition_lowers_the_price() {
        let few = finite_population_price(5.0, 2.0, 1.0, &[0.0, 0.5, 0.0], 0);
        let many = finite_population_price(5.0, 2.0, 1.0, &[0.0, 0.5, 0.9], 0);
        assert!(many < few);
    }

    #[test]
    fn price_never_negative() {
        let p = finite_population_price(1.0, 100.0, 1.0, &[0.0, 1.0], 0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn shared_sum_matches_reference_on_small_profiles() {
        let strategies = [0.0, 0.25, 1.0, 0.6];
        let pricer = SharedSupplyPricer::new(5.0, 2.0, 0.8, &strategies);
        for (i, &x) in strategies.iter().enumerate() {
            let oracle = finite_population_price(5.0, 2.0, 0.8, &strategies, i);
            assert!((pricer.price(x) - oracle).abs() < 1e-12, "EDP {i}");
        }
    }

    #[test]
    fn shared_sum_monopolist_charges_the_cap() {
        let pricer = SharedSupplyPricer::new(5.0, 1.0, 1.0, &[0.8]);
        assert_eq!(pricer.price(0.8), 5.0);
        let negative_cap = SharedSupplyPricer::new(-1.0, 1.0, 1.0, &[0.8]);
        assert_eq!(negative_cap.price(0.8), 0.0);
    }

    #[test]
    fn shared_sum_floors_at_zero() {
        let strategies = [0.0, 1.0];
        let pricer = SharedSupplyPricer::new(1.0, 100.0, 1.0, &strategies);
        assert_eq!(pricer.price(0.0), 0.0);
    }

    #[test]
    fn mean_field_price_matches_uniform_supply() {
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_, _| 1.0);
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, _| 0.5);
        // ∬λ·x = 0.5 → p = 5 − 2·1·0.5 = 4.
        let p = mean_field_price(5.0, 2.0, 1.0, &lam, &policy);
        assert!((p - 4.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn mean_field_price_weights_by_density() {
        let g = grid();
        // All mass where the policy is 1.
        let mut lam = Field2d::from_fn(g.clone(), |_, q| if q > 0.5 { 1.0 } else { 0.0 });
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, q| if q > 0.5 { 1.0 } else { 0.0 });
        let p = mean_field_price(5.0, 1.0, 1.0, &lam, &policy);
        assert!((p - 4.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn finite_population_converges_to_mean_field() {
        // A large symmetric population with everyone at x̄ = 0.4 should
        // price like the mean-field formula with ∬λx = 0.4.
        let m = 1000;
        let strategies = vec![0.4; m];
        let p_finite = finite_population_price(5.0, 1.0, 1.0, &strategies, 0);
        let g = grid();
        let mut lam = Field2d::from_fn(g.clone(), |_, _| 1.0);
        lam.normalize();
        let policy = Field2d::from_fn(g, |_, _| 0.4);
        let p_mf = mean_field_price(5.0, 1.0, 1.0, &lam, &policy);
        assert!((p_finite - p_mf).abs() < 1e-6, "{p_finite} vs {p_mf}");
    }
}
