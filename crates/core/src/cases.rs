//! The three response cases of §III-A and their smoothed occurrence
//! probabilities:
//!
//! * **Case 1** — the EDP has cached enough of content `k`
//!   (`P¹ = f(α·Q_k − q)`: remaining space below the `α·Q_k` threshold
//!   means most of the content is already stored);
//! * **Case 2** — the EDP lacks the content but some peer has it
//!   (`P² = f(q − α·Q_k)·f(α·Q_k − q₋)`);
//! * **Case 3** — nobody nearby has it; download from the cloud center
//!   (`P³ = f(q − α·Q_k)·f(q₋ − α·Q_k)`).
//!
//! `f` is the sigmoid Heaviside smoothing; `q₋` is the peer caching state,
//! approximated by the mean-field average `q̄₋` (Eq. (18)) in the MFG.

use crate::sigmoid::Sigmoid;

/// The occurrence probabilities of the three response cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseProbabilities {
    /// Case 1 (serve from own cache).
    pub p1: f64,
    /// Case 2 (buy the gap from a peer EDP).
    pub p2: f64,
    /// Case 3 (download the gap from the cloud center).
    pub p3: f64,
}

impl CaseProbabilities {
    /// Evaluate the paper's formulas at own state `q`, peer state `q_peer`,
    /// threshold `alpha_qk = α·Q_k`.
    pub fn compute(sigmoid: Sigmoid, q: f64, q_peer: f64, alpha_qk: f64) -> Self {
        let own_short = sigmoid.eval(q - alpha_qk); // ≈ 1 when own cache is short
        let own_full = sigmoid.eval(alpha_qk - q); // ≈ 1 when own cache suffices
        let peer_full = sigmoid.eval(alpha_qk - q_peer);
        let peer_short = sigmoid.eval(q_peer - alpha_qk);
        Self {
            p1: own_full,
            p2: own_short * peer_full,
            p3: own_short * peer_short,
        }
    }

    /// Partial derivatives `(∂P¹/∂q, ∂P²/∂q, ∂P³/∂q)` — the expressions
    /// below Eq. (24) used in the Lipschitz argument of Lemma 1.
    pub fn derivatives_wrt_q(
        sigmoid: Sigmoid,
        q: f64,
        q_peer: f64,
        alpha_qk: f64,
    ) -> (f64, f64, f64) {
        let d_own_full = -sigmoid.derivative(alpha_qk - q);
        let d_own_short = sigmoid.derivative(q - alpha_qk);
        let peer_full = sigmoid.eval(alpha_qk - q_peer);
        let peer_short = sigmoid.eval(q_peer - alpha_qk);
        (
            d_own_full,
            d_own_short * peer_full,
            d_own_short * peer_short,
        )
    }

    /// Sum of the three probabilities (≈ 1 away from the threshold; the
    /// sigmoid smoothing makes it only approximately a partition).
    pub fn total(&self) -> f64 {
        self.p1 + self.p2 + self.p3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Sigmoid {
        Sigmoid::new(10.0)
    }

    #[test]
    fn full_cache_is_case_1() {
        // q = 0 (nothing left to cache) → case 1 dominant.
        let c = CaseProbabilities::compute(sig(), 0.0, 0.9, 0.2);
        assert!(c.p1 > 0.97, "p1 = {}", c.p1);
        assert!(c.p2 < 0.03 && c.p3 < 0.03);
    }

    #[test]
    fn short_cache_with_full_peer_is_case_2() {
        let c = CaseProbabilities::compute(sig(), 0.9, 0.0, 0.2);
        assert!(c.p2 > 0.95, "p2 = {}", c.p2);
        assert!(c.p1 < 0.05 && c.p3 < 0.05);
    }

    #[test]
    fn short_cache_with_short_peer_is_case_3() {
        let c = CaseProbabilities::compute(sig(), 0.9, 0.9, 0.2);
        assert!(c.p3 > 0.95, "p3 = {}", c.p3);
        assert!(c.p1 < 0.05 && c.p2 < 0.05);
    }

    #[test]
    fn probabilities_sum_near_one_away_from_threshold() {
        for &(q, qp) in &[(0.0, 0.0), (0.9, 0.05), (0.05, 0.9), (0.95, 0.95)] {
            let c = CaseProbabilities::compute(sig(), q, qp, 0.2);
            assert!(
                (c.total() - 1.0).abs() < 0.05,
                "at ({q},{qp}): {}",
                c.total()
            );
        }
    }

    #[test]
    fn cases_2_and_3_partition_the_short_regime() {
        // When the EDP is short, p2 + p3 ≈ p_short regardless of the peer.
        let c_full_peer = CaseProbabilities::compute(sig(), 0.9, 0.0, 0.2);
        let c_short_peer = CaseProbabilities::compute(sig(), 0.9, 0.9, 0.2);
        assert!(
            (c_full_peer.p2 + c_full_peer.p3 - (c_short_peer.p2 + c_short_peer.p3)).abs() < 1e-9
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let s = sig();
        let (q, qp, a) = (0.25, 0.6, 0.2);
        let h = 1e-6;
        let up = CaseProbabilities::compute(s, q + h, qp, a);
        let dn = CaseProbabilities::compute(s, q - h, qp, a);
        let (d1, d2, d3) = CaseProbabilities::derivatives_wrt_q(s, q, qp, a);
        assert!((d1 - (up.p1 - dn.p1) / (2.0 * h)).abs() < 1e-4);
        assert!((d2 - (up.p2 - dn.p2) / (2.0 * h)).abs() < 1e-4);
        assert!((d3 - (up.p3 - dn.p3) / (2.0 * h)).abs() < 1e-4);
    }
}
