//! Mapping from the channel fading coefficient to a transmission rate in
//! content units per epoch.
//!
//! In the finite-population simulator (`mfgcp-sim`) rates come from the full
//! Eq. (2) SINR model in `mfgcp-net`. Inside the mean-field solver the
//! state carries only the scalar fading coefficient `h`, so the rate enters
//! through a calibrated monotone map `H(h)` with the same Shannon-law shape
//! `H ∝ log₂(1 + snr·h²)`: fading is the only random part of Eq. (2) once
//! distances are fixed (the paper fixes them too — "we set the fixed
//! distance between EDPs and requesters", §V-B1).

/// Monotone fading-to-rate map `H(h) = scale · log₂(1 + snr_coeff·h²) /
/// log₂(1 + snr_coeff·h_max²)`, normalized so `H(h_max) = scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateModel {
    scale: f64,
    snr_coeff: f64,
    norm: f64,
    h_max: f64,
}

impl RateModel {
    /// Create a rate model.
    ///
    /// * `scale` — rate at the top of the fading band (content/epoch);
    /// * `h_max` — top of the fading band;
    /// * `snr_coeff` — effective `G/(d^τ·ϱ²)` lumped SNR coefficient;
    ///   pick it so the SINR at `h_max` is large but finite.
    ///
    /// # Panics
    ///
    /// Panics unless all arguments are finite and positive.
    pub fn new(scale: f64, h_max: f64, snr_coeff: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be > 0");
        assert!(h_max.is_finite() && h_max > 0.0, "h_max must be > 0");
        assert!(
            snr_coeff.is_finite() && snr_coeff > 0.0,
            "snr_coeff must be > 0"
        );
        let norm = (1.0 + snr_coeff * h_max * h_max).log2();
        Self {
            scale,
            snr_coeff,
            norm,
            h_max,
        }
    }

    /// Default calibration from [`crate::Params`]: the SNR coefficient puts
    /// ~20 dB of SINR at the top of the band, giving roughly a 5× rate
    /// spread across the paper's `[1, 10]·10⁻⁵` fading range.
    pub fn from_params(params: &crate::Params) -> Self {
        let snr_coeff = 100.0 / (params.h_max * params.h_max);
        Self::new(params.edge_rate_scale, params.h_max, snr_coeff)
    }

    /// Rate `H(h)` in content units per epoch.
    pub fn rate(&self, h: f64) -> f64 {
        let hh = h.max(0.0);
        self.scale * (1.0 + self.snr_coeff * hh * hh).log2() / self.norm
    }

    /// The rate at the top of the band (= `scale`).
    pub fn max_rate(&self) -> f64 {
        self.scale
    }

    /// Rate averaged over the stationary fading distribution, approximated
    /// at the long-term mean `υ_h` (used by the reduced 1-D solver).
    pub fn rate_at_mean(&self, upsilon_h: f64) -> f64 {
        self.rate(upsilon_h)
    }

    /// Top of the calibrated band.
    pub fn h_max(&self) -> f64 {
        self.h_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    #[test]
    fn rate_is_monotone_in_fading() {
        let m = RateModel::from_params(&Params::default());
        let mut prev = 0.0;
        let mut h = 1.0e-5;
        while h <= 10.0e-5 {
            let r = m.rate(h);
            assert!(r > prev);
            prev = r;
            h += 0.5e-5;
        }
    }

    #[test]
    fn normalized_at_band_top() {
        let p = Params::default();
        let m = RateModel::from_params(&p);
        assert!((m.rate(p.h_max) - p.edge_rate_scale).abs() < 1e-9);
    }

    #[test]
    fn rate_spread_across_band_is_meaningful() {
        let p = Params::default();
        let m = RateModel::from_params(&p);
        let lo = m.rate(p.h_min);
        let hi = m.rate(p.h_max);
        assert!(hi / lo > 3.0, "spread {}", hi / lo);
        assert!(lo > 0.0);
    }

    #[test]
    fn edge_beats_backhaul_at_the_mean() {
        // The staleness trade-off of Eq. (9) needs edge links to usually
        // beat the center rate.
        let p = Params::default();
        let m = RateModel::from_params(&p);
        assert!(m.rate_at_mean(p.upsilon_h) > p.center_rate);
    }

    #[test]
    fn negative_fading_clamps_to_zero_rate() {
        let m = RateModel::new(8.0, 1.0e-4, 1.0e10);
        assert_eq!(m.rate(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be > 0")]
    fn invalid_scale_rejected() {
        RateModel::new(0.0, 1.0, 1.0);
    }
}
