//! Property-based tests for the MFG-CP core model invariants.

use proptest::prelude::*;

use mfgcp_core::{
    finite_population_price, solve_01, solve_fractional, CaseProbabilities, ContentContext,
    KnapsackItem, MeanFieldSnapshot, Params, RateModel, SharedSupplyPricer, Sigmoid, Utility,
};

fn snapshot(price: f64, q_bar: f64) -> MeanFieldSnapshot {
    MeanFieldSnapshot {
        price,
        q_bar,
        delta_q: 0.2,
        share_benefit: 0.1,
        sharer_fraction: 0.3,
        case3_fraction: 0.2,
    }
}

proptest! {
    /// The utility function is finite for every admissible state/control,
    /// the Lemma 1 precondition our discretization relies on.
    #[test]
    fn utility_is_bounded_on_the_state_space(
        x in 0.0_f64..=1.0,
        h in 1.0e-5_f64..=10.0e-5,
        q in 0.0_f64..=1.0,
        q_bar in 0.0_f64..=1.0,
        price in 0.0_f64..=5.0,
        requests in 0.0_f64..50.0,
    ) {
        let params = Params::default();
        let u = Utility::new(params);
        let ctx = ContentContext { requests, popularity: 0.3, urgency_factor: 0.05 };
        let b = u.breakdown(&ctx, &snapshot(price, q_bar), x, h, q);
        prop_assert!(b.total().is_finite());
        prop_assert!(b.trading_income >= 0.0);
        prop_assert!(b.placement_cost >= 0.0);
        prop_assert!(b.staleness_cost >= 0.0);
        prop_assert!(b.sharing_cost >= 0.0);
        // Income is bounded by requests × price × Q_k.
        prop_assert!(b.trading_income <= requests * price * 1.0 + 1e-9);
    }

    /// The paper's Lipschitz claim (Lemma 1), checked numerically: the
    /// utility's q-difference quotient is uniformly bounded.
    #[test]
    fn utility_is_lipschitz_in_q(
        q in 0.01_f64..=0.99,
        dq in 1e-4_f64..1e-2,
        q_bar in 0.0_f64..=1.0,
    ) {
        let params = Params::default();
        let u = Utility::new(params);
        let ctx = ContentContext { requests: 10.0, popularity: 0.3, urgency_factor: 0.05 };
        let s = snapshot(4.0, q_bar);
        let h = 5.0e-5;
        let up = u.evaluate(&ctx, &s, 0.5, h, (q + dq).min(1.0));
        let dn = u.evaluate(&ctx, &s, 0.5, h, q);
        let quotient = ((up - dn) / dq).abs();
        // Conservative uniform bound: |∂U/∂q| is dominated by the income
        // term I·p·(l·Q_k terms); with l = 10, I = 10, p = 4 the constant
        // is a few hundred.
        prop_assert!(quotient < 1000.0, "difference quotient {quotient}");
    }

    /// Case probabilities transition monotonically in `q`: P¹ decreases
    /// (less space remaining ⇒ more cached) while P² + P³ increases.
    #[test]
    fn case1_monotone_in_q(q1 in 0.0_f64..=1.0, q2 in 0.0_f64..=1.0, q_bar in 0.0_f64..=1.0) {
        let s = Sigmoid::new(10.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let c_lo = CaseProbabilities::compute(s, lo, q_bar, 0.2);
        let c_hi = CaseProbabilities::compute(s, hi, q_bar, 0.2);
        prop_assert!(c_lo.p1 >= c_hi.p1 - 1e-12);
        prop_assert!(c_lo.p2 + c_lo.p3 <= c_hi.p2 + c_hi.p3 + 1e-12);
    }

    /// The rate model is monotone in the fading coefficient and bounded by
    /// its calibrated maximum.
    #[test]
    fn rate_model_monotone_and_bounded(h1 in 0.0_f64..=1.0e-4, h2 in 0.0_f64..=1.0e-4) {
        let m = RateModel::from_params(&Params::default());
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        prop_assert!(m.rate(lo) <= m.rate(hi) + 1e-12);
        prop_assert!(m.rate(hi) <= m.max_rate() + 1e-9);
        prop_assert!(m.rate(lo) >= 0.0);
    }

    /// Knapsack: the fractional optimum dominates the 0/1 optimum, both
    /// respect capacity, and all fractions are valid.
    #[test]
    fn knapsack_relaxation_dominates(
        raw in proptest::collection::vec((0.0_f64..10.0, 0.01_f64..1.0), 1..12),
        capacity in 0.0_f64..5.0,
    ) {
        let items: Vec<KnapsackItem> = raw
            .iter()
            .enumerate()
            .map(|(i, &(value, weight))| KnapsackItem { content: i, value, weight })
            .collect();
        let frac = solve_fractional(&items, capacity);
        let zo = solve_01(&items, capacity, 500);
        prop_assert!(frac.total_value >= zo.total_value - 1e-9);
        prop_assert!(frac.total_weight <= capacity + 1e-9);
        prop_assert!(zo.total_weight <= capacity + 1e-9);
        prop_assert!(frac.fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
        prop_assert!(zo.fractions.iter().all(|&f| f == 0.0 || f == 1.0));
    }

    /// Thm. 1's control is invariant to adding a constant to the value
    /// function (only the gradient matters) and scales correctly with w₅.
    #[test]
    fn optimal_control_scaling(dv in -50.0_f64..50.0, w5_mult in 1.0_f64..5.0) {
        let base = Params::default();
        let scaled = Params { w5: base.w5 * w5_mult, ..base.clone() };
        let u_base = Utility::new(base);
        let u_scaled = Utility::new(scaled);
        let x_base = u_base.optimal_control(dv);
        let x_scaled = u_scaled.optimal_control(dv);
        // Larger quadratic cost never increases the caching rate.
        prop_assert!(x_scaled <= x_base + 1e-12);
    }

    /// The O(1) shared-sum pricer reproduces the O(M) Eq. (5) reference
    /// for every EDP of an arbitrary strategy profile: the total-minus-own
    /// rewrite of the competitor sum is exact up to float round-off.
    #[test]
    fn shared_sum_price_matches_the_per_edp_reference(
        strategies in proptest::collection::vec(0.0_f64..=1.0, 1..40),
        p_hat in 0.5_f64..=10.0,
        eta1 in 0.0_f64..=5.0,
        q_size in 0.05_f64..=2.0,
    ) {
        let pricer = SharedSupplyPricer::new(p_hat, eta1, q_size, &strategies);
        for (i, &own) in strategies.iter().enumerate() {
            let oracle = finite_population_price(p_hat, eta1, q_size, &strategies, i);
            let fast = pricer.price(own);
            prop_assert!(
                (fast - oracle).abs() <= 1e-9,
                "EDP {i}: shared-sum {fast} vs reference {oracle}"
            );
        }
    }

    /// Params validation accepts small perturbations of the defaults and
    /// never panics.
    #[test]
    fn params_validation_is_total(
        w5 in -1.0_f64..10.0,
        alpha in -0.5_f64..1.5,
        relaxation in -0.5_f64..1.5,
    ) {
        let p = Params { w5, alpha, relaxation, ..Params::default() };
        let expected_ok = w5 > 0.0 && alpha > 0.0 && alpha < 1.0 && relaxation > 0.0 && relaxation <= 1.0;
        prop_assert_eq!(p.validate().is_ok(), expected_ok);
    }
}
