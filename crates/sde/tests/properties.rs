//! Property-based tests for the SDE substrate.

use proptest::prelude::*;

use mfgcp_sde::{
    seeded_rng, BrownianIncrements, EulerMaruyama, Normal, OrnsteinUhlenbeck, SamplePath, Sde,
    StandardNormal,
};

proptest! {
    /// OU transitions: the conditional mean always lies between the start
    /// state and the long-term mean, and the conditional variance is
    /// positive, increasing in Δ, and bounded by the stationary variance.
    #[test]
    fn ou_transition_moments_are_sane(
        varsigma in 0.1_f64..10.0,
        upsilon in -5.0_f64..5.0,
        varrho in 0.01_f64..2.0,
        h0 in -10.0_f64..10.0,
        delta in 0.001_f64..20.0,
    ) {
        let ou = OrnsteinUhlenbeck::new(varsigma, upsilon, varrho).unwrap();
        let m = ou.transition_mean(h0, delta);
        let lo = h0.min(upsilon) - 1e-12;
        let hi = h0.max(upsilon) + 1e-12;
        prop_assert!((lo..=hi).contains(&m), "mean {m} outside [{lo}, {hi}]");
        let v = ou.transition_variance(delta);
        prop_assert!(v > 0.0);
        prop_assert!(v <= ou.stationary_variance() + 1e-12);
        prop_assert!(ou.transition_variance(2.0 * delta) >= v);
    }

    /// The drift of the OU process always points towards the mean.
    #[test]
    fn ou_drift_is_mean_reverting(
        varsigma in 0.1_f64..10.0,
        upsilon in -5.0_f64..5.0,
        h in -10.0_f64..10.0,
    ) {
        let ou = OrnsteinUhlenbeck::new(varsigma, upsilon, 0.5).unwrap();
        let d = ou.drift(0.0, h);
        prop_assert!(d * (upsilon - h) >= 0.0, "drift {d} points away from {upsilon}");
    }

    /// Sample paths produced by Euler–Maruyama always start at x0, end at
    /// t1, and have strictly increasing times.
    #[test]
    fn integrator_paths_are_well_formed(
        x0 in -5.0_f64..5.0,
        t1 in 0.05_f64..3.0,
        dt_exp in 1_u32..6,
        seed in 0_u64..1000,
    ) {
        let dt = 10f64.powi(-(dt_exp as i32));
        let ou = OrnsteinUhlenbeck::new(1.0, 0.0, 0.3).unwrap();
        let mut rng = seeded_rng(seed);
        let path = EulerMaruyama::new(dt).integrate(&ou, x0, 0.0, t1, &mut rng);
        prop_assert_eq!(path.values()[0], x0);
        prop_assert!((path.last_time() - t1).abs() < 1e-9);
        prop_assert!(path.times().windows(2).all(|w| w[0] < w[1]));
    }

    /// Path interpolation always returns a value within the sampled range
    /// between two adjacent knots.
    #[test]
    fn interpolation_is_local_convex_combination(
        values in proptest::collection::vec(-10.0_f64..10.0, 2..50),
        frac in 0.0_f64..1.0,
    ) {
        let n = values.len();
        let times: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let path = SamplePath::new(times, values.clone());
        // Interpolate inside a random segment.
        let seg = ((frac * (n - 1) as f64).floor() as usize).min(n - 2);
        let t = seg as f64 + frac.fract();
        let y = path.interpolate(t);
        let lo = values[seg].min(values[seg + 1]) - 1e-12;
        let hi = values[seg].max(values[seg + 1]) + 1e-12;
        prop_assert!((lo..=hi).contains(&y));
    }

    /// Brownian increments scale like √dt: doubling dt doubles the variance
    /// (checked against the analytic value, not empirically).
    #[test]
    fn brownian_increment_dt_is_recorded(dt in 1e-6_f64..10.0) {
        let inc = BrownianIncrements::new(dt).unwrap();
        prop_assert_eq!(inc.dt(), dt);
    }

    /// Normal distribution samples are finite and the pdf is non-negative
    /// everywhere and maximal at the mean.
    #[test]
    fn normal_pdf_properties(
        mean in -100.0_f64..100.0,
        sd in 0.01_f64..10.0,
        x in -200.0_f64..200.0,
        seed in 0_u64..500,
    ) {
        let d = Normal::new(mean, sd).unwrap();
        prop_assert!(d.pdf(x) >= 0.0);
        prop_assert!(d.pdf(x) <= d.pdf(mean) + 1e-15);
        let mut rng = seeded_rng(seed);
        prop_assert!(d.sample(&mut rng).is_finite());
    }

    /// StandardNormal samples are finite for any RNG stream.
    #[test]
    fn standard_normal_is_finite(seed in 0_u64..2000) {
        let mut rng = seeded_rng(seed);
        for _ in 0..16 {
            prop_assert!(StandardNormal.sample(&mut rng).is_finite());
        }
    }
}
