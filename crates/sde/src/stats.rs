//! Path and ensemble statistics used by tests and the Fig. 3 experiment.

use crate::path::SamplePath;

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns `NaN` for slices shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Biased sample autocovariance at integer lag `k`:
/// `(1/n) Σ (x_t − x̄)(x_{t+k} − x̄)`.
///
/// Returns `NaN` if `k >= xs.len()`.
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if k >= n {
        return f64::NAN;
    }
    let m = mean(xs);
    let mut acc = 0.0;
    for t in 0..n - k {
        acc += (xs[t] - m) * (xs[t + k] - m);
    }
    acc / n as f64
}

/// An ensemble of sample paths on a common time grid, e.g. the Monte-Carlo
/// channel-gain trajectories of Fig. 3.
#[derive(Debug, Clone)]
pub struct PathEnsemble {
    paths: Vec<SamplePath>,
}

impl PathEnsemble {
    /// Collect paths into an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty or the paths do not share a time grid.
    pub fn new(paths: Vec<SamplePath>) -> Self {
        assert!(!paths.is_empty(), "ensemble must contain at least one path");
        let t0 = paths[0].times();
        for p in &paths[1..] {
            assert_eq!(p.times(), t0, "all paths must share a time grid");
        }
        Self { paths }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the ensemble is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the member paths.
    pub fn paths(&self) -> &[SamplePath] {
        &self.paths
    }

    /// The shared time grid.
    pub fn times(&self) -> &[f64] {
        self.paths[0].times()
    }

    /// Cross-sectional (ensemble) mean at every time point.
    pub fn ensemble_mean(&self) -> Vec<f64> {
        let n_t = self.times().len();
        let mut out = vec![0.0; n_t];
        for p in &self.paths {
            for (o, v) in out.iter_mut().zip(p.values()) {
                *o += v;
            }
        }
        let inv = 1.0 / self.paths.len() as f64;
        for o in &mut out {
            *o *= inv;
        }
        out
    }

    /// Cross-sectional variance (biased) at every time point.
    pub fn ensemble_variance(&self) -> Vec<f64> {
        let means = self.ensemble_mean();
        let n_t = means.len();
        let mut out = vec![0.0; n_t];
        for p in &self.paths {
            for ((o, v), m) in out.iter_mut().zip(p.values()).zip(&means) {
                let d = v - m;
                *o += d * d;
            }
        }
        let inv = 1.0 / self.paths.len() as f64;
        for o in &mut out {
            *o *= inv;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        // Unbiased variance of 1..4 is 5/3.
        assert!((sample_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(sample_variance(&[1.0]).is_nan());
    }

    #[test]
    fn autocovariance_lag_zero_is_biased_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let biased_var = 1.25; // ((1.5)^2+(0.5)^2)*2/4
        assert!((autocovariance(&xs, 0) - biased_var).abs() < 1e-12);
        assert!(autocovariance(&xs, 4).is_nan());
    }

    #[test]
    fn ensemble_mean_of_constant_paths() {
        let times = vec![0.0, 1.0];
        let p1 = SamplePath::new(times.clone(), vec![1.0, 1.0]);
        let p2 = SamplePath::new(times.clone(), vec![3.0, 3.0]);
        let ens = PathEnsemble::new(vec![p1, p2]);
        assert_eq!(ens.ensemble_mean(), vec![2.0, 2.0]);
        assert_eq!(ens.ensemble_variance(), vec![1.0, 1.0]);
        assert_eq!(ens.len(), 2);
    }

    #[test]
    #[should_panic(expected = "share a time grid")]
    fn mismatched_grids_rejected() {
        let p1 = SamplePath::new(vec![0.0, 1.0], vec![0.0, 0.0]);
        let p2 = SamplePath::new(vec![0.0, 2.0], vec![0.0, 0.0]);
        PathEnsemble::new(vec![p1, p2]);
    }
}
