//! The mean-reverting Ornstein–Uhlenbeck channel model of Eq. (1).
//!
//! `dh(t) = ½ ς_h (υ_h − h(t)) dt + ϱ_h dW(t)`
//!
//! The paper uses this process for the channel fading coefficient
//! `h_{i,j}(t)`: it gravitates towards the long-term mean `υ_h` at rate
//! `ς_h/2` while fluctuating with amplitude `ϱ_h` (§II-A). Besides the
//! generic [`Sde`] view (for Euler–Maruyama), this type exposes the *exact*
//! Gaussian transition density, which the tests use as ground truth for the
//! integrator and which the FPK solver tests use as an analytic reference.

use rand::Rng;

use crate::gaussian::StandardNormal;
use crate::process::Sde;
use crate::{require_finite, require_positive, SdeError};

/// Mean-reverting Ornstein–Uhlenbeck process in the paper's Eq. (1) form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrnsteinUhlenbeck {
    /// Changing rate `ς_h` (> 0). Note the effective reversion rate is `ς_h/2`.
    varsigma: f64,
    /// Long-term mean `υ_h`.
    upsilon: f64,
    /// Noise amplitude `ϱ_h` (> 0).
    varrho: f64,
}

impl OrnsteinUhlenbeck {
    /// Create the process `dh = ½ς(υ − h)dt + ϱ dW`.
    ///
    /// # Errors
    ///
    /// Returns an error if `varsigma` or `varrho` is not strictly positive,
    /// or `upsilon` is not finite.
    pub fn new(varsigma: f64, upsilon: f64, varrho: f64) -> Result<Self, SdeError> {
        Ok(Self {
            varsigma: require_positive("varsigma", varsigma)?,
            upsilon: require_finite("upsilon", upsilon)?,
            varrho: require_positive("varrho", varrho)?,
        })
    }

    /// The changing rate `ς_h`.
    pub fn varsigma(&self) -> f64 {
        self.varsigma
    }

    /// The long-term mean `υ_h`.
    pub fn upsilon(&self) -> f64 {
        self.upsilon
    }

    /// The noise amplitude `ϱ_h`.
    pub fn varrho(&self) -> f64 {
        self.varrho
    }

    /// Effective mean-reversion rate `θ = ς_h / 2`.
    pub fn reversion_rate(&self) -> f64 {
        0.5 * self.varsigma
    }

    /// Conditional mean `E[h(t+Δ) | h(t) = h]` of the exact transition.
    pub fn transition_mean(&self, h: f64, delta: f64) -> f64 {
        let theta = self.reversion_rate();
        self.upsilon + (h - self.upsilon) * (-theta * delta).exp()
    }

    /// Conditional variance `Var[h(t+Δ) | h(t)]` of the exact transition.
    pub fn transition_variance(&self, delta: f64) -> f64 {
        let theta = self.reversion_rate();
        self.varrho * self.varrho / (2.0 * theta) * (1.0 - (-2.0 * theta * delta).exp())
    }

    /// Sample the exact transition `h(t+Δ) | h(t) = h` (no discretization
    /// error, unlike Euler–Maruyama).
    pub fn sample_transition<R: Rng + ?Sized>(&self, h: f64, delta: f64, rng: &mut R) -> f64 {
        self.transition_mean(h, delta)
            + self.transition_variance(delta).sqrt() * StandardNormal.sample(rng)
    }

    /// Stationary mean (equals the long-term mean `υ_h`).
    pub fn stationary_mean(&self) -> f64 {
        self.upsilon
    }

    /// Stationary variance `ϱ² / ς` (i.e. `ϱ² / (2θ)`).
    pub fn stationary_variance(&self) -> f64 {
        self.varrho * self.varrho / (2.0 * self.reversion_rate())
    }
}

impl Sde for OrnsteinUhlenbeck {
    fn drift(&self, _t: f64, h: f64) -> f64 {
        0.5 * self.varsigma * (self.upsilon - h)
    }

    fn diffusion(&self, _t: f64, _h: f64) -> f64 {
        self.varrho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn ou() -> OrnsteinUhlenbeck {
        OrnsteinUhlenbeck::new(2.0, 5.0, 0.4).unwrap()
    }

    #[test]
    fn drift_points_towards_the_mean() {
        let p = ou();
        assert!(p.drift(0.0, 7.0) < 0.0);
        assert!(p.drift(0.0, 3.0) > 0.0);
        assert_eq!(p.drift(0.0, 5.0), 0.0);
    }

    #[test]
    fn transition_mean_decays_exponentially() {
        let p = ou();
        // θ = 1, so after Δ=1 the deviation shrinks by e^{-1}.
        let m = p.transition_mean(7.0, 1.0);
        assert!((m - (5.0 + 2.0 * (-1.0_f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn transition_variance_saturates_at_stationary() {
        let p = ou();
        let v_inf = p.stationary_variance();
        assert!((p.transition_variance(100.0) - v_inf).abs() < 1e-12);
        assert!(p.transition_variance(0.01) < v_inf);
    }

    #[test]
    fn exact_sampler_matches_analytic_moments() {
        let p = ou();
        let mut rng = seeded_rng(20);
        let (h0, delta) = (8.0, 0.5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let h = p.sample_transition(h0, delta, &mut rng);
            sum += h;
            sum_sq += h * h;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(
            (mean - p.transition_mean(h0, delta)).abs() < 5e-3,
            "mean {mean}"
        );
        assert!(
            (var - p.transition_variance(delta)).abs() < 5e-3,
            "var {var}"
        );
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(OrnsteinUhlenbeck::new(0.0, 5.0, 0.4).is_err());
        assert!(OrnsteinUhlenbeck::new(2.0, f64::NAN, 0.4).is_err());
        assert!(OrnsteinUhlenbeck::new(2.0, 5.0, -0.1).is_err());
    }

    #[test]
    fn stationary_variance_formula() {
        let p = ou();
        // ϱ²/ς = 0.16 / 2 = 0.08.
        assert!((p.stationary_variance() - 0.08).abs() < 1e-12);
    }
}
