//! Euler–Maruyama integration of scalar Itô diffusions.

use rand::Rng;

use crate::brownian::BrownianIncrements;
use crate::path::SamplePath;
use crate::process::Sde;

/// The Euler–Maruyama scheme
/// `X_{n+1} = X_n + b(t_n, X_n) Δt + σ(t_n, X_n) ΔW_n`.
///
/// Strong order 1/2; sufficient here because it is only used to *simulate*
/// the finite-population system, never to solve the HJB/FPK equations (those
/// use the finite-difference solvers in `mfgcp-pde`).
#[derive(Debug, Clone, Copy)]
pub struct EulerMaruyama {
    dt: f64,
}

impl EulerMaruyama {
    /// Create an integrator with fixed step size `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn new(dt: f64) -> Self {
        assert!(
            dt.is_finite() && dt > 0.0,
            "dt must be finite and > 0, got {dt}"
        );
        Self { dt }
    }

    /// The integrator step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Integrate `sde` from `x0` over `[t0, t1]`, recording every step.
    ///
    /// The final step is shortened so the path ends exactly at `t1`.
    pub fn integrate<S: Sde, R: Rng + ?Sized>(
        &self,
        sde: &S,
        x0: f64,
        t0: f64,
        t1: f64,
        rng: &mut R,
    ) -> SamplePath {
        assert!(t1 > t0, "t1 must be > t0");
        let n_full = ((t1 - t0) / self.dt).floor() as usize;
        let mut times = Vec::with_capacity(n_full + 2);
        let mut values = Vec::with_capacity(n_full + 2);
        let inc = BrownianIncrements::new(self.dt).expect("dt validated in new()");
        let mut t = t0;
        let mut x = x0;
        times.push(t);
        values.push(x);
        for _ in 0..n_full {
            x = self.step_with(sde, t, x, self.dt, inc.sample(rng));
            t += self.dt;
            times.push(t);
            values.push(x);
        }
        let rem = t1 - t;
        if rem > 1e-12 * self.dt.max(1.0) {
            let tail = BrownianIncrements::new(rem).expect("rem > 0");
            x = self.step_with(sde, t, x, rem, tail.sample(rng));
            times.push(t1);
            values.push(x);
        }
        SamplePath::new(times, values)
    }

    /// One Euler–Maruyama step given a pre-sampled Brownian increment `dw`.
    pub fn step_with<S: Sde>(&self, sde: &S, t: f64, x: f64, dt: f64, dw: f64) -> f64 {
        x + sde.drift(t, x) * dt + sde.diffusion(t, x) * dw
    }

    /// One step drawing the increment from `rng`.
    pub fn step<S: Sde, R: Rng + ?Sized>(&self, sde: &S, t: f64, x: f64, rng: &mut R) -> f64 {
        let inc = BrownianIncrements::new(self.dt).expect("dt validated in new()");
        self.step_with(sde, t, x, self.dt, inc.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::DriftDiffusion;
    use crate::seeded_rng;
    use crate::OrnsteinUhlenbeck;

    #[test]
    fn deterministic_ode_limit() {
        // With σ = 0 the scheme reduces to explicit Euler: dx = -x dt.
        let sde = DriftDiffusion::new(|_t, x: f64| -x, |_t, _x| 0.0);
        let em = EulerMaruyama::new(1e-4);
        let mut rng = seeded_rng(30);
        let path = em.integrate(&sde, 1.0, 0.0, 1.0, &mut rng);
        let exact = (-1.0_f64).exp();
        assert!((path.last_value() - exact).abs() < 1e-3);
    }

    #[test]
    fn path_spans_exact_interval() {
        let sde = DriftDiffusion::new(|_t, _x| 0.0, |_t, _x| 1.0);
        let em = EulerMaruyama::new(0.3);
        let mut rng = seeded_rng(31);
        let path = em.integrate(&sde, 0.0, 0.0, 1.0, &mut rng);
        assert_eq!(path.times()[0], 0.0);
        assert!((path.last_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ou_moments_match_exact_transition() {
        let ou = OrnsteinUhlenbeck::new(2.0, 1.0, 0.3).unwrap();
        let em = EulerMaruyama::new(1e-3);
        let mut rng = seeded_rng(32);
        let (h0, t1) = (3.0, 1.0);
        let n = 3_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let h = em.integrate(&ou, h0, 0.0, t1, &mut rng).last_value();
            sum += h;
            sum_sq += h * h;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(
            (mean - ou.transition_mean(h0, t1)).abs() < 0.02,
            "mean {mean}"
        );
        assert!((var - ou.transition_variance(t1)).abs() < 0.01, "var {var}");
    }

    #[test]
    #[should_panic(expected = "dt must be finite")]
    fn rejects_zero_dt() {
        EulerMaruyama::new(0.0);
    }
}
