//! In-tree Gaussian sampling.
//!
//! The approved dependency list contains `rand` but not `rand_distr`, so the
//! normal distribution is implemented here with the Marsaglia polar method
//! (a rejection-free-in-expectation variant of Box–Muller that avoids
//! trigonometric calls and caches the second variate).

use rand::{Rng, RngExt as _};

use crate::{require_finite, require_positive, SdeError};

/// A standard normal distribution `N(0, 1)`.
///
/// Stateless marker type; sampling uses the Marsaglia polar method. Each call
/// draws a fresh pair and discards the spare — the memory-less form keeps the
/// sampler `Copy` and free of interior mutability, which matters because RNGs
/// are threaded explicitly through the parallel simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draw one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.random_range(-1.0..1.0);
            let v: f64 = rng.random_range(-1.0..1.0);
            let s: f64 = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Fill `out` with i.i.d. standard normal variates.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

/// A normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not finite or `std_dev` is not strictly
    /// positive (use [`Normal::degenerate`] for a point mass).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, SdeError> {
        Ok(Self {
            mean: require_finite("mean", mean)?,
            std_dev: require_positive("std_dev", std_dev)?,
        })
    }

    /// A degenerate (zero-variance) distribution: every sample is `mean`.
    pub fn degenerate(mean: f64) -> Self {
        Self { mean, std_dev: 0.0 }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * core::f64::consts::PI).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = StandardNormal.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = seeded_rng(2);
        let d = Normal::new(3.0, 0.5).unwrap();
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn degenerate_normal_is_point_mass() {
        let mut rng = seeded_rng(3);
        let d = Normal::degenerate(1.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Normal::new(0.7, 0.1).unwrap();
        // Trapezoidal rule over ±6σ.
        let (a, b) = (0.1, 1.3);
        let n = 10_000;
        let h = (b - a) / n as f64;
        let mut total = 0.5 * (d.pdf(a) + d.pdf(b));
        for i in 1..n {
            total += d.pdf(a + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral {total}");
    }

    #[test]
    fn pdf_is_symmetric_about_mean() {
        let d = Normal::new(2.0, 0.3).unwrap();
        for dx in [0.1, 0.2, 0.5] {
            assert!((d.pdf(2.0 + dx) - d.pdf(2.0 - dx)).abs() < 1e-12);
        }
    }

    #[test]
    fn fill_produces_distinct_values() {
        let mut rng = seeded_rng(4);
        let mut buf = [0.0; 8];
        StandardNormal.fill(&mut rng, &mut buf);
        for w in buf.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
