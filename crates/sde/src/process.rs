//! Generic Itô diffusion traits.
//!
//! The game's state dynamics (Eqs. (1) and (4)) are scalar Itô diffusions
//! `dX = b(t, X) dt + σ(t, X) dW`, optionally with a control entering the
//! drift (the caching rate `x_{i,k}(t)` in Eq. (4)). [`Sde`] models the
//! uncontrolled case; [`ControlledSde`] threads a control value through.

/// A scalar time-inhomogeneous Itô diffusion `dX = b(t, X) dt + σ(t, X) dW`.
pub trait Sde {
    /// Drift coefficient `b(t, x)`.
    fn drift(&self, t: f64, x: f64) -> f64;

    /// Diffusion coefficient `σ(t, x)`.
    fn diffusion(&self, t: f64, x: f64) -> f64;
}

/// A scalar controlled diffusion `dX = b(t, X, u) dt + σ(t, X) dW`.
pub trait ControlledSde {
    /// Drift coefficient `b(t, x, u)` under control `u`.
    fn drift(&self, t: f64, x: f64, control: f64) -> f64;

    /// Diffusion coefficient `σ(t, x)` (controls never scale the noise in
    /// this paper's dynamics).
    fn diffusion(&self, t: f64, x: f64) -> f64;

    /// View this controlled SDE under a fixed feedback law as an
    /// uncontrolled [`Sde`].
    fn with_policy<F>(&self, policy: F) -> ClosedLoop<'_, Self, F>
    where
        F: Fn(f64, f64) -> f64,
        Self: Sized,
    {
        ClosedLoop { sde: self, policy }
    }
}

/// A controlled SDE closed under a feedback policy `u = π(t, x)`.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoop<'a, S, F> {
    sde: &'a S,
    policy: F,
}

impl<S, F> Sde for ClosedLoop<'_, S, F>
where
    S: ControlledSde,
    F: Fn(f64, f64) -> f64,
{
    fn drift(&self, t: f64, x: f64) -> f64 {
        self.sde.drift(t, x, (self.policy)(t, x))
    }

    fn diffusion(&self, t: f64, x: f64) -> f64 {
        self.sde.diffusion(t, x)
    }
}

/// An [`Sde`] defined by a pair of closures; convenient in tests and examples.
#[derive(Debug, Clone, Copy)]
pub struct DriftDiffusion<B, S> {
    drift: B,
    diffusion: S,
}

impl<B, S> DriftDiffusion<B, S>
where
    B: Fn(f64, f64) -> f64,
    S: Fn(f64, f64) -> f64,
{
    /// Build an SDE from drift and diffusion closures.
    pub fn new(drift: B, diffusion: S) -> Self {
        Self { drift, diffusion }
    }
}

impl<B, S> Sde for DriftDiffusion<B, S>
where
    B: Fn(f64, f64) -> f64,
    S: Fn(f64, f64) -> f64,
{
    fn drift(&self, t: f64, x: f64) -> f64 {
        (self.drift)(t, x)
    }

    fn diffusion(&self, t: f64, x: f64) -> f64 {
        (self.diffusion)(t, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CachingDynamics {
        qk: f64,
        w1: f64,
        sigma: f64,
    }

    impl ControlledSde for CachingDynamics {
        fn drift(&self, _t: f64, _q: f64, x: f64) -> f64 {
            -self.qk * self.w1 * x
        }

        fn diffusion(&self, _t: f64, _q: f64) -> f64 {
            self.sigma
        }
    }

    #[test]
    fn closed_loop_substitutes_the_policy() {
        let dyn_ = CachingDynamics {
            qk: 100.0,
            w1: 1.0,
            sigma: 0.1,
        };
        let closed = dyn_.with_policy(|_t, q| if q > 50.0 { 1.0 } else { 0.0 });
        assert_eq!(closed.drift(0.0, 80.0), -100.0);
        assert_eq!(closed.drift(0.0, 20.0), 0.0);
        assert_eq!(closed.diffusion(0.0, 20.0), 0.1);
    }

    #[test]
    fn drift_diffusion_wraps_closures() {
        let sde = DriftDiffusion::new(|t, x| t + x, |_t, _x| 2.0);
        assert_eq!(sde.drift(1.0, 2.0), 3.0);
        assert_eq!(sde.diffusion(0.0, 0.0), 2.0);
    }
}
