//! Stochastic differential equation substrate for the MFG-CP reproduction.
//!
//! The paper models two sources of randomness, both as Itô diffusions:
//!
//! * the channel fading coefficient `h_{i,j}(t)` follows a mean-reverting
//!   Ornstein–Uhlenbeck process (Eq. (1)):
//!   `dh = ½ς_h(υ_h − h) dt + ϱ_h dW`,
//! * the remaining caching space `q_{i,k}(t)` follows a controlled drift
//!   plus Brownian noise (Eq. (4)).
//!
//! This crate provides the generic machinery both need: seedable Gaussian
//! sampling (implemented in-tree — `rand_distr` is deliberately not a
//! dependency), Brownian increments and paths, a generic [`Sde`] trait with an
//! Euler–Maruyama integrator, an exact Ornstein–Uhlenbeck transition sampler,
//! and path statistics used by the tests and the Fig. 3 experiment.
//!
//! # Example
//!
//! ```
//! use mfgcp_sde::{OrnsteinUhlenbeck, EulerMaruyama, Sde};
//!
//! // Eq. (1) with ς_h = 2, υ_h = 5e-5, ϱ_h = 1e-6.
//! let ou = OrnsteinUhlenbeck::new(2.0, 5.0e-5, 1.0e-6).unwrap();
//! let path = EulerMaruyama::new(1e-3)
//!     .integrate(&ou, 8.0e-5, 0.0, 1.0, &mut mfgcp_sde::seeded_rng(7));
//! // The path reverts towards the long-term mean υ_h.
//! assert!((path.last_value() - 5.0e-5).abs() < 4.0e-5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod brownian;
mod gaussian;
mod integrate;
mod ou;
mod path;
mod process;
mod stats;

pub use brownian::{BrownianIncrements, BrownianPath};
pub use gaussian::{Normal, StandardNormal};
pub use integrate::EulerMaruyama;
pub use ou::OrnsteinUhlenbeck;
pub use path::SamplePath;
pub use process::{ControlledSde, DriftDiffusion, Sde};
pub use stats::{autocovariance, mean, sample_variance, PathEnsemble};

/// Error type for invalid SDE parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum SdeError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value supplied.
        value: f64,
    },
    /// A parameter was not finite (NaN or infinite).
    NonFinite {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl core::fmt::Display for SdeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SdeError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
            SdeError::NonFinite { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
        }
    }
}

impl std::error::Error for SdeError {}

pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, SdeError> {
    if !value.is_finite() {
        return Err(SdeError::NonFinite { name });
    }
    if value <= 0.0 {
        return Err(SdeError::NonPositive { name, value });
    }
    Ok(value)
}

pub(crate) fn require_finite(name: &'static str, value: f64) -> Result<f64, SdeError> {
    if !value.is_finite() {
        return Err(SdeError::NonFinite { name });
    }
    Ok(value)
}

/// A deterministic, seedable RNG used across the workspace.
///
/// Every stochastic component in this reproduction takes an explicit RNG so
/// experiments are reproducible bit-for-bit given a seed.
pub type SimRng = rand::rngs::StdRng;

/// Construct the workspace-standard RNG from a seed.
pub fn seeded_rng(seed: u64) -> SimRng {
    use rand::SeedableRng;
    SimRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        use rand::RngExt as _;
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn require_positive_rejects_bad_values() {
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -1.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
        assert_eq!(require_positive("x", 2.0), Ok(2.0));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SdeError::NonPositive {
            name: "sigma",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
        let e = SdeError::NonFinite { name: "mu" };
        assert!(e.to_string().contains("mu"));
    }
}
