//! Discretely sampled paths `(t_n, x_n)` shared by all processes.

/// A discretely sampled scalar path.
///
/// Invariant: `times` is strictly increasing and `times.len() == values.len() >= 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePath {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl SamplePath {
    /// Create a path from matching time and value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, have different lengths, or `times` is
    /// not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "path must contain at least one sample");
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "times must be strictly increasing"
        );
        Self { times, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the path is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sampling times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The first sampled value.
    pub fn first_value(&self) -> f64 {
        self.values[0]
    }

    /// The final sampled value.
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("non-empty by invariant")
    }

    /// The final sampling time.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("non-empty by invariant")
    }

    /// Linear interpolation of the path at time `t`.
    ///
    /// Clamps to the first/last value outside the sampled range.
    pub fn interpolate(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.last_time() {
            return self.last_value();
        }
        // partition_point returns the first index with times[i] > t.
        let hi = self.times.partition_point(|&s| s <= t);
        let lo = hi - 1;
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let (x0, x1) = (self.values[lo], self.values[hi]);
        x0 + (x1 - x0) * (t - t0) / (t1 - t0)
    }

    /// Iterate over `(t, x)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Pathwise supremum norm `max |x_n|`.
    pub fn sup_norm(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> SamplePath {
        SamplePath::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])
    }

    #[test]
    fn interpolation_is_linear_between_knots() {
        let p = path();
        assert_eq!(p.interpolate(0.5), 5.0);
        assert_eq!(p.interpolate(1.5), 5.0);
        assert_eq!(p.interpolate(1.0), 10.0);
    }

    #[test]
    fn interpolation_clamps_outside_range() {
        let p = path();
        assert_eq!(p.interpolate(-1.0), 0.0);
        assert_eq!(p.interpolate(5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_times() {
        SamplePath::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        SamplePath::new(vec![0.0, 1.0], vec![1.0]);
    }

    #[test]
    fn sup_norm_takes_absolute_values() {
        let p = SamplePath::new(vec![0.0, 1.0], vec![-3.0, 2.0]);
        assert_eq!(p.sup_norm(), 3.0);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let p = path();
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs, vec![(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)]);
    }
}
