//! Standard Brownian motion: increments and discretely sampled paths.
//!
//! `W_{i,j}(t)` in Eq. (1) and `W_i(t)` in Eq. (4) are standard Brownian
//! motions; the Euler–Maruyama integrator consumes their increments
//! `ΔW ~ N(0, Δt)`.

use rand::Rng;

use crate::gaussian::StandardNormal;
use crate::path::SamplePath;
use crate::{require_positive, SdeError};

/// An iterator-style source of Brownian increments `ΔW ~ N(0, dt)` for a
/// fixed step size.
#[derive(Debug, Clone, Copy)]
pub struct BrownianIncrements {
    sqrt_dt: f64,
    dt: f64,
}

impl BrownianIncrements {
    /// Create an increment source for step size `dt`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dt` is not strictly positive and finite.
    pub fn new(dt: f64) -> Result<Self, SdeError> {
        let dt = require_positive("dt", dt)?;
        Ok(Self {
            sqrt_dt: dt.sqrt(),
            dt,
        })
    }

    /// The step size this source was built for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Draw one increment `ΔW ~ N(0, dt)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sqrt_dt * StandardNormal.sample(rng)
    }
}

/// A discretely sampled standard Brownian path `W(0) = 0, W(t_n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownianPath {
    path: SamplePath,
}

impl BrownianPath {
    /// Sample a Brownian path on `[0, horizon]` with `steps` uniform steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `horizon <= 0`.
    pub fn sample<R: Rng + ?Sized>(horizon: f64, steps: usize, rng: &mut R) -> Self {
        assert!(steps > 0, "steps must be > 0");
        assert!(horizon > 0.0, "horizon must be > 0");
        let dt = horizon / steps as f64;
        let inc = BrownianIncrements::new(dt).expect("dt > 0 by construction");
        let mut times = Vec::with_capacity(steps + 1);
        let mut values = Vec::with_capacity(steps + 1);
        let mut w = 0.0;
        times.push(0.0);
        values.push(0.0);
        for n in 1..=steps {
            w += inc.sample(rng);
            times.push(n as f64 * dt);
            values.push(w);
        }
        Self {
            path: SamplePath::new(times, values),
        }
    }

    /// Borrow the underlying sample path.
    pub fn path(&self) -> &SamplePath {
        &self.path
    }

    /// The terminal value `W(horizon)`.
    pub fn terminal(&self) -> f64 {
        self.path.last_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn increments_have_correct_variance() {
        let mut rng = seeded_rng(10);
        let inc = BrownianIncrements::new(0.01).unwrap();
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = inc.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 0.01).abs() < 3e-4, "variance {var}");
    }

    #[test]
    fn path_starts_at_zero_with_uniform_times() {
        let mut rng = seeded_rng(11);
        let bp = BrownianPath::sample(1.0, 100, &mut rng);
        assert_eq!(bp.path().len(), 101);
        assert_eq!(bp.path().values()[0], 0.0);
        let times = bp.path().times();
        for (n, &t) in times.iter().enumerate() {
            assert!((t - n as f64 * 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn terminal_variance_matches_horizon() {
        // Var[W(T)] = T.
        let horizon = 2.0;
        let mut rng = seeded_rng(12);
        let n = 5_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let w = BrownianPath::sample(horizon, 50, &mut rng).terminal();
            sum += w;
            sum_sq += w * w;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - horizon).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn invalid_dt_is_rejected() {
        assert!(BrownianIncrements::new(0.0).is_err());
        assert!(BrownianIncrements::new(-0.5).is_err());
        assert!(BrownianIncrements::new(f64::NAN).is_err());
    }
}
