//! Criterion benchmarks of the finite-difference kernels: explicit vs
//! implicit Fokker–Planck steps (the `ablation_stepper` trade-off measured
//! precisely), the Thomas solver, and the field primitives.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use mfgcp_pde::{linalg, Axis, Field2d, FokkerPlanck2d, Grid2d, ImplicitFokkerPlanck2d};

fn grid() -> Grid2d {
    Grid2d::new(
        Axis::new(1.0e-5, 10.0e-5, 16).unwrap(),
        Axis::new(0.0, 1.0, 64).unwrap(),
    )
}

fn density() -> Field2d {
    let mut lam = Field2d::from_fn(grid(), |_h, q| {
        let z = (q - 0.7) / 0.1;
        (-0.5 * z * z).exp()
    });
    lam.normalize();
    lam
}

fn bench_fpk_steppers(c: &mut Criterion) {
    let bx = Field2d::from_fn(grid(), |h, _q| 2.0 * (5.0e-5 - h));
    let by = Field2d::from_fn(grid(), |_h, q| 0.4 - 0.9 * q);
    let explicit = FokkerPlanck2d::new(5e-11, 0.005).unwrap();
    let implicit = ImplicitFokkerPlanck2d::new(5e-11, 0.005).unwrap();
    let mut group = c.benchmark_group("fpk_step_16x64");
    for &dt in &[0.01, 0.05, 0.25] {
        group.bench_with_input(BenchmarkId::new("explicit", dt), &dt, |b, &dt| {
            b.iter_batched(
                density,
                |mut lam| explicit.step(&mut lam, &bx, &by, dt),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("implicit", dt), &dt, |b, &dt| {
            b.iter_batched(
                density,
                |mut lam| implicit.step(&mut lam, &bx, &by, dt),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_thomas(c: &mut Criterion) {
    let n = 256;
    let a = vec![-1.0; n];
    let b_diag = vec![2.5; n];
    let cc = vec![-1.0; n];
    let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("thomas_solve_256", |bch| {
        bch.iter(|| {
            linalg::solve_tridiagonal(
                std::hint::black_box(&a),
                std::hint::black_box(&b_diag),
                std::hint::black_box(&cc),
                std::hint::black_box(&d),
            )
        })
    });
}

fn bench_field_ops(c: &mut Criterion) {
    let lam = density();
    c.bench_function("field2d_integral_16x64", |b| {
        b.iter(|| std::hint::black_box(&lam).integral())
    });
    c.bench_function("field2d_marginal_16x64", |b| {
        b.iter(|| std::hint::black_box(&lam).marginal_y())
    });
    c.bench_function("field2d_weighted_integral_16x64", |b| {
        b.iter(|| std::hint::black_box(&lam).weighted_integral(|_h, q| q))
    });
}

fn fast_criterion() -> Criterion {
    // Keep the full workspace bench run quick: these kernels are
    // microsecond-to-millisecond scale, so modest sampling suffices.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = fast_criterion();
    targets = bench_fpk_steppers, bench_thomas, bench_field_ops);
criterion_main!(benches);
