//! Criterion benchmarks of the finite-population market simulator: a full
//! epoch under each scheme, plus the hot per-slot phases in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mfgcp_core::Params;
use mfgcp_sim::baselines::{MostPopularCaching, RandomReplacement, Udcs};
use mfgcp_sim::{CachingPolicy, SimConfig, Simulation};

fn config() -> SimConfig {
    SimConfig {
        num_edps: 50,
        num_requesters: 150,
        num_contents: 10,
        epochs: 1,
        slots_per_epoch: 20,
        params: Params {
            num_edps: 50,
            time_steps: 12,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        },
        seed: 77,
        ..Default::default()
    }
}

fn bench_epoch(c: &mut Criterion, name: &str, make: fn() -> Box<dyn CachingPolicy>) {
    c.bench_function(name, |b| {
        b.iter_batched(
            || Simulation::new(config(), make()).expect("valid config"),
            |mut sim| sim.run(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_rr_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_rr_m50_k10", || Box::new(RandomReplacement));
}

fn bench_mpc_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_mpc_m50_k10", || {
        Box::new(MostPopularCaching::default())
    });
}

fn bench_udcs_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_udcs_m50_k10", || Box::new(Udcs::default()));
}

/// Population sweep over the market-clearing phase: with the shared-sum
/// Eq. (5) pricer the per-slot market cost is O(M·K), so the reported
/// time per EDP should stay flat as M grows (it was linear in M under
/// the old per-EDP competitor sums). `bin/bench_market` emits the same
/// sweep (including M = 10000) as `BENCH_market.json`.
fn bench_market_sweep(c: &mut Criterion) {
    for m in [100usize, 400, 1600] {
        let make_cfg = move || SimConfig {
            num_edps: m,
            num_requesters: 300,
            num_contents: 10,
            epochs: 1,
            slots_per_epoch: 10,
            params: Params {
                num_edps: m,
                time_steps: 12,
                grid_h: 8,
                grid_q: 24,
                ..Params::default()
            },
            seed: 77,
            ..Default::default()
        };
        c.bench_function(&format!("sim_epoch_mpc_m{m}_k10"), |b| {
            b.iter_batched(
                || {
                    Simulation::new(make_cfg(), Box::new(MostPopularCaching::default()))
                        .expect("valid config")
                },
                |mut sim| sim.run(),
                BatchSize::LargeInput,
            )
        });
    }
}

fn fast_criterion() -> Criterion {
    // Keep the full workspace bench run quick: these kernels are
    // microsecond-to-millisecond scale, so modest sampling suffices.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = fast_criterion();
    targets = bench_rr_epoch, bench_mpc_epoch, bench_udcs_epoch, bench_market_sweep);
criterion_main!(benches);
