//! Criterion benchmarks of the finite-population market simulator: a full
//! epoch under each scheme, plus the hot per-slot phases in isolation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mfgcp_core::Params;
use mfgcp_sim::baselines::{MostPopularCaching, RandomReplacement, Udcs};
use mfgcp_sim::{CachingPolicy, SimConfig, Simulation};

fn config() -> SimConfig {
    SimConfig {
        num_edps: 50,
        num_requesters: 150,
        num_contents: 10,
        epochs: 1,
        slots_per_epoch: 20,
        params: Params {
            num_edps: 50,
            time_steps: 12,
            grid_h: 8,
            grid_q: 24,
            ..Params::default()
        },
        seed: 77,
        ..Default::default()
    }
}

fn bench_epoch(c: &mut Criterion, name: &str, make: fn() -> Box<dyn CachingPolicy>) {
    c.bench_function(name, |b| {
        b.iter_batched(
            || Simulation::new(config(), make()).expect("valid config"),
            |mut sim| sim.run(),
            BatchSize::LargeInput,
        )
    });
}

fn bench_rr_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_rr_m50_k10", || Box::new(RandomReplacement));
}

fn bench_mpc_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_mpc_m50_k10", || Box::new(MostPopularCaching::default()));
}

fn bench_udcs_epoch(c: &mut Criterion) {
    bench_epoch(c, "sim_epoch_udcs_m50_k10", || Box::new(Udcs::default()));
}

fn fast_criterion() -> Criterion {
    // Keep the full workspace bench run quick: these kernels are
    // microsecond-to-millisecond scale, so modest sampling suffices.
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(
    name = benches;
    config = fast_criterion();
    targets = bench_rr_epoch, bench_mpc_epoch, bench_udcs_epoch);
criterion_main!(benches);
